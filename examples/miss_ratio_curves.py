"""Miss-ratio curves: LRU vs MIN for every cache size in one pass.

Uses the library's stack-distance engine (Fenwick-tree based, O(T log T))
to produce the full LRU miss-ratio curve of a trace, alongside Belady's
clairvoyant MIN — the standard capacity-planning view of a cache
workload.  Also demonstrates the LOOP pathology: LRU flat-lines at 100%
misses until the cache fits the whole loop, while MIN degrades
gracefully.

Run:  python examples/miss_ratio_curves.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.sim import lru_miss_curve, opt_miss_curve
from repro.workloads import loop_stream, mixture_stream, zipf_stream


def curve_table(title: str, seq, max_k: int) -> Table:
    lru = lru_miss_curve(seq, max_k)
    opt = opt_miss_curve(seq, max_k)
    table = Table(["k", "LRU miss %", "MIN miss %", "LRU/MIN"], title=title)
    for k in range(1, max_k + 1):
        table.add_row(
            k,
            100.0 * lru[k - 1] / len(seq),
            100.0 * opt[k - 1] / len(seq),
            lru[k - 1] / max(opt[k - 1], 1),
        )
    return table


def main() -> None:
    # A Zipf workload: LRU tracks MIN within a small factor everywhere.
    zipf = zipf_stream(64, 20_000, alpha=1.0, rng=0)
    print(curve_table("Zipf(1.0), 64 pages", zipf, max_k=12))

    # The LOOP pathology: a loop of 10 pages mixed with light noise.
    loop = loop_stream(64, 20_000, loop_size=10, jitter=0.05, rng=1)
    print(curve_table("LOOP(10) + 5% noise", loop, max_k=12))

    print(
        "On the loop workload LRU stays near 100% misses until k reaches\n"
        "the loop size, while MIN already hits with k-1 loop pages -- the\n"
        "gap that motivates scan-resistant and clairvoyant-approximating\n"
        "policies."
    )


if __name__ == "__main__":
    main()
