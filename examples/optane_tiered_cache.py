"""Multi-granularity caching, modeled on the paper's Optane SSD example.

Intel's Optane SSD can serve requests at several granularities: fetching
an aligned 4 KB chunk (expensive) serves reads of any of its sectors,
while fetching a single sector (cheap) serves only that sector.  This is
the paper's multi-level paging with ``l = 2``: the chunk copy is level 1,
the sector copy level 2, and the cache may hold at most one copy per
chunk.

The experiment sweeps the fraction of whole-chunk reads and shows how the
paper's algorithms adapt the granularity mix, against LRU which treats
all copies alike.

Run:  python examples/optane_tiered_cache.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import (
    LRUPolicy,
    RandomizedMultiLevelPolicy,
    WaterFillingPolicy,
)
from repro.analysis import Table
from repro.core.instance import MultiLevelInstance
from repro.sim import simulate
from repro.workloads import optane_stream


def main() -> None:
    n_chunks, k = 128, 24
    # Chunk copy costs 8 (eight sectors' worth of bandwidth), sector 1.
    weights = np.tile([8.0, 1.0], (n_chunks, 1))
    instance = MultiLevelInstance(k, weights, name="optane(l=2)")
    print(f"instance: {instance}\n")

    table = Table(
        ["chunk-read %", "policy", "cost", "hit rate", "chunk copies held"],
        title="Optane chunk/sector cache",
    )
    for chunk_fraction in [0.05, 0.25, 0.6]:
        stream = optane_stream(
            n_chunks, 20_000, chunk_read_fraction=chunk_fraction,
            alpha=0.9, rng=5,
        )
        for policy in [LRUPolicy(), WaterFillingPolicy(),
                       RandomizedMultiLevelPolicy()]:
            result = simulate(instance, stream, policy, seed=1)
            chunks_held = sum(1 for lvl in result.final_cache.values() if lvl == 1)
            table.add_row(
                f"{chunk_fraction:.0%}", policy.name, result.cost,
                result.hit_rate, chunks_held,
            )
    print(table)
    print(
        "As whole-chunk reads become common, the multi-level-aware policies\n"
        "shift the cache toward level-1 (chunk) copies; with rare chunk\n"
        "reads they hold cheap sector copies instead, spending the same\n"
        "k slots very differently."
    )


if __name__ == "__main__":
    main()
