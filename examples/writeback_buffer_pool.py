"""A database buffer pool with expensive writebacks.

The scenario the paper's writeback-aware model captures: an OLTP-style
buffer pool where a small set of hot index pages attracts nearly all
writes.  Evicting a dirty page forces a writeback (cost ``w1 >> w2``);
a dirty-oblivious policy (plain LRU) keeps recycling dirty pages, while
the paper's algorithms — run through the Lemma 2.1 RW-paging reduction —
treat dirtiness as a first-class cost.

Run:  python examples/writeback_buffer_pool.py
"""

from __future__ import annotations

from repro import WritebackInstance
from repro.algorithms import (
    RandomizedMultiLevelPolicy,
    RWAdapterPolicy,
    WaterFillingPolicy,
    WBLandlordPolicy,
    WBLRUPolicy,
)
from repro.analysis import Table
from repro.sim import simulate_writeback
from repro.workloads import hot_writer_stream


def main() -> None:
    # 256 pages, 48-page pool; a writeback costs 24x a clean drop.
    instance = WritebackInstance.uniform(
        n_pages=256, cache_size=48, dirty_cost=24.0, clean_cost=1.0
    )
    # 15% of pages are hot and write-heavy; reads follow a Zipf law.
    stream = hot_writer_stream(
        256, 30_000, hot_fraction=0.15, hot_write_prob=0.7,
        cold_write_prob=0.01, alpha=0.9, rng=11,
    )
    print(f"instance: {instance}")
    print(f"stream:   {stream}\n")

    policies = [
        WBLRUPolicy(),                                   # dirty-oblivious
        WBLandlordPolicy(),                              # dirty-aware heuristic
        RWAdapterPolicy(WaterFillingPolicy()),           # paper det. O(k)
        RWAdapterPolicy(RandomizedMultiLevelPolicy()),   # paper rand. O(log^2 k)
    ]
    table = Table(
        ["policy", "total cost", "writebacks paid", "hit rate"],
        title="buffer pool, hot-writer workload",
    )
    for policy in policies:
        result = simulate_writeback(instance, stream, policy, seed=3,
                                    record_events=True)
        writebacks = sum(1 for e in result.events if e.level == 1)
        table.add_row(policy.name, result.cost, writebacks, result.hit_rate)
    print(table)
    print(
        "Reading the table: the adapters keep dirty-hot pages resident, so\n"
        "they pay far fewer writebacks than dirty-oblivious LRU at a\n"
        "similar hit rate — the behavior Theorem 1.1/1.2 formalizes."
    )


if __name__ == "__main__":
    main()
