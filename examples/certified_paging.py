"""A self-certifying online cache.

The online primal-dual framework behind the paper's algorithms has a
practical side-effect: while serving requests it can maintain a feasible
*dual* solution whose value lower-bounds the cost of every possible
strategy — including the clairvoyant optimum.  The run thereby certifies
its own competitive ratio, with no offline computation at all.

This example streams a workload through the primal-dual solver and prints
the running certificate; at the end it cross-checks the certificate
against the true LP optimum (which the online algorithm never saw).

Run:  python examples/certified_paging.py
"""

from __future__ import annotations

import math

from repro.algorithms import PrimalDualWeightedPaging
from repro.analysis import Table
from repro.core.instance import WeightedPagingInstance
from repro.offline import fractional_offline_opt
from repro.workloads import sample_weights, zipf_stream


def main() -> None:
    n, k = 24, 6
    instance = WeightedPagingInstance(k, sample_weights(n, rng=0, high=32.0))
    stream = zipf_stream(n, 4000, alpha=0.9, rng=1)
    solver = PrimalDualWeightedPaging(instance)

    table = Table(
        ["requests", "primal (our cost)", "dual (certified OPT >=)",
         "certified ratio"],
        title=f"self-certifying run, n={n}, k={k}",
    )
    checkpoints = {500, 1000, 2000, 4000}
    for t, page in enumerate(stream.pages.tolist(), start=1):
        solver.step(page)
        if t in checkpoints:
            s = solver.state()
            table.add_row(t, s.primal_cost, s.dual_value, s.certified_ratio)
    print(table)

    final = solver.state()
    lp = fractional_offline_opt(instance, stream)
    print(f"theorem bound 2 ln(1 + k) = {2 * math.log(1 + k):.2f}")
    print(f"true LP optimum (computed offline, never shown to the solver): "
          f"{lp:.1f}")
    print(f"certificate validity: dual {final.dual_value:.1f} <= LP {lp:.1f}: "
          f"{final.dual_value <= lp + 1e-6}")
    print(f"certificate tightness: dual / LP = {final.dual_value / lp:.2f}")


if __name__ == "__main__":
    main()
