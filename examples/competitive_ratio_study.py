"""A small competitive-ratio study with the parallel sweep runner.

Sweeps the cache size k, runs the paper's deterministic and randomized
algorithms against Landlord and LRU (several seeds each, across worker
processes), measures ratios against the offline bound, fits the growth
shape, and renders the series as an ASCII chart — the complete workflow
the benchmark harness automates.

Run:  python examples/competitive_ratio_study.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import (
    LandlordPolicy,
    LRUPolicy,
    RandomizedWeightedPagingPolicy,
    WaterFillingPolicy,
)
from repro.analysis import Table, competitive_ratio, fit_growth, line_chart
from repro.core.instance import WeightedPagingInstance
from repro.offline import best_opt_bound
from repro.sim import RunSpec, run_sweep
from repro.workloads import sample_weights, zipf_stream

KS = [2, 4, 8, 16]
POLICIES = [LRUPolicy, LandlordPolicy, WaterFillingPolicy,
            RandomizedWeightedPagingPolicy]


def main() -> None:
    specs, bounds = [], {}
    for k in KS:
        n = 3 * k
        inst = WeightedPagingInstance(k, sample_weights(n, rng=k, high=16.0))
        seq = zipf_stream(n, 1200, alpha=0.9, rng=100 + k)
        bounds[k] = best_opt_bound(inst, seq, max_states=6000)
        for factory in POLICIES:
            specs.append(RunSpec(inst, seq, factory, n_seeds=3,
                                 master_seed=k, params={"k": k}))

    results = run_sweep(specs, parallel=True)

    series: dict[str, list[float]] = {f.name: [] for f in POLICIES}
    table = Table(["k", "policy", "mean cost", "ratio", "opt method"],
                  title="competitive ratios vs cache size (Zipf 0.9)")
    for res in results:
        k = res.params["k"]
        ratio = competitive_ratio(res.aggregate.mean_cost, bounds[k].value)
        series[res.spec_label].append(ratio)
        table.add_row(k, res.spec_label, res.aggregate.mean_cost, ratio,
                      bounds[k].method)
    print(table)

    print(line_chart(KS, series, logx=True,
                     title="ratio vs k (log-spaced)", height=12))

    for name, ratios in series.items():
        fit = fit_growth(KS, ratios)
        print(f"{name:22s} best growth shape: {fit.summary()}")


if __name__ == "__main__":
    main()
