"""Quickstart: the public API in five minutes.

Builds a weighted paging instance, runs the paper's algorithms against
classical baselines on a skewed workload, and compares everything to the
exact offline optimum.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import WeightedPagingInstance
from repro.algorithms import (
    LandlordPolicy,
    LRUPolicy,
    RandomizedWeightedPagingPolicy,
    WaterFillingPolicy,
)
from repro.analysis import Table, competitive_ratio
from repro.offline import best_opt_bound
from repro.sim import simulate
from repro.workloads import sample_weights, zipf_stream


def main() -> None:
    # --- 1. An instance: 12 pages, cache of 4, log-uniform weights. -------
    weights = sample_weights(12, rng=0, low=1.0, high=32.0)
    instance = WeightedPagingInstance(cache_size=4, weights=weights)
    print(f"instance: {instance}  (weights {weights.min():.1f}..{weights.max():.1f})")

    # --- 2. A workload: 2000 Zipf-distributed requests. -------------------
    seq = zipf_stream(instance.n_pages, 2000, alpha=0.9, rng=1)
    print(f"workload: {seq}\n")

    # --- 3. The offline optimum (exact DP here; LP fallback on big runs). --
    opt = best_opt_bound(instance, seq)
    print(f"offline optimum ({opt.method}): {opt.value:.1f}\n")

    # --- 4. Online policies, paper's vs baselines. --------------------------
    policies = [
        LRUPolicy(),                        # weight-oblivious baseline
        LandlordPolicy(),                   # k-competitive weighted baseline
        WaterFillingPolicy(),               # paper Sec 4.1: deterministic O(k)
        RandomizedWeightedPagingPolicy(),   # paper Sec 4.3: O(log^2 k)
    ]
    table = Table(["policy", "cost", "hit rate", "ratio vs OPT"],
                  title="weighted paging quickstart")
    for policy in policies:
        result = simulate(instance, seq, policy, seed=42)
        table.add_row(
            result.policy,
            result.cost,
            result.hit_rate,
            competitive_ratio(result.cost, opt.value),
        )
    print(table)

    # --- 5. The randomized policy exposes its internal fractional cost. ----
    result = simulate(instance, seq, RandomizedWeightedPagingPolicy(), seed=7)
    print(
        f"randomized policy internals: fractional z-cost "
        f"{result.extra['fractional_z_cost']:.1f}, beta {result.extra['beta']:.2f}, "
        f"rounding overhead x{result.cost / result.extra['fractional_z_cost']:.2f}"
    )


if __name__ == "__main__":
    main()
