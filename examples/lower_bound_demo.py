"""The Section 3 lower bound, end to end.

Demonstrates how writeback-aware caching *encodes* online set cover:

1. build a set system with a planted optimal cover,
2. reduce it to an RW-paging request stream (the paper's Section 3
   construction: init writes, repeated rho(e) blocks, probes, terminate),
3. run online paging policies on the stream,
4. read the set cover each policy committed to straight out of its
   eviction trace (Lemma 3.3's soundness direction),
5. compare to the offline bound of Lemma 3.2.

Because online set cover is Omega(log m log n)-hard (Feige-Korman), no
polynomial-time online paging policy can beat O(log^2 k) here — the
separation of Theorem 1.3.

Run:  python examples/lower_bound_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import LandlordPolicy, LRUPolicy, WaterFillingPolicy
from repro.analysis import Table
from repro.setcover import (
    completeness_bound,
    extract_cover,
    greedy_cover,
    lp_cover_value,
    planted_cover_system,
    reduce_to_rw_paging,
)
from repro.sim import simulate


def main() -> None:
    # A universe of 24 elements, 10 sets, planted optimal cover of 4.
    system, planted = planted_cover_system(24, 10, 4, rng=0)
    elements = [int(e) for e in np.random.default_rng(1).integers(0, 24, size=8)]
    offline = greedy_cover(system, elements)
    print(f"set system: {system}; planted cover size {len(planted)}")
    print(f"requested elements: {elements}")
    print(f"offline greedy cover: {sorted(offline)} "
          f"(LP bound {lp_cover_value(system, elements):.2f})\n")

    # The reduction: cache size = m, write copies cost w, reads cost 1.
    reduction = reduce_to_rw_paging(system, elements, w=8.0, repetitions=10)
    print(
        f"RW-paging image: {reduction.instance.n_pages} pages, "
        f"k={reduction.instance.cache_size}, "
        f"{len(reduction.sequence)} requests, w={reduction.w:g}, "
        f"{reduction.repetitions} repetitions per rho(e)\n"
    )

    bound = completeness_bound(reduction, len(offline))
    table = Table(
        ["policy", "paging cost", "cost / Lemma3.2 bound",
         "cover committed", "valid cover"],
        title="online policies on the set-cover image",
    )
    for policy in [LRUPolicy(), LandlordPolicy(), WaterFillingPolicy()]:
        result = simulate(reduction.instance, reduction.sequence, policy,
                          seed=0, record_events=True)
        cover = extract_cover(reduction, result.events)
        table.add_row(
            policy.name,
            result.cost,
            result.cost / bound,
            len(cover),
            system.is_cover(cover, elements),
        )
    print(table)
    print(
        "Every low-cost run is forced to commit to a valid set cover\n"
        "(Lemma 3.3); the committed covers are larger than the offline\n"
        "optimum — the gap that makes o(log^2 k) impossible in polynomial\n"
        "time (Theorem 1.3)."
    )


if __name__ == "__main__":
    main()
