"""The whole paper in one run.

Walks every theorem of Bansal-Naor-Talmon (SPAA'21) in order, executing a
miniature of each reproduction experiment and printing a PASS/FAIL verdict
— a two-minute end-to-end smoke of the entire library.  The full-size
versions live under benchmarks/ (E1-E11).

Run:  python examples/paper_tour.py
"""

from __future__ import annotations

import math

import numpy as np

CHECKS: list[tuple[str, bool, str]] = []


def check(claim: str, ok: bool, detail: str) -> None:
    CHECKS.append((claim, ok, detail))
    print(f"[{'PASS' if ok else 'FAIL'}] {claim}\n       {detail}")


def main() -> None:
    from repro.algorithms import (
        FractionalMultiLevelSolver,
        LRUPolicy,
        PrimalDualWeightedPaging,
        RandomizedMultiLevelPolicy,
        RandomizedWeightedPagingPolicy,
        RWAdapterPolicy,
        WaterFillingPolicy,
        WBLRUPolicy,
    )
    from repro.analysis import (
        verify_fractional_potential,
        verify_waterfilling_potential,
    )
    from repro.core.instance import WeightedPagingInstance, WritebackInstance
    from repro.core.reductions import (
        writeback_to_rw_instance,
        writeback_to_rw_sequence,
    )
    from repro.core.requests import WBRequestSequence
    from repro.offline import (
        best_opt_bound,
        fractional_offline_opt,
        offline_opt_multilevel,
        offline_opt_writeback,
    )
    from repro.setcover import (
        extract_cover,
        greedy_cover,
        planted_cover_system,
        reduce_to_rw_paging,
    )
    from repro.sim import simulate, simulate_writeback
    from repro.workloads import (
        geometric_instance,
        hot_writer_stream,
        multilevel_stream,
        sample_weights,
        zipf_stream,
    )

    print("== Efficient Online Weighted Multi-Level Paging: the tour ==\n")

    # --- Lemma 2.1: writeback <-> RW-paging -------------------------------
    wb = WritebackInstance(2, [7.0, 5.0, 6.0, 4.0], [2.0, 1.0, 2.0, 1.0])
    rng = np.random.default_rng(0)
    wseq = WBRequestSequence(rng.integers(0, 4, size=30), rng.random(30) < 0.4)
    native = offline_opt_writeback(wb, wseq)
    reduced = offline_opt_multilevel(
        writeback_to_rw_instance(wb), writeback_to_rw_sequence(wseq)
    )
    check(
        "Lemma 2.1 — writeback OPT equals RW-paging OPT",
        abs(native - reduced) < 1e-9,
        f"native DP {native:.0f} == reduced DP {reduced:.0f}",
    )

    # --- Theorem 1.1 / 4.1: deterministic O(k) ----------------------------
    k = 4
    inst = WeightedPagingInstance(k, sample_weights(12, rng=1, high=16.0))
    seq = zipf_stream(12, 600, rng=2)
    opt = best_opt_bound(inst, seq)
    wf_cost = simulate(inst, seq, WaterFillingPolicy()).cost
    check(
        "Theorem 1.1 — water-filling within 2k of OPT",
        wf_cost <= 2 * k * opt.value,
        f"ratio {wf_cost / opt.value:.2f} (bound {2 * k})",
    )
    ml = geometric_instance(5, 2, 2)
    mseq = multilevel_stream(5, 2, 60, rng=3)
    rep = verify_waterfilling_potential(ml, mseq)
    check(
        "Theorem 4.1 — potential drift holds at every request",
        rep.holds,
        f"worst per-request slack {rep.worst_slack():+.4f} (c = k = 2)",
    )

    # --- Section 4.2: fractional O(log k) + dual certificate --------------
    frac = FractionalMultiLevelSolver(inst).solve(seq).total_z_cost
    lp = fractional_offline_opt(inst, seq)
    check(
        "Section 4.2 — fractional solver within 4 log k of LP OPT",
        frac <= 4 * math.log(k) * lp + 64.0,
        f"online {frac:.0f} vs LP {lp:.0f} (ratio {frac / lp:.2f}, "
        f"4 log k = {4 * math.log(k):.2f})",
    )
    rep2 = verify_fractional_potential(ml, mseq)
    check(
        "Section 4.2 — its potential drift holds too",
        rep2.holds,
        f"worst slack {rep2.worst_slack():+.4f} (c = {rep2.c:.2f})",
    )
    cert = PrimalDualWeightedPaging(inst).solve(seq)
    check(
        "Primal-dual — the run certifies its own ratio (weak duality)",
        cert.dual_value <= lp + 1e-6,
        f"dual {cert.dual_value:.0f} <= LP {lp:.0f}; certified ratio "
        f"{cert.certified_ratio:.2f} <= 2 ln(1+k) = {2 * math.log(1 + k):.2f}",
    )

    # --- Theorem 1.2 / Section 4.3: randomized O(log^2 k) -----------------
    runs = [
        simulate(inst, seq, RandomizedWeightedPagingPolicy(), seed=s)
        for s in range(3)
    ]
    mean_cost = float(np.mean([r.cost for r in runs]))
    beta = runs[0].extra["beta"]
    check(
        "Theorem 1.2 — rounding loses O(log k) over the fractional cost",
        mean_cost <= 2 * beta * runs[0].extra["fractional_z_cost"],
        f"overhead x{mean_cost / runs[0].extra['fractional_z_cost']:.2f} "
        f"(beta = {beta:.2f})",
    )
    mli = geometric_instance(15, 4, 3)
    mls = multilevel_stream(15, 3, 300, rng=4)
    r = simulate(mli, mls, RandomizedMultiLevelPolicy(), seed=5)
    check(
        "Theorem 1.5 — Algorithm 2 feasible on multi-level instances",
        r.n_requests == 300,
        f"l = 3, every request served, cache never exceeded k = 4",
    )

    # --- Theorem 1.1/1.2 applied: writeback-aware caching -----------------
    wbi = WritebackInstance.uniform(60, 12, dirty_cost=24.0)
    hws = hot_writer_stream(60, 4000, hot_fraction=0.15, hot_write_prob=0.7,
                            rng=6)
    lru_cost = simulate_writeback(wbi, hws, WBLRUPolicy()).cost
    aware = simulate_writeback(wbi, hws, RWAdapterPolicy(WaterFillingPolicy()),
                               seed=7).cost
    check(
        "Writeback-aware beats dirty-oblivious LRU under write pressure",
        aware < lru_cost,
        f"aware {aware:.0f} vs wb-lru {lru_cost:.0f} "
        f"({aware / lru_cost:.2f}x)",
    )

    # --- Section 3 / Theorem 1.3: the lower bound --------------------------
    system, _ = planted_cover_system(12, 6, 3, rng=8)
    elements = [0, 4, 8, 11]
    red = reduce_to_rw_paging(system, elements, w=4.0, repetitions=5)
    run = simulate(red.instance, red.sequence, LRUPolicy(), seed=9,
                   record_events=True)
    cover = extract_cover(red, run.events)
    check(
        "Section 3 — the eviction trace encodes a valid set cover",
        system.is_cover(cover, elements),
        f"committed {len(cover)} sets vs offline "
        f"{len(greedy_cover(system, elements))} (the gap behind "
        "the Omega(log^2 k) hardness)",
    )

    failed = [c for c, ok, _ in CHECKS if not ok]
    print(f"\n{len(CHECKS) - len(failed)}/{len(CHECKS)} claims reproduced.")
    if failed:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
