"""Per-shard checkpoints: a pickled snapshot of the engine's state.

A :class:`ShardCheckpoint` captures everything that determines a shard's
future behavior — the bound policy (with its RNG cursor), the authoritative
cache contents, and the cost ledger — as **one** ``pickle.dumps`` of the
policy object graph (``policy -> cache -> ledger``), so the copy is
internally consistent by construction and, crucially, *process-portable*:
the same payload restores an in-process engine after a thread death or a
fresh worker process after a SIGKILL.

Two kinds of objects are deliberately excluded from the payload and
re-attached by the restoring engine (see ``__getstate__`` on
:class:`~repro.core.ledger.CostLedger`,
:class:`~repro.service.metrics.ServiceLedger` and
:class:`~repro.algorithms.base.Policy`):

* **Live observability handles** — registry metric children and the
  decision tracer (an open file).  Exposition counters are therefore
  *at-least-once* under recovery (replayed work counts twice), exactly
  like Prometheus counters across a process restart; the determinism
  surface is the ledger and the trace stream, both of which roll back.
* The **immutable substrate** (the instance's read-only weight arrays)
  *is* pickled — it is small — but the restoring engine re-points the
  cache and policy at its own instance so memory stays shared across
  repeated restores.

The trace stream rolls back through :meth:`~repro.obs.DecisionTracer.mark`
/ ``rewind``: a checkpoint remembers the tracer's file position, and
restoring truncates the JSONL back to it, so a recovered run's trace is
byte-identical to a fault-free run.

Checkpoints survive repeated restores for free: ``restore`` re-unpickles
the stored bytes each time, so handing state to an engine never aliases
the checkpoint's own payload.
"""

from __future__ import annotations

__all__ = ["ShardCheckpoint"]


class ShardCheckpoint:
    """A restorable snapshot of one shard engine (thread or process backed).

    ``seq`` is the replay-log sequence number of the last batch applied
    before capture: recovery restores the checkpoint and replays exactly
    the log entries with ``entry.seq > checkpoint.seq``.

    The engine contract is two methods: ``capture_state() -> (payload,
    trace_mark, t)`` returning the pickled state bytes, and
    ``restore_from(payload, trace_mark)`` installing them (rewinding the
    tracer when a mark is present).  The process backend forwards both
    over the worker pipe, so the checkpoint itself never touches a pipe
    or a file handle.
    """

    __slots__ = ("seq", "t", "trace_mark", "_payload")

    def __init__(self, seq: int, t: int, trace_mark, payload: bytes) -> None:
        self.seq = seq
        self.t = t
        self.trace_mark = trace_mark
        self._payload = payload

    @classmethod
    def capture(cls, engine, *, seq: int = 0) -> "ShardCheckpoint":
        """Pickle ``engine``'s replayable state (and mark its trace)."""
        payload, mark, t = engine.capture_state()
        return cls(seq=seq, t=t, trace_mark=mark, payload=payload)

    def restore(self, engine) -> None:
        """Load this checkpoint into ``engine`` (reusable: unpickles again)."""
        engine.restore_from(self._payload, self.trace_mark)

    @property
    def payload(self) -> bytes:
        """The pickled state bytes (what the cluster wire protocol ships)."""
        return self._payload

    @classmethod
    def from_wire(cls, t: int, payload: bytes) -> "ShardCheckpoint":
        """Rebuild a checkpoint received from another host.

        Sequence numbers and trace marks are host-local (replay-log
        cursors and open-file positions), so a shipped checkpoint carries
        neither: the receiving service re-sequences it against its own
        log and lets its own trace continue forward.
        """
        return cls(seq=0, t=int(t), trace_mark=None, payload=payload)

    def with_seq(self, seq: int) -> "ShardCheckpoint":
        """This checkpoint re-anchored at a new replay-log sequence number."""
        return ShardCheckpoint(seq=int(seq), t=self.t,
                               trace_mark=self.trace_mark,
                               payload=self._payload)

    def __repr__(self) -> str:
        return (
            f"ShardCheckpoint(seq={self.seq}, t={self.t}, "
            f"bytes={len(self._payload)})"
        )
