"""Per-shard checkpoints: a consistent deep copy of the engine's state.

A :class:`ShardCheckpoint` captures everything that determines a shard's
future behavior — the bound policy (with its RNG cursor), the authoritative
cache contents, and the cost ledger — as **one** ``copy.deepcopy`` of the
policy object graph (``policy -> cache -> ledger``), so the copy is
internally consistent by construction.

Two kinds of objects are deliberately *shared* with the live engine rather
than copied, via a pre-seeded deepcopy memo:

* **Immutable substrate** — the instance (read-only weight arrays).
* **Live observability handles** — registry metric children and the
  decision tracer (an open file).  Exposition counters are therefore
  *at-least-once* under recovery (replayed work counts twice), exactly
  like Prometheus counters across a process restart; the determinism
  surface is the ledger and the trace stream, both of which roll back.

The trace stream rolls back through :meth:`~repro.obs.DecisionTracer.mark`
/ ``rewind``: a checkpoint remembers the tracer's file position, and
restoring truncates the JSONL back to it, so a recovered run's trace is
byte-identical to a fault-free run.

Checkpoints survive repeated restores: ``restore`` deep-copies the stored
state *again* (with the same sharing rules), so handing state to an engine
never aliases the checkpoint's own copy.
"""

from __future__ import annotations

import copy

__all__ = ["ShardCheckpoint"]


class ShardCheckpoint:
    """A restorable snapshot of one :class:`~repro.service.engine.ShardEngine`.

    ``seq`` is the replay-log sequence number of the last batch applied
    before capture: recovery restores the checkpoint and replays exactly
    the log entries with ``entry.seq > checkpoint.seq``.
    """

    __slots__ = ("seq", "t", "trace_mark", "_state")

    def __init__(self, seq: int, t: int, trace_mark, state: dict) -> None:
        self.seq = seq
        self.t = t
        self.trace_mark = trace_mark
        self._state = state

    @classmethod
    def capture(cls, engine, *, seq: int = 0) -> "ShardCheckpoint":
        """Deep-copy ``engine``'s replayable state (shares live handles)."""
        memo = {id(obj): obj for obj in engine.shared_handles()}
        state = copy.deepcopy(engine.checkpoint_state(), memo)
        mark = engine.tracer.mark() if engine.tracer is not None else None
        return cls(seq=seq, t=engine.n_requests, trace_mark=mark, state=state)

    def restore(self, engine) -> None:
        """Load this checkpoint into ``engine`` (reusable: copies again)."""
        memo = {id(obj): obj for obj in engine.shared_handles()}
        state = copy.deepcopy(self._state, memo)
        engine.restore_state(state)
        if engine.tracer is not None and self.trace_mark is not None:
            engine.tracer.rewind(self.trace_mark)

    def __repr__(self) -> str:
        return f"ShardCheckpoint(seq={self.seq}, t={self.t})"
