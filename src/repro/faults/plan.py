"""Deterministic fault plans for chaos-testing the paging service.

A :class:`FaultPlan` is a *schedule*, not a random process: every fault is
pinned to a (shard, logical time) pair before the run starts, so a chaos
test replays bit-for-bit from its seed.  Plans come from three places:

* :meth:`FaultPlan.of` — explicit specs, for targeted tests,
* :meth:`FaultPlan.random` — a seeded sample over shards and times,
* :meth:`FaultPlan.parse` — the CLI grammar (``repro serve --faults``).

Each spec fires **at most once**: a shard restarted from a checkpoint will
replay through the same logical times without re-triggering the fault that
killed it — otherwise recovery could never make progress.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServiceConfigError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

#: Supported fault kinds, in documentation order.
#:
#: * ``kill`` — the shard worker raises :class:`~repro.errors.InjectedFault`
#:   *before* serving the request at ``at_request`` (batch state intact).
#: * ``delay`` — the worker sleeps ``delay_s`` seconds before serving the
#:   batch containing ``at_request`` (latency/backpressure, no state loss).
#: * ``drop`` — the queued batch containing ``at_request`` is discarded and
#:   the worker dies; only the replay log can restore the lost slice.
FAULT_KINDS = ("kill", "delay", "drop")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: do ``kind`` on ``shard`` at logical time ``at_request``."""

    kind: str
    shard: int
    at_request: int
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ServiceConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ServiceConfigError(f"fault shard must be >= 0, got {self.shard}")
        if self.at_request < 0:
            raise ServiceConfigError(
                f"fault at_request must be >= 0, got {self.at_request}"
            )
        if self.delay_s < 0.0:
            raise ServiceConfigError(
                f"fault delay_s must be >= 0, got {self.delay_s}"
            )
        if self.kind == "delay" and self.delay_s == 0.0:
            raise ServiceConfigError("delay fault requires delay_s > 0")

    def __str__(self) -> str:
        base = f"{self.kind}:{self.shard}@{self.at_request}"
        if self.kind == "delay":
            return f"{base}:{self.delay_s:g}"
        return base


@dataclass
class FaultPlan:
    """An immutable-after-construction schedule of :class:`FaultSpec` s.

    ``poll(shard, t)`` is the only mutating call: it atomically pops and
    returns the next spec for ``shard`` that is due at logical time ``t``
    (``spec.at_request <= t``), or None.  Popping implements fire-once.
    """

    specs: tuple[FaultSpec, ...]
    _pending: dict[int, list[FaultSpec]] = field(
        init=False, repr=False, compare=False
    )
    _lock: threading.Lock = field(init=False, repr=False, compare=False)
    _n_fired: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        per_shard: dict[int, list[FaultSpec]] = {}
        for spec in self.specs:
            per_shard.setdefault(spec.shard, []).append(spec)
        for lst in per_shard.values():
            # Descending by time: poll pops the *earliest* due spec from
            # the tail, O(1) per fire.
            lst.sort(key=lambda s: s.at_request, reverse=True)
        object.__setattr__(self, "_pending", per_shard)
        object.__setattr__(self, "_lock", threading.Lock())
        object.__setattr__(self, "_n_fired", 0)

    # -- construction ------------------------------------------------------
    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        """Build a plan from explicit specs."""
        return cls(tuple(specs))

    @classmethod
    def random(
        cls,
        seed: int,
        n_shards: int,
        n_requests: int,
        *,
        n_faults: int = 1,
        kinds: tuple[str, ...] = ("kill",),
        delay_s: float = 0.005,
    ) -> "FaultPlan":
        """Sample a seeded plan: ``n_faults`` faults over shards x [1, n).

        Times are drawn from the middle 80% of the request range so faults
        land mid-run rather than degenerating to start/end edge cases.
        """
        if n_shards <= 0 or n_requests <= 1:
            raise ServiceConfigError(
                "random fault plan needs n_shards >= 1 and n_requests >= 2"
            )
        rng = np.random.default_rng(seed)
        lo = max(1, n_requests // 10)
        hi = max(lo + 1, (9 * n_requests) // 10)
        specs = tuple(
            FaultSpec(
                kind=str(rng.choice(kinds)),
                shard=int(rng.integers(0, n_shards)),
                at_request=int(rng.integers(lo, hi)),
                delay_s=delay_s if kinds else 0.0,
            )
            for _ in range(n_faults)
        )
        return cls(specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI grammar: ``kind:shard@t[:delay_s]``, comma-separated.

        Examples: ``kill:0@1000``, ``delay:1@2000:0.01,drop:2@500``.
        """
        specs: list[FaultSpec] = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                kind, rest = token.split(":", 1)
                if ":" in rest:
                    where, delay = rest.split(":", 1)
                    delay_s = float(delay)
                else:
                    where, delay_s = rest, 0.0
                shard_s, at_s = where.split("@", 1)
                spec = FaultSpec(
                    kind=kind.strip(), shard=int(shard_s),
                    at_request=int(at_s), delay_s=delay_s,
                )
            except ServiceConfigError:
                raise
            except ValueError as exc:
                raise ServiceConfigError(
                    f"cannot parse fault spec {token!r} "
                    "(expected kind:shard@t[:delay_s])"
                ) from exc
            specs.append(spec)
        if not specs:
            raise ServiceConfigError(f"fault plan {text!r} contains no specs")
        return cls(tuple(specs))

    # -- runtime -----------------------------------------------------------
    def poll(self, shard: int, t: int) -> FaultSpec | None:
        """Pop and return the earliest due spec for ``shard`` at time ``t``.

        A spec is due when ``at_request <= t``; popped specs never fire
        again (so recovery replay passes through the kill time unharmed).
        """
        with self._lock:
            pending = self._pending.get(shard)
            if not pending or pending[-1].at_request > t:
                return None
            spec = pending.pop()
            self._n_fired += 1
            return spec

    @property
    def n_fired(self) -> int:
        """Number of specs that have fired so far."""
        with self._lock:
            return self._n_fired

    def pending(self) -> tuple[FaultSpec, ...]:
        """Specs that have not fired yet, in (shard, time) order."""
        with self._lock:
            return tuple(
                spec
                for shard in sorted(self._pending)
                for spec in reversed(self._pending[shard])
            )

    def __len__(self) -> int:
        return len(self.specs)

    def __str__(self) -> str:
        return ",".join(str(s) for s in self.specs)
