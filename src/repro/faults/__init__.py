"""Deterministic fault injection and shard checkpoint/recovery.

Quickstart — kill shard 0 mid-run and let the service recover::

    from repro.faults import FaultPlan
    from repro.service import PagingService, ServiceConfig

    config = ServiceConfig.from_policy_name(
        "waterfilling-heap", inst, n_shards=4,
        fault_plan=FaultPlan.parse("kill:0@10000"),
        checkpoint_interval=4096,
    )
    with PagingService(config) as svc:
        ...  # the supervisor restarts shard 0 from its last checkpoint
             # and replays the suffix; final cost == fault-free cost.

The pieces:

* :class:`FaultPlan` / :class:`FaultSpec` — a seeded, fire-once schedule
  of ``kill`` / ``delay`` / ``drop`` faults pinned to (shard, logical t).
* :class:`ShardCheckpoint` — a consistent deep copy of one shard engine's
  policy + cache + ledger (+ RNG and trace cursor), restorable repeatedly.
* :class:`~repro.errors.InjectedFault` — the exception injected faults
  raise, re-exported here for chaos tests.
"""

from repro.errors import InjectedFault
from repro.faults.checkpoint import ShardCheckpoint
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ShardCheckpoint",
]
