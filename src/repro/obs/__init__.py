"""repro.obs — unified observability: metrics, decision traces, spans.

Three orthogonal pieces, shared by the simulator, the sharded service, the
CLI and the benchmark harness:

* **Metrics registry** (:mod:`repro.obs.registry`) — labeled
  Counter/Gauge/Histogram families with Prometheus-style text exposition
  and a shared no-op registry (:func:`null_registry`) so instrumented code
  pays nothing when metrics are off.  :class:`MetricsServer` exposes a
  registry over HTTP (``repro serve --metrics-port``).
* **Decision tracer** (:mod:`repro.obs.tracer`) — a sampled, bounded JSONL
  stream of paging decisions (request, hit/miss, eviction candidates with
  scores, chosen victim, per-level cost).  Sampling is a pure function of
  ``(seed, t)``, so traces are byte-identical across execution modes.
  :func:`replay_trace` re-renders a trace into per-page / per-level
  summaries; :func:`validate_trace` checks files against
  :data:`TRACE_SCHEMA`.
* **Phase profiler** (:mod:`repro.obs.spans`) — context-manager spans
  (``ingest``, ``route``, ``evict``, ``snapshot``) aggregated per run and
  per shard, surfaced in service snapshots.
* **Request tracing** (:mod:`repro.obs.rtrace`) — deterministic causal
  trace contexts carried in the wire envelope and per-tier span JSONL
  (client → proxy → backend → shard) stitched into waterfalls, plus a
  crash flight recorder.  Sampling reuses the decision tracer's pure
  ``(seed, t)`` function, so span files are byte-identical across
  execution backends.
* **Federation** (:mod:`repro.obs.federation`) — scrape N backend
  ``/metrics`` pages, re-label by backend id, aggregate
  (``backend="all"``/``"max"``) and serve the cluster view on one port.

Quick start::

    from repro.obs import DecisionTracer, replay_trace
    from repro.sim import simulate

    with DecisionTracer("run.jsonl", sample=0.5, seed=0) as tracer:
        simulate(instance, seq, policy, seed=0, tracer=tracer)
    print(replay_trace("run.jsonl").render())
"""

from repro.obs.federation import (
    FederationServer,
    Federator,
    federate,
    parse_exposition,
)
from repro.obs.http import MetricsServer
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullMetric,
    get_registry,
    null_registry,
    set_registry,
)
from repro.obs.rtrace import (
    FlightRecorder,
    RequestSampler,
    SpanExporter,
    TraceContext,
    flight_recorder,
    longest_chain,
    read_spans,
    render_waterfall,
    set_flight_dump_dir,
    stitch_spans,
)
from repro.obs.signals import ControlSignals, SignalReader
from repro.obs.spans import PhaseProfiler, SpanStats, merge_span_stats
from repro.obs.tracer import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    DecisionTracer,
    TraceSummary,
    TraceValidation,
    read_trace,
    replay_trace,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetric",
    "NULL_METRIC",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "null_registry",
    "MetricsServer",
    "PhaseProfiler",
    "SpanStats",
    "merge_span_stats",
    "TraceContext",
    "RequestSampler",
    "SpanExporter",
    "FlightRecorder",
    "flight_recorder",
    "set_flight_dump_dir",
    "read_spans",
    "stitch_spans",
    "longest_chain",
    "render_waterfall",
    "Federator",
    "FederationServer",
    "federate",
    "parse_exposition",
    "ControlSignals",
    "SignalReader",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "DecisionTracer",
    "TraceSummary",
    "TraceValidation",
    "read_trace",
    "replay_trace",
    "validate_trace",
]
