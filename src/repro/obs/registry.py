"""Labeled metric primitives and a process-wide registry.

A deliberately small subset of the Prometheus data model — enough to make
every counter the service and CLI expose scrapeable without adding a
dependency:

* :class:`Counter` — monotonically increasing float (``inc``),
* :class:`Gauge` — settable float (``set`` / ``inc`` / ``dec``),
* :class:`Histogram` — fixed cumulative buckets plus ``_sum`` / ``_count``,
* :class:`MetricsRegistry` — owns named metric *families* (one per metric
  name, children keyed by label values) and renders the standard text
  exposition format (``text/plain; version=0.0.4``).

Two fast paths keep observability out of the hot loops:

* children are plain objects with a single attribute update per
  ``inc``/``observe`` — no locks (each child is written by one shard
  thread; torn reads during exposition are benign for monotone floats),
* :func:`null_registry` returns a shared registry whose families and
  children are all the same no-op sink, so code can be written
  unconditionally against the metrics API and pay one attribute load when
  metrics are off.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetric",
    "NULL_METRIC",
    "null_registry",
    "get_registry",
    "set_registry",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds) — tuned for batch
#: service times from sub-millisecond to tens of seconds.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing value; one child per label combination."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, in-flight work)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount


class Histogram:
    """Cumulative fixed-bucket histogram with ``_sum`` and ``_count``."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class NullMetric:
    """Absorbs every metric operation; the no-op fast path.

    A single shared instance stands in for families *and* children, so
    ``registry.counter(...).labels(...).inc()`` is three cheap no-ops when
    metrics are disabled.
    """

    __slots__ = ()

    def labels(self, *values: str) -> "NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = NullMetric()

_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one named metric, keyed by label-value tuples."""

    __slots__ = ("name", "help", "type", "labelnames", "_children",
                 "_buckets", "_lock")

    def __init__(self, name: str, help_text: str, metric_type: str,
                 labelnames: tuple[str, ...],
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], object] = {}
        self._buckets = buckets
        self._lock = threading.Lock()

    def labels(self, *values) -> Counter | Gauge | Histogram:
        """The child for one label-value combination (created on first use).

        Call with no arguments for an unlabeled family.  Values are
        stringified, so ``labels(3)`` and ``labels("3")`` are one child.
        """
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label values "
                f"({', '.join(self.labelnames)}), got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    cls = _TYPES[self.type]
                    child = cls(self._buckets) if cls is Histogram else cls()
                    self._children[key] = child
        return child

    # Unlabeled convenience: family.inc() etc. forward to the () child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> dict[tuple[str, ...], object]:
        """A point-in-time copy of the label -> child mapping."""
        return dict(self._children)


def _fmt_value(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _fmt_labels(names: tuple[str, ...], values: tuple[str, ...],
                extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{v}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{v}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class MetricsRegistry:
    """Owns metric families and renders the text exposition format."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(self, name: str, help_text: str, metric_type: str,
                  labelnames: tuple[str, ...],
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.type != metric_type or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.type}{family.labelnames}, cannot re-register "
                        f"as {metric_type}{labelnames}"
                    )
                return family
            family = MetricFamily(name, help_text, metric_type, labelnames,
                                  buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._register(name, help_text, "histogram", labelnames, buckets)

    def families(self) -> list[MetricFamily]:
        """Registered families, sorted by name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def collect(self) -> dict[str, dict[tuple[str, ...], float | dict]]:
        """Point-in-time values keyed by metric name then label values.

        Counters and gauges map to their float value; histograms to a
        ``{"sum": ..., "count": ...}`` dict.  This is the structured twin
        of :meth:`render` for callers (tests, wire snapshots) that need
        numbers, not text exposition.
        """
        out: dict[str, dict[tuple[str, ...], float | dict]] = {}
        for fam in self.families():
            children: dict[tuple[str, ...], float | dict] = {}
            for key, child in sorted(fam.children().items()):
                if fam.type == "histogram":
                    children[key] = {"sum": child.sum, "count": child.count}
                else:
                    children[key] = child.value
            out[fam.name] = children
        return out

    def render(self) -> str:
        """Prometheus text exposition of every family and child."""
        lines: list[str] = []
        for fam in self.families():
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.type}")
            for key, child in sorted(fam.children().items()):
                if fam.type == "histogram":
                    cumulative = 0
                    for bound, n in zip(child.buckets, child.counts):
                        cumulative += n
                        labels = _fmt_labels(fam.labelnames, key,
                                             (("le", _fmt_value(bound)),))
                        lines.append(f"{fam.name}_bucket{labels} {cumulative}")
                    cumulative += child.counts[-1]
                    labels = _fmt_labels(fam.labelnames, key, (("le", "+Inf"),))
                    lines.append(f"{fam.name}_bucket{labels} {cumulative}")
                    base = _fmt_labels(fam.labelnames, key)
                    lines.append(f"{fam.name}_sum{base} {_fmt_value(child.sum)}")
                    lines.append(f"{fam.name}_count{base} {child.count}")
                else:
                    labels = _fmt_labels(fam.labelnames, key)
                    lines.append(f"{fam.name}{labels} {_fmt_value(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""


class _NullRegistry(MetricsRegistry):
    """Registry whose every family is the shared :data:`NULL_METRIC`."""

    def _register(self, name, help_text, metric_type, labelnames,
                  buckets=DEFAULT_BUCKETS):
        return NULL_METRIC

    def families(self) -> list[MetricFamily]:
        return []


_NULL_REGISTRY = _NullRegistry()
_default_registry = MetricsRegistry()


def null_registry() -> MetricsRegistry:
    """The shared no-op registry — safe to pass anywhere a registry goes."""
    return _NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the old one."""
    global _default_registry
    old = _default_registry
    _default_registry = registry
    return old
