"""Metrics federation: one cluster-wide exposition page from N backends.

The proxy (or any aggregator) scrapes each backend's ``/metrics`` page,
re-labels every sample with ``backend="<id>"``, and serves the merged
view on a single Prometheus port.  On top of the per-backend samples the
page carries synthetic aggregate series:

* ``backend="all"`` — the sum across backends, for every family.
  Counters and histogram ``_bucket``/``_sum``/``_count`` samples sum
  exactly (histogram merge is associative: bucket counts with equal
  ``le`` add), so a consumer reading only the ``all`` rows sees the same
  totals it would get by summing the individual scrapes itself — the
  property the CI smoke job asserts.
* ``backend="max"`` — additionally for gauges, where a sum (e.g. of
  epochs) can be meaningless but the max is not.

Liveness of each scrape target is reported as
``repro_federation_up{backend="<id>"}``; an unreachable backend simply
drops out of the merged families for that scrape rather than failing
the whole page.

Everything is stdlib: :mod:`urllib.request` for scraping and the same
``ThreadingHTTPServer``-on-a-daemon-thread shape as
:class:`~repro.obs.http.MetricsServer` for serving.
"""

from __future__ import annotations

import re
import threading
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.registry import MetricsRegistry, _fmt_value

__all__ = [
    "ExpositionFamily",
    "parse_exposition",
    "federate",
    "scrape",
    "Federator",
    "FederationServer",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) ?(.*)$")
_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass
class ExpositionFamily:
    """One metric family parsed from a text exposition page.

    ``samples`` holds ``(sample_name, labels, value)`` triples where
    ``labels`` is a tuple of ``(name, value)`` pairs in page order —
    ``sample_name`` may differ from the family name for histogram
    ``_bucket``/``_sum``/``_count`` series.
    """

    name: str
    help: str = ""
    type: str = "untyped"
    samples: list = field(default_factory=list)


def _family_of(sample_name: str, known: dict) -> str:
    """Map a sample name back to its family (histogram suffix stripping)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in known:
                return base
    return sample_name


def parse_exposition(text: str) -> dict:
    """Parse a Prometheus text page into ``{family name: ExpositionFamily}``.

    Tolerant of anything :meth:`MetricsRegistry.render` emits; unknown
    or malformed lines are skipped rather than raised on, since a
    federating proxy must not die on one odd backend.
    """
    families: dict[str, ExpositionFamily] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            m = _HELP_RE.match(line)
            if m:
                fam = families.setdefault(m.group(1),
                                          ExpositionFamily(m.group(1)))
                fam.help = m.group(2)
                continue
            m = _TYPE_RE.match(line)
            if m:
                fam = families.setdefault(m.group(1),
                                          ExpositionFamily(m.group(1)))
                fam.type = m.group(2)
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            continue
        sample_name, raw_labels, raw_value = m.groups()
        try:
            value = float(raw_value)
        except ValueError:
            continue
        labels = tuple(
            (lm.group(1), lm.group(2))
            for lm in _LABEL_RE.finditer(raw_labels or "")
        )
        fam_name = _family_of(sample_name, families)
        fam = families.setdefault(fam_name, ExpositionFamily(fam_name))
        fam.samples.append((sample_name, labels, value))
    return families


def _fmt_sample(sample_name: str, labels, value) -> str:
    if labels:
        body = ",".join(f'{k}="{v}"' for k, v in labels)
        return f"{sample_name}{{{body}}} {_fmt_value(value)}"
    return f"{sample_name} {_fmt_value(value)}"


def federate(pages: dict, *, up: dict | None = None) -> str:
    """Merge per-backend exposition pages into one cluster-wide page.

    ``pages`` maps backend id -> exposition text.  Every sample is
    re-emitted with a leading ``backend="<id>"`` label, followed by
    synthetic ``backend="all"`` sums (and ``backend="max"`` rows for
    gauges).  ``up`` optionally maps backend id -> bool and becomes the
    ``repro_federation_up`` gauge (ids missing from ``pages`` — failed
    scrapes — contribute only there).
    """
    parsed = {bid: parse_exposition(text)
              for bid, text in sorted(pages.items())}
    names: list[str] = []
    for fams in parsed.values():
        for name in fams:
            if name not in names:
                names.append(name)
    out: list[str] = []
    for name in sorted(names):
        help_text, type_text = "", "untyped"
        for fams in parsed.values():
            fam = fams.get(name)
            if fam is None:
                continue
            if fam.help and not help_text:
                help_text = fam.help
            if fam.type != "untyped":
                type_text = fam.type
        out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {type_text}")
        # (sample_name, labels) -> [sum, max]; insertion order = first seen.
        aggregates: dict = {}
        for bid, fams in parsed.items():
            fam = fams.get(name)
            if fam is None:
                continue
            for sample_name, labels, value in fam.samples:
                out.append(_fmt_sample(
                    sample_name, (("backend", bid),) + labels, value))
                cell = aggregates.get((sample_name, labels))
                if cell is None:
                    aggregates[(sample_name, labels)] = [value, value]
                else:
                    cell[0] += value
                    cell[1] = max(cell[1], value)
        for (sample_name, labels), (total, peak) in aggregates.items():
            out.append(_fmt_sample(
                sample_name, (("backend", "all"),) + labels, total))
            if type_text == "gauge":
                out.append(_fmt_sample(
                    sample_name, (("backend", "max"),) + labels, peak))
    if up is not None:
        out.append("# HELP repro_federation_up "
                   "Whether the last scrape of this backend succeeded")
        out.append("# TYPE repro_federation_up gauge")
        for bid in sorted(up):
            out.append(_fmt_sample("repro_federation_up",
                                   (("backend", bid),), 1 if up[bid] else 0))
    return "\n".join(out) + "\n" if out else ""


def scrape(url: str, *, timeout: float = 2.0) -> str:
    """Fetch one exposition page over HTTP."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


class Federator:
    """Scrapes a set of backend ``/metrics`` URLs and merges the pages.

    ``targets`` maps backend id -> scrape URL.  A local registry (the
    proxy's own forwarding/migration counters) joins the merge under
    ``local_id`` without an HTTP round trip.  Scrape failures mark the
    backend down in ``repro_federation_up`` and skip its samples.
    """

    def __init__(self, targets: dict, *,
                 local_registry: MetricsRegistry | None = None,
                 local_id: str = "proxy", timeout: float = 2.0) -> None:
        self.targets = dict(targets)
        self.local_registry = local_registry
        self.local_id = local_id
        self.timeout = timeout

    def render(self) -> str:
        """One fresh scrape of every target, merged into a single page."""
        pages: dict = {}
        up: dict = {}
        for bid, url in self.targets.items():
            try:
                pages[bid] = scrape(url, timeout=self.timeout)
                up[bid] = True
            except (OSError, ValueError):
                up[bid] = False
        if self.local_registry is not None:
            pages[self.local_id] = self.local_registry.render()
        return federate(pages, up=up)


class FederationServer:
    """Serves a :class:`Federator` at ``/metrics`` from a daemon thread.

    The cluster-wide twin of :class:`~repro.obs.http.MetricsServer`:
    ``port=0`` binds an ephemeral port, ``/healthz`` answers ``ok``, and
    each scrape triggers a fresh fan-out to the backends.
    """

    def __init__(self, federator: Federator, *, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.federator = federator
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL."""
        return f"http://{self._host}:{self.port}/metrics"

    def start(self) -> "FederationServer":
        """Bind and start serving on a daemon thread."""
        if self._httpd is not None:
            return self
        federator = self.federator

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path.split("?", 1)[0] == "/metrics":
                    body = federator.render().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                elif self.path == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args) -> None:
                pass  # scrapes should not spam the CLI

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-federation",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "FederationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "serving" if self._httpd is not None else "stopped"
        return f"FederationServer({self.url}, {state})"
