"""Tiny stdlib HTTP thread exposing a registry at ``/metrics``.

No framework, no dependency: a :class:`~http.server.ThreadingHTTPServer`
on a daemon thread, rendering :meth:`MetricsRegistry.render` per scrape.
``/healthz`` answers ``ok`` for liveness probes.  Intended for
``repro serve --metrics-port`` and tests; anything heavier should scrape
this endpoint rather than import the process.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsServer"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serves ``GET /metrics`` (text exposition) from a background thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  Usable as a context manager.
    """

    def __init__(self, registry: MetricsRegistry, *, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.registry = registry
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL."""
        return f"http://{self._host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Bind and start serving on a daemon thread."""
        if self._httpd is not None:
            return self
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path.split("?", 1)[0] == "/metrics":
                    body = registry.render().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                elif self.path == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args) -> None:
                pass  # scrapes should not spam the CLI

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "serving" if self._httpd is not None else "stopped"
        return f"MetricsServer({self.url}, {state})"
