"""Distributed request tracing on the deterministic ``(seed, t)`` sampler.

PR 2's :class:`~repro.obs.tracer.DecisionTracer` established the repo's
tracing discipline: sampling is a pure function of ``(seed, t)`` through
the splitmix64 finalizer, so two same-seed runs emit byte-identical
JSONL regardless of threading.  This module lifts that discipline across
*process and machine boundaries*:

* :class:`TraceContext` — a compact causal context (trace id, parent
  span id, sampling bit) small enough to ride in the wire envelope's
  optional ``trace`` field.  Child span ids are derived, not random:
  ``mix64(parent ^ fnv1a64(name) ^ index)``, so the same request through
  the same tiers produces the same ids in every run.
* :class:`RequestSampler` — the head-based sampling decision,
  bit-compatible with ``DecisionTracer``: request ``t`` is sampled iff
  ``mix64((seed << 1 | 1) ^ t) < ceil(sample * 2**64)``, and that same
  value *is* the trace id.
* :class:`SpanExporter` — one JSONL span file per logical writer.  With
  ``wall=False`` (service and shard tiers) records carry no wall-clock
  fields at all, which is what makes the byte-identity guarantee hold
  across inline/thread/process backends; network-facing tiers opt into
  ``wall=True`` for timestamps and durations.
* :class:`FlightRecorder` — a fixed-size ring of the last N span records
  per tier, dumped to disk on shard death, migration failure, or
  SIGUSR1, so postmortems after chaos runs have causal context.
* :func:`read_spans` / :func:`stitch_spans` / :func:`render_waterfall`
  — offline stitching of span files from any number of tiers into
  per-request waterfalls (``repro trace stitch``).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.obs.tracer import _mix64

__all__ = [
    "TraceContext",
    "RequestSampler",
    "SpanExporter",
    "FlightRecorder",
    "flight_recorder",
    "set_flight_dump_dir",
    "read_spans",
    "stitch_spans",
    "longest_chain",
    "render_waterfall",
]

_MASK = 0xFFFFFFFFFFFFFFFF
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _name64(name: str) -> int:
    """FNV-1a 64-bit hash of a span name.

    Python's builtin ``hash`` is salted per process, so span ids derived
    from it would differ run to run; the name hash is pinned here instead.
    """
    h = _FNV_OFFSET
    for byte in name.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & _MASK
    return h


@dataclass(frozen=True)
class TraceContext:
    """Causal context carried across tiers: ids plus the sampling bit.

    ``span_id`` is the id of the *current* (parent) span; every tier that
    does work derives a child context via :meth:`child` and reports the
    child id upward in its span record.  The root context has
    ``span_id == trace_id``.
    """

    trace_id: int
    span_id: int
    sampled: bool

    def child(self, name: str, index: int = 0) -> "TraceContext":
        """Deterministic child context for span ``name``.

        ``index`` disambiguates siblings with the same name (e.g. one
        ``queue`` span per shard, one ``forward`` span per backend).
        """
        sid = _mix64(self.span_id ^ _name64(name) ^ (index & _MASK))
        return TraceContext(self.trace_id, sid, self.sampled)

    def to_wire(self) -> list:
        """The wire-envelope form: ``[trace_hex, span_hex, sampled]``."""
        return [f"{self.trace_id:016x}", f"{self.span_id:016x}",
                int(self.sampled)]

    @classmethod
    def from_wire(cls, value) -> "TraceContext | None":
        """Parse the wire form; malformed input degrades to untraced."""
        if value is None:
            return None
        try:
            trace_hex, span_hex, sampled = value
            return cls(int(str(trace_hex), 16) & _MASK,
                       int(str(span_hex), 16) & _MASK, bool(sampled))
        except (TypeError, ValueError):
            return None


class RequestSampler:
    """Head-based request sampling, bit-compatible with ``DecisionTracer``.

    Request ``t`` (a deterministic submit counter, not wall time) maps to
    ``trace_id = mix64((seed << 1 | 1) ^ t)`` and is sampled iff the id
    falls below ``ceil(sample * 2**64)`` — the exact comparison the
    decision tracer makes, so a request's decision trace and its request
    trace are sampled in lockstep when they share a seed.
    """

    __slots__ = ("seed", "sample", "_threshold")

    def __init__(self, seed: int = 0, sample: float = 1.0) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.seed = int(seed)
        self.sample = float(sample)
        self._threshold = math.ceil(self.sample * 2.0 ** 64)

    def trace_id(self, t: int) -> int:
        """The deterministic trace id for logical time ``t``."""
        return _mix64(((self.seed << 1) | 1) ^ (t & _MASK))

    def want(self, t: int) -> bool:
        """True when logical time ``t`` is sampled."""
        return self.trace_id(t) < self._threshold

    def context(self, t: int) -> TraceContext:
        """Root context for logical time ``t`` (``span_id == trace_id``)."""
        tid = self.trace_id(t)
        return TraceContext(tid, tid, tid < self._threshold)


class FlightRecorder:
    """Fixed-size ring of the last N span records per tier.

    Every :class:`SpanExporter` tees its records here (one shared
    process-global instance by default), so when a shard dies or a
    migration fails the dump carries the causal context leading up to the
    failure.  Dumps are no-ops until a dump directory is configured —
    tests and library users who never opt in never touch the filesystem.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rings: dict[str, deque] = {}
        self._lock = threading.Lock()
        self._dump_dir: Path | None = None
        self._n_dumps = 0

    def record(self, tier: str, record: dict) -> None:
        """Append one span record to the tier's ring."""
        with self._lock:
            ring = self._rings.get(tier)
            if ring is None:
                ring = self._rings[tier] = deque(maxlen=self.capacity)
            ring.append(record)

    def snapshot(self) -> dict:
        """Current ring contents, tier -> list (oldest first)."""
        with self._lock:
            return {tier: list(ring) for tier, ring in self._rings.items()}

    def set_dump_dir(self, directory) -> None:
        """Arm :meth:`dump`: dumps land under ``directory`` from now on."""
        with self._lock:
            self._dump_dir = Path(directory) if directory is not None else None

    def clear(self) -> None:
        """Drop all rings (dump directory and counter stay)."""
        with self._lock:
            self._rings.clear()

    def dump(self, reason: str, directory=None) -> Path | None:
        """Write the rings to a JSON postmortem file; returns its path.

        ``directory`` overrides the configured dump dir; with neither set
        this is a no-op returning ``None`` (never litters the cwd).
        """
        with self._lock:
            target = Path(directory) if directory is not None else self._dump_dir
            if target is None:
                return None
            self._n_dumps += 1
            slug = re.sub(r"[^A-Za-z0-9]+", "-", reason).strip("-") or "dump"
            path = target / f"flight-{self._n_dumps:03d}-{slug}.json"
            payload = {
                "reason": reason,
                "capacity": self.capacity,
                "spans": {tier: list(ring)
                          for tier, ring in sorted(self._rings.items())},
            }
        target.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path


_GLOBAL_RECORDER = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-global flight recorder all exporters tee into."""
    return _GLOBAL_RECORDER


def set_flight_dump_dir(directory) -> None:
    """Arm the global flight recorder's dump directory."""
    _GLOBAL_RECORDER.set_dump_dir(directory)


class SpanExporter:
    """Appends span records to one JSONL file (single logical writer).

    ``wall=False`` (the default) omits every wall-clock field so the file
    is a pure function of the request stream — the property the
    inline-vs-process byte-identity test pins.  Network-facing tiers pass
    ``wall=True`` to get ``ts`` (epoch seconds) and optional ``dur``.

    Key order is fixed (``ev, trace, span, parent, name, tier, t, attrs,
    ts, dur``) and records are compact-separator JSON, matching the
    decision tracer's emission discipline.
    """

    def __init__(self, path, *, wall: bool = False,
                 recorder: FlightRecorder | None = None) -> None:
        self.path = Path(path)
        self.wall = wall
        self._fh = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._recorder = recorder if recorder is not None else flight_recorder()
        self._closed = False

    def emit(self, ctx: TraceContext, name: str, *, tier: str, t: int = 0,
             index: int = 0, attrs: dict | None = None,
             dur: float | None = None) -> TraceContext:
        """Record one span as a child of ``ctx``; returns the child context.

        Unsampled contexts still derive (and return) the child so
        propagation code is branch-free; nothing is written for them.
        """
        child = ctx.child(name, index)
        if not ctx.sampled:
            return child
        obj: dict = {
            "ev": "span",
            "trace": f"{child.trace_id:016x}",
            "span": f"{child.span_id:016x}",
            "parent": f"{ctx.span_id:016x}",
            "name": name,
            "tier": tier,
            "t": int(t),
        }
        if attrs:
            obj["attrs"] = attrs
        if self.wall:
            obj["ts"] = round(time.time(), 6)
            if dur is not None:
                obj["dur"] = round(dur, 6)
        self._recorder.record(tier, obj)
        line = json.dumps(obj, separators=(",", ":")) + "\n"
        with self._lock:
            if not self._closed:
                self._fh.write(line)
        return child

    def flush(self) -> None:
        """Flush buffered records to disk."""
        with self._lock:
            if not self._closed:
                self._fh.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent; later emits are dropped)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "SpanExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- offline stitching -----------------------------------------------------

def read_spans(*paths) -> list:
    """Parse span JSONL files into a flat record list (file order kept)."""
    records: list = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def stitch_spans(records) -> dict:
    """Group span records by trace id, preserving input order.

    Duplicate ``(trace, span)`` pairs keep only their first occurrence:
    span ids are deterministic functions of the parent chain, so a
    recovery replay (or re-reading overlapping files) re-emits the same
    ids and stitching collapses them instead of double-counting.
    """
    traces: dict[str, list] = {}
    seen: set[tuple[str, str]] = set()
    for rec in records:
        if rec.get("ev") != "span":
            continue
        key = (rec["trace"], rec["span"])
        if key in seen:
            continue
        seen.add(key)
        traces.setdefault(rec["trace"], []).append(rec)
    return traces


def _children_index(records) -> tuple[dict, list]:
    """(parent span id -> children, roots) for one trace's records."""
    ids = {rec["span"] for rec in records}
    children: dict[str, list] = {}
    roots = []
    for rec in records:
        parent = rec.get("parent", "")
        if parent in ids:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)
    return children, roots


def longest_chain(records) -> list:
    """The longest root-to-leaf causal chain among one trace's spans.

    This is the quantity the acceptance criterion counts ("N
    causally-linked spans"): each element's ``parent`` is the previous
    element's ``span``.
    """
    children, roots = _children_index(records)
    best: list = []

    def walk(rec, acc, seen) -> None:
        nonlocal best
        if len(acc) > len(best):
            best = list(acc)
        for child in children.get(rec["span"], []):
            if child["span"] in seen:  # defensive: malformed cyclic input
                continue
            walk(child, acc + [child], seen | {child["span"]})

    for root in roots:
        walk(root, [root], {root["span"]})
    return best


def render_waterfall(trace_id: str, records) -> str:
    """Render one trace's spans as an indented causal waterfall."""
    children, roots = _children_index(records)
    wall = [rec["ts"] for rec in records if "ts" in rec]
    t0 = min(wall) if wall else None
    lines = [f"trace {trace_id}  ({len(records)} span(s))"]

    def describe(rec) -> str:
        bits = [f"{rec.get('tier', '?')}:{rec.get('name', '?')}",
                f"t={rec.get('t', 0)}"]
        if t0 is not None and "ts" in rec:
            bits.append(f"+{1e3 * (rec['ts'] - t0):.3f}ms")
        if "dur" in rec:
            bits.append(f"dur={1e3 * rec['dur']:.3f}ms")
        attrs = rec.get("attrs") or {}
        bits += [f"{k}={v}" for k, v in attrs.items()]
        return "  ".join(bits)

    def walk(rec, depth, seen) -> None:
        lines.append("  " * depth + describe(rec))
        for child in children.get(rec["span"], []):
            if child["span"] in seen:
                continue
            walk(child, depth + 1, seen | {child["span"]})

    for root in roots:
        walk(root, 1, {root["span"]})
    return "\n".join(lines) + "\n"
