"""Control-plane signals: first-class occupancy and shed-rate gauges.

The admission controller and autoscaler need three load facts the raw
metric families only partially express:

* **queue occupancy** — the fullest shard queue as a fraction of the
  effective queue limit (``repro_queue_depth`` over
  ``repro_queue_capacity``),
* **in-flight occupancy** — outstanding network submits as a fraction
  of the total window budget (``repro_net_inflight`` over
  ``repro_net_max_inflight`` × live connections),
* **shed / overload rates** — requests-per-second derivatives of the
  ``repro_net_shed_total``, ``repro_net_overloaded_total`` and
  ``repro_overloaded_total`` counters.

:class:`SignalReader` computes them from either a live
:class:`~repro.obs.MetricsRegistry` (single node) or a federated text
exposition page (cluster mode, via
:func:`~repro.obs.federation.parse_exposition`), and *publishes* them
back as first-class gauges — ``repro_queue_occupancy``,
``repro_inflight_occupancy``, ``repro_shed_rate``,
``repro_overload_rate`` — so ``/metrics``, federation and ``repro top``
all show exactly the numbers the controller is acting on.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import monotonic

from repro.obs.federation import parse_exposition
from repro.obs.registry import MetricsRegistry

__all__ = ["ControlSignals", "SignalReader"]

#: Synthetic per-backend aggregate labels a federated page carries;
#: excluded when re-aggregating so nothing is double counted.
_SYNTHETIC_BACKENDS = ("all", "max")


@dataclass(frozen=True)
class ControlSignals:
    """One sampled set of control inputs, plus the scalar they fold to."""

    queue_occupancy: float
    inflight_occupancy: float
    shed_rate: float
    overload_rate: float
    interval_s: float
    pressure: float

    def __str__(self) -> str:
        return (f"pressure={self.pressure:.3f} "
                f"(queue={self.queue_occupancy:.3f}, "
                f"inflight={self.inflight_occupancy:.3f}, "
                f"shed={self.shed_rate:.1f}/s, "
                f"overload={self.overload_rate:.1f}/s)")


class SignalReader:
    """Samples control signals from a registry or a federated page.

    ``source`` is either a :class:`MetricsRegistry` (read via
    ``collect()``) or a zero-argument callable returning Prometheus text
    exposition (e.g. ``lambda: scrape(federated_url)``).  Successive
    :meth:`sample` calls difference the shed/overload counters into
    rates; the first call reports rate 0 (no interval yet).

    ``publish`` (default: the source registry, when there is one) names
    the registry that receives the derived first-class gauges.

    ``full_scale_rate`` is the shed+overload rate, in events/s, that
    saturates the pressure scalar at 1.0 — any rejection pushes pressure
    up, sustained rejection pins it high.
    """

    def __init__(self, source, *, publish: MetricsRegistry | None = None,
                 full_scale_rate: float = 200.0,
                 clock=monotonic) -> None:
        if full_scale_rate <= 0:
            raise ValueError(
                f"full_scale_rate must be > 0, got {full_scale_rate}")
        self._registry = source if isinstance(source, MetricsRegistry) else None
        self._page = None if self._registry is not None else source
        if self._page is not None and not callable(self._page):
            raise TypeError(
                "source must be a MetricsRegistry or a callable "
                f"returning exposition text, got {type(source).__name__}")
        self._clock = clock
        self._full_scale = full_scale_rate
        self._last_t: float | None = None
        self._last_shed = 0.0
        self._last_overload = 0.0
        self._families: dict = {}
        publish = publish if publish is not None else self._registry
        if publish is not None:
            self._g_queue = publish.gauge(
                "repro_queue_occupancy",
                "Fullest shard queue / effective queue limit")
            self._g_inflight = publish.gauge(
                "repro_inflight_occupancy",
                "Outstanding net submits / total window budget")
            self._g_shed = publish.gauge(
                "repro_shed_rate", "Net-layer sheds per second")
            self._g_overload = publish.gauge(
                "repro_overload_rate",
                "Overloaded rejections per second (net + service)")
        else:
            self._g_queue = self._g_inflight = None
            self._g_shed = self._g_overload = None

    # -- raw family access -------------------------------------------------
    def _values(self, name: str) -> list[float]:
        """Every child value of one family, synthetic aggregates excluded."""
        if self._registry is not None:
            fam = self._registry.collect().get(name, {})
            return [v for v in fam.values() if isinstance(v, (int, float))]
        fam = self._families.get(name)
        if fam is None:
            return []
        return [value for sample_name, labels, value in fam.samples
                if sample_name == name
                and dict(labels).get("backend") not in _SYNTHETIC_BACKENDS]

    def _refresh_page(self) -> None:
        self._families = parse_exposition(self._page())

    # -- sampling ----------------------------------------------------------
    def sample(self) -> ControlSignals:
        """One coherent reading; publishes the derived gauges as a side
        effect."""
        if self._page is not None:
            self._refresh_page()
        now = self._clock()
        dt = 0.0 if self._last_t is None else max(now - self._last_t, 1e-9)

        depths = self._values("repro_queue_depth")
        caps = self._values("repro_queue_capacity")
        cap = max(caps) if caps else 0.0
        queue_occ = (max(depths) / cap) if depths and cap > 0 else 0.0

        inflight = sum(self._values("repro_net_inflight"))
        window = self._values("repro_net_max_inflight")
        conns = sum(self._values("repro_net_active_connections"))
        budget = sum(window) * max(conns / max(len(window), 1), 1.0) \
            if window else 0.0
        inflight_occ = (inflight / budget) if budget > 0 else 0.0

        shed = sum(self._values("repro_net_shed_total"))
        overload = (sum(self._values("repro_overloaded_total"))
                    + sum(self._values("repro_net_overloaded_total")))
        if self._last_t is None:
            shed_rate = overload_rate = 0.0
        else:
            shed_rate = max(shed - self._last_shed, 0.0) / dt
            overload_rate = max(overload - self._last_overload, 0.0) / dt
        self._last_t, self._last_shed, self._last_overload = \
            now, shed, overload

        pressure = max(
            min(queue_occ, 1.0),
            min(inflight_occ, 1.0),
            min((shed_rate + overload_rate) / self._full_scale, 1.0),
        )
        if self._g_queue is not None:
            self._g_queue.set(queue_occ)
            self._g_inflight.set(inflight_occ)
            self._g_shed.set(shed_rate)
            self._g_overload.set(overload_rate)
        return ControlSignals(
            queue_occupancy=queue_occ,
            inflight_occupancy=inflight_occ,
            shed_rate=shed_rate,
            overload_rate=overload_rate,
            interval_s=dt,
            pressure=pressure,
        )

    def __call__(self) -> ControlSignals:
        return self.sample()
