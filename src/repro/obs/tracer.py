"""Sampled, bounded JSONL decision tracing and trace replay.

The paper's guarantees are statements about *which copy gets evicted when*;
a competitive-ratio anomaly is invisible in aggregate counters.  A
:class:`DecisionTracer` records, per sampled request, the request itself
(hit/miss), every eviction the policy charged while serving it (victim,
level, cost, reason) and — for policies that expose them — the candidate
set with scores at the moment of choice.

Determinism
-----------
Sampling is a pure function of ``(seed, t)`` via the splitmix64 finalizer,
so the same seed and workload produce the *byte-identical* trace in every
execution mode (inline, threaded, re-run) — the property the conformance
tests pin down.  Events carry only logical fields (no wall-clock), and
every line is serialized with a fixed key order.

Bounding
--------
``max_events`` caps the number of body events written; past the cap events
are counted as dropped (the ``end`` record reports both), so tracing a
long run can never fill a disk.

Format (one JSON object per line)::

    {"ev":"meta","v":1,"sample":0.1,"seed":0,"source":"shard-0"}
    {"ev":"req","t":17,"page":3,"level":1,"hit":false}
    {"ev":"cand","t":17,"cands":[[5,1,0.25],[9,2,1.5]]}
    {"ev":"evict","t":17,"page":5,"level":1,"cost":2.0,"reason":"capacity"}
    {"ev":"end","n_written":3,"n_dropped":0,"n_requests":1}
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "TRACE_VERSION",
    "TRACE_SCHEMA",
    "DecisionTracer",
    "TraceValidation",
    "validate_trace",
    "read_trace",
    "TraceSummary",
    "replay_trace",
]

TRACE_VERSION = 1

#: Required fields (and their JSON types) per event type; the contract the
#: CI smoke step and :func:`validate_trace` check every line against.
TRACE_SCHEMA: dict[str, dict[str, type | tuple[type, ...]]] = {
    "meta": {"v": int, "sample": (int, float), "seed": int, "source": str},
    "req": {"t": int, "page": int, "level": int, "hit": bool},
    "evict": {"t": int, "page": int, "level": int,
              "cost": (int, float), "reason": str},
    "cand": {"t": int, "cands": list},
    "end": {"n_written": int, "n_dropped": int, "n_requests": int},
}

_MASK = 0xFFFFFFFFFFFFFFFF


def _mix64(z: int) -> int:
    """Scalar splitmix64 finalizer (same mixing as the shard router)."""
    z = (z + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


class DecisionTracer:
    """Writes sampled paging decisions as JSONL; see the module docstring.

    Parameters
    ----------
    sink:
        Path to the output file, or any object with ``write(str)``.
    sample:
        Fraction of requests to record, in [0, 1].  The decision is a pure
        function of ``(seed, t)``; evictions and candidate events attach to
        their request's sampling decision, so a sampled request is recorded
        *with* its consequences.
    seed:
        Sampling seed — vary to sample a different deterministic subset.
    max_events:
        Hard cap on body events written (``meta``/``end`` excluded).
    source:
        Free-form origin tag recorded in the ``meta`` line (e.g. which
        shard produced this trace).
    resume:
        Re-open an *existing* trace file (``r+``) without writing a new
        ``meta`` line.  Used by respawned shard worker processes: the
        previous worker already wrote the meta record, and the caller is
        expected to :meth:`rewind` to a checkpoint mark immediately (which
        also restores the event counters), so the resumed stream stays
        byte-identical to an uninterrupted one.  Requires a path sink.
    """

    __slots__ = ("sample", "seed", "max_events", "source", "n_written",
                 "n_dropped", "n_requests", "sampled", "_threshold", "_file",
                 "_write", "_owns_file", "_closed")

    def __init__(self, sink, *, sample: float = 1.0, seed: int = 0,
                 max_events: int = 1_000_000, source: str = "",
                 resume: bool = False) -> None:
        if not (0.0 <= sample <= 1.0):
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self.sample = float(sample)
        self.seed = int(seed)
        self.max_events = int(max_events)
        self.source = source
        self.n_written = 0
        self.n_dropped = 0
        self.n_requests = 0
        #: Whether the request currently being served is sampled; eviction
        #: and candidate events consult this so they follow their request.
        self.sampled = False
        # sampled(t)  <=>  mix64(seed', t) < sample * 2^64
        self._threshold = math.ceil(self.sample * 2.0 ** 64)
        if isinstance(sink, (str, Path)):
            self._file = open(sink, "r+" if resume else "w", encoding="utf-8")
            self._owns_file = True
            if resume:
                self._file.seek(0, 2)  # append position until the rewind
        elif resume:
            raise ValueError("resume requires a path sink")
        else:
            self._file = sink
            self._owns_file = False
        self._write = self._file.write
        self._closed = False
        if not resume:
            self._emit({"ev": "meta", "v": TRACE_VERSION,
                        "sample": self.sample, "seed": self.seed,
                        "source": self.source}, count=False)

    # -- sampling ------------------------------------------------------------
    @property
    def active(self) -> bool:
        """False when no request can ever be sampled (``sample == 0``).

        Callers use this to skip the traced loop entirely — the no-op
        fast path that keeps unsampled tracing within noise of untraced
        throughput.
        """
        return self._threshold > 0

    def want(self, t: int) -> bool:
        """The deterministic sampling decision for request index ``t``."""
        threshold = self._threshold
        if threshold <= 0:
            return False
        return _mix64((self.seed << 1 | 1) ^ t) < threshold

    # -- event emission ------------------------------------------------------
    def _emit(self, obj: dict, *, count: bool = True) -> None:
        if count:
            if self.n_written >= self.max_events:
                self.n_dropped += 1
                return
            self.n_written += 1
        self._write(json.dumps(obj, separators=(",", ":")) + "\n")

    def request(self, t: int, page: int, level: int, hit: bool) -> None:
        """Record request ``(page, level)`` at time ``t``; sets :attr:`sampled`."""
        self.n_requests += 1
        self.sampled = self.want(t)
        if self.sampled:
            self._emit({"ev": "req", "t": t, "page": page, "level": level,
                        "hit": bool(hit)})

    def eviction(self, t: int, page: int, level: int, cost: float,
                 reason: str = "") -> None:
        """Record an eviction charged while serving the current request."""
        if self.sampled:
            self._emit({"ev": "evict", "t": t, "page": page, "level": level,
                        "cost": cost, "reason": reason})

    def candidates(self, t: int, cands) -> None:
        """Record the eviction candidate set ``[(page, level, score), ...]``."""
        if self.sampled:
            self._emit({"ev": "cand", "t": t,
                        "cands": [[int(p), int(lv), float(s)]
                                  for p, lv, s in cands]})

    # -- checkpoint support --------------------------------------------------
    def mark(self) -> tuple:
        """Snapshot the stream position + counters for a later :meth:`rewind`.

        Flushes pending output first so the returned byte offset reflects
        everything emitted so far.  Non-seekable sinks get a ``None``
        position: rewind then restores counters only (the stream itself
        cannot be truncated — recovery traces stay *append*-consistent
        but not byte-identical; the service only enables recovery tracing
        on regular files, where positions are always available).
        """
        self._file.flush()
        try:
            pos = self._file.tell() if self._file.seekable() else None
        except (OSError, AttributeError):
            pos = None
        return (pos, self.n_written, self.n_dropped, self.n_requests)

    def rewind(self, mark: tuple) -> None:
        """Roll the stream and counters back to a :meth:`mark` snapshot.

        Used by shard recovery: after restoring a checkpoint, the tracer
        truncates its JSONL file back to the marked byte offset, so the
        replayed suffix re-emits the identical lines and the final file is
        byte-for-byte what a fault-free run writes.
        """
        if self._closed:
            raise ValueError("cannot rewind a closed tracer")
        pos, n_written, n_dropped, n_requests = mark
        if pos is not None:
            self._file.flush()
            self._file.seek(pos)
            self._file.truncate()
        self.n_written = n_written
        self.n_dropped = n_dropped
        self.n_requests = n_requests
        self.sampled = False

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Write the ``end`` record and close the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._emit({"ev": "end", "n_written": self.n_written,
                    "n_dropped": self.n_dropped,
                    "n_requests": self.n_requests}, count=False)
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()

    def __enter__(self) -> "DecisionTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DecisionTracer(sample={self.sample}, seed={self.seed}, "
            f"written={self.n_written}, dropped={self.n_dropped})"
        )


# -- reading / validation ---------------------------------------------------

def read_trace(path):
    """Yield one event dict per line of a JSONL trace file."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


@dataclass(frozen=True)
class TraceValidation:
    """Outcome of validating a trace file against :data:`TRACE_SCHEMA`."""

    n_lines: int
    n_by_type: dict[str, int]
    errors: list[str]

    @property
    def ok(self) -> bool:
        """True when every line conformed to the schema."""
        return not self.errors

    def render(self) -> str:
        """Human-readable one-paragraph report."""
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.n_by_type.items()))
        head = f"{self.n_lines} lines ({counts}): " + (
            "OK" if self.ok else f"{len(self.errors)} error(s)"
        )
        return "\n".join([head] + [f"  - {e}" for e in self.errors])


def validate_trace(path, *, max_errors: int = 20) -> TraceValidation:
    """Check every line of a JSONL trace against :data:`TRACE_SCHEMA`.

    Structural requirements: the first line is ``meta`` with a known
    version, the last is ``end``, and the ``end`` record's counts match
    the body.  Reports at most ``max_errors`` problems.
    """
    n_lines = 0
    n_by_type: dict[str, int] = {}
    errors: list[str] = []
    last_ev = None
    n_body = 0

    def err(msg: str) -> None:
        if len(errors) < max_errors:
            errors.append(msg)

    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            n_lines += 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                err(f"line {lineno}: invalid JSON ({exc.msg})")
                continue
            ev = obj.get("ev")
            if ev not in TRACE_SCHEMA:
                err(f"line {lineno}: unknown event type {ev!r}")
                continue
            n_by_type[ev] = n_by_type.get(ev, 0) + 1
            for fname, ftype in TRACE_SCHEMA[ev].items():
                if fname not in obj:
                    err(f"line {lineno}: {ev} missing field {fname!r}")
                elif not isinstance(obj[fname], ftype) or (
                    # bool is an int subclass; reject it for int-typed fields.
                    ftype is int and isinstance(obj[fname], bool)
                ):
                    err(f"line {lineno}: {ev}.{fname} has type "
                        f"{type(obj[fname]).__name__}")
            if n_lines == 1:
                if ev != "meta":
                    err("line 1: trace must start with a meta record")
                elif obj.get("v") != TRACE_VERSION:
                    err(f"line 1: unsupported trace version {obj.get('v')!r}")
            elif ev == "meta":
                err(f"line {lineno}: duplicate meta record")
            if ev not in ("meta", "end"):
                n_body += 1
            if ev == "end" and isinstance(obj.get("n_written"), int) \
                    and obj["n_written"] != n_body:
                err(f"line {lineno}: end.n_written={obj['n_written']} but "
                    f"{n_body} body events precede it")
            last_ev = ev
    if n_lines == 0:
        err("empty trace file")
    elif last_ev != "end":
        err("trace must finish with an end record (file truncated?)")
    return TraceValidation(n_lines=n_lines, n_by_type=n_by_type, errors=errors)


# -- replay -----------------------------------------------------------------

@dataclass
class _PageStats:
    requests: int = 0
    hits: int = 0
    evictions: int = 0
    cost: float = 0.0


@dataclass(frozen=True)
class TraceSummary:
    """Per-page / per-level aggregation of one decision trace.

    ``repro trace replay`` renders this to debug competitive-ratio
    blow-ups: which pages thrash, which levels absorb the cost, how the
    candidate sets looked when the expensive evictions happened.
    """

    meta: dict
    n_requests: int
    n_hits: int
    n_evictions: int
    total_cost: float
    n_candidate_sets: int
    per_page: dict[int, _PageStats] = field(default_factory=dict)
    requests_by_level: dict[int, int] = field(default_factory=dict)
    evictions_by_level: dict[int, int] = field(default_factory=dict)
    cost_by_level: dict[int, float] = field(default_factory=dict)
    cost_by_reason: dict[str, float] = field(default_factory=dict)

    def level_table(self):
        """Per-level requests / evictions / cost table."""
        from repro.analysis.tables import Table

        table = Table(["level", "requests", "evictions", "evict cost",
                       "cost share"],
                      title="trace replay: per-level")
        levels = sorted(set(self.requests_by_level) | set(self.cost_by_level))
        for lv in levels:
            cost = self.cost_by_level.get(lv, 0.0)
            share = cost / self.total_cost if self.total_cost else 0.0
            table.add_row(lv, self.requests_by_level.get(lv, 0),
                          self.evictions_by_level.get(lv, 0), cost, share)
        return table

    def page_table(self, top: int = 10):
        """The ``top`` pages by eviction cost — the thrash suspects."""
        from repro.analysis.tables import Table

        table = Table(["page", "requests", "hits", "evictions", "evict cost"],
                      title=f"trace replay: top {top} pages by eviction cost")
        ranked = sorted(self.per_page.items(),
                        key=lambda kv: (-kv[1].cost, kv[0]))
        for page, s in ranked[:top]:
            table.add_row(page, s.requests, s.hits, s.evictions, s.cost)
        return table

    def render(self, top: int = 10) -> str:
        """Headline counters plus both tables."""
        hit_rate = self.n_hits / self.n_requests if self.n_requests else 0.0
        head = (
            f"trace: source={self.meta.get('source', '')!r} "
            f"sample={self.meta.get('sample')} seed={self.meta.get('seed')}\n"
            f"sampled requests: {self.n_requests} (hit rate {hit_rate:.3f}), "
            f"evictions: {self.n_evictions}, total cost: {self.total_cost:.3f}, "
            f"candidate sets: {self.n_candidate_sets}\n"
        )
        return (head + "\n" + self.level_table().render() + "\n"
                + self.page_table(top).render())


def replay_trace(path) -> TraceSummary:
    """Re-render a JSONL trace into per-page / per-level summaries."""
    meta: dict = {}
    per_page: dict[int, _PageStats] = {}
    requests_by_level: dict[int, int] = {}
    evictions_by_level: dict[int, int] = {}
    cost_by_level: dict[int, float] = {}
    cost_by_reason: dict[str, float] = {}
    n_requests = n_hits = n_evictions = n_candidate_sets = 0
    total_cost = 0.0
    for obj in read_trace(path):
        ev = obj["ev"]
        if ev == "req":
            n_requests += 1
            page, level = obj["page"], obj["level"]
            stats = per_page.get(page)
            if stats is None:
                stats = per_page[page] = _PageStats()
            stats.requests += 1
            if obj["hit"]:
                stats.hits += 1
                n_hits += 1
            requests_by_level[level] = requests_by_level.get(level, 0) + 1
        elif ev == "evict":
            n_evictions += 1
            page, level, cost = obj["page"], obj["level"], obj["cost"]
            stats = per_page.get(page)
            if stats is None:
                stats = per_page[page] = _PageStats()
            stats.evictions += 1
            stats.cost += cost
            total_cost += cost
            evictions_by_level[level] = evictions_by_level.get(level, 0) + 1
            cost_by_level[level] = cost_by_level.get(level, 0.0) + cost
            reason = obj.get("reason", "")
            if reason:
                cost_by_reason[reason] = cost_by_reason.get(reason, 0.0) + cost
        elif ev == "cand":
            n_candidate_sets += 1
        elif ev == "meta":
            meta = obj
    return TraceSummary(
        meta=meta,
        n_requests=n_requests,
        n_hits=n_hits,
        n_evictions=n_evictions,
        total_cost=total_cost,
        n_candidate_sets=n_candidate_sets,
        per_page=per_page,
        requests_by_level=requests_by_level,
        evictions_by_level=evictions_by_level,
        cost_by_level=cost_by_level,
        cost_by_reason=cost_by_reason,
    )
