"""Phase profiling: named context-manager spans aggregated per profiler.

A :class:`PhaseProfiler` accumulates, per span name, the number of entries,
total wall time and maximum single duration.  Spans are meant for *phase*
granularity (one per batch / snapshot, not per request), so the two
``perf_counter`` calls per span are negligible next to the work they wrap.

Profilers are single-writer: the service profiler is driven by the
submitting thread, each shard engine's by its worker thread.  Reading
:meth:`stats` from another thread during a run is safe — values are plain
floats updated under the GIL, and a torn read merely mixes two adjacent
batches.  :meth:`merge` folds per-shard profilers into a run-level view.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

__all__ = ["SpanStats", "PhaseProfiler"]


@dataclass(frozen=True)
class SpanStats:
    """Aggregate timing of one named phase."""

    name: str
    n: int
    total_s: float
    max_s: float

    @property
    def mean_ms(self) -> float:
        """Mean duration per entry, in milliseconds."""
        return 1e3 * self.total_s / self.n if self.n else 0.0

    def merged(self, other: "SpanStats") -> "SpanStats":
        """The aggregate of this and another stats record (same name)."""
        return SpanStats(
            name=self.name,
            n=self.n + other.n,
            total_s=self.total_s + other.total_s,
            max_s=max(self.max_s, other.max_s),
        )


class _Span:
    """Reusable timing context for one profiler + name pair."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.record(self._name, perf_counter() - self._t0)


class PhaseProfiler:
    """Accumulates (count, total, max) per span name."""

    __slots__ = ("_cells", "_spans")

    def __init__(self) -> None:
        # name -> [n, total_s, max_s]; lists so record() is two updates.
        self._cells: dict[str, list] = {}
        self._spans: dict[str, _Span] = {}

    def span(self, name: str) -> _Span:
        """A reusable ``with``-able timer for phase ``name``."""
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = _Span(self, name)
        return span

    def record(self, name: str, seconds: float) -> None:
        """Record one completed phase duration directly."""
        cell = self._cells.get(name)
        if cell is None:
            self._cells[name] = [1, seconds, seconds]
            return
        cell[0] += 1
        cell[1] += seconds
        if seconds > cell[2]:
            cell[2] = seconds

    def stats(self) -> dict[str, SpanStats]:
        """Point-in-time aggregate per span name."""
        return {
            name: SpanStats(name, cell[0], cell[1], cell[2])
            for name, cell in self._cells.items()
        }

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulators into this one."""
        for name, cell in other._cells.items():
            mine = self._cells.get(name)
            if mine is None:
                self._cells[name] = list(cell)
            else:
                mine[0] += cell[0]
                mine[1] += cell[1]
                if cell[2] > mine[2]:
                    mine[2] = cell[2]

    def clear(self) -> None:
        """Drop all accumulated stats (spans stay usable)."""
        self._cells.clear()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}: {c[0]}x {c[1]:.4f}s" for n, c in sorted(self._cells.items())
        )
        return f"PhaseProfiler({parts})"


def merge_span_stats(*stat_maps: dict[str, SpanStats]) -> dict[str, SpanStats]:
    """Merge several ``name -> SpanStats`` maps into one (sorted by name)."""
    merged: dict[str, SpanStats] = {}
    for stats in stat_maps:
        for name, s in stats.items():
            cur = merged.get(name)
            merged[name] = s if cur is None else cur.merged(s)
    return dict(sorted(merged.items()))


__all__.append("merge_span_stats")
