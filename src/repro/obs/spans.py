"""Phase profiling: named context-manager spans aggregated per profiler.

A :class:`PhaseProfiler` accumulates, per span name, the number of entries,
total wall time and maximum single duration.  Spans are meant for *phase*
granularity (one per batch / snapshot, not per request), so the two
``perf_counter`` calls per span are negligible next to the work they wrap.

Profilers are single-writer: the service profiler is driven by the
submitting thread, each shard engine's by its worker thread.  Reading
:meth:`stats` from another thread during a run is safe — values are plain
floats updated under the GIL, and a torn read merely mixes two adjacent
batches.  :meth:`merge` folds per-shard profilers into a run-level view.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

__all__ = ["SpanStats", "PhaseProfiler"]


@dataclass(frozen=True)
class SpanStats:
    """Aggregate timing of one named phase.

    ``min_s`` and ``sq_s`` (sum of squared durations) ride along so
    merged aggregates can still report spread: min/max bound the range
    and ``sq_s`` yields the exact pooled standard deviation — both fold
    associatively under :meth:`merged`, unlike a stored stddev.  The new
    fields default so positional ``SpanStats(name, n, total, max)``
    construction (pre-existing callers and tests) keeps working.
    """

    name: str
    n: int
    total_s: float
    max_s: float
    min_s: float = 0.0
    sq_s: float = 0.0

    @property
    def mean_ms(self) -> float:
        """Mean duration per entry, in milliseconds."""
        return 1e3 * self.total_s / self.n if self.n else 0.0

    @property
    def min_ms(self) -> float:
        """Minimum single duration, in milliseconds."""
        return 1e3 * self.min_s

    @property
    def stddev_ms(self) -> float:
        """Population standard deviation of durations, in milliseconds.

        Computed from the sum of squares; the variance is clamped at
        zero because float cancellation can drive it epsilon-negative
        when all durations are (near-)equal.
        """
        if self.n < 1:
            return 0.0
        mean = self.total_s / self.n
        var = self.sq_s / self.n - mean * mean
        return 1e3 * var ** 0.5 if var > 0.0 else 0.0

    def merged(self, other: "SpanStats") -> "SpanStats":
        """The aggregate of this and another stats record (same name).

        Empty records (``n == 0``) are identity elements: their zero
        ``min_s`` must not clobber a real minimum from the other side.
        """
        if self.n == 0:
            min_s = other.min_s
        elif other.n == 0:
            min_s = self.min_s
        else:
            min_s = min(self.min_s, other.min_s)
        return SpanStats(
            name=self.name,
            n=self.n + other.n,
            total_s=self.total_s + other.total_s,
            max_s=max(self.max_s, other.max_s),
            min_s=min_s,
            sq_s=self.sq_s + other.sq_s,
        )


class _Span:
    """Reusable timing context for one profiler + name pair."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.record(self._name, perf_counter() - self._t0)


class PhaseProfiler:
    """Accumulates (count, total, max, min, sum-of-squares) per span name."""

    __slots__ = ("_cells", "_spans")

    def __init__(self) -> None:
        # name -> [n, total_s, max_s, min_s, sq_s]; lists so record()
        # stays a handful of in-place updates.
        self._cells: dict[str, list] = {}
        self._spans: dict[str, _Span] = {}

    def span(self, name: str) -> _Span:
        """A reusable ``with``-able timer for phase ``name``."""
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = _Span(self, name)
        return span

    def record(self, name: str, seconds: float) -> None:
        """Record one completed phase duration directly."""
        cell = self._cells.get(name)
        if cell is None:
            self._cells[name] = [1, seconds, seconds, seconds,
                                 seconds * seconds]
            return
        cell[0] += 1
        cell[1] += seconds
        if seconds > cell[2]:
            cell[2] = seconds
        if seconds < cell[3]:
            cell[3] = seconds
        cell[4] += seconds * seconds

    def stats(self) -> dict[str, SpanStats]:
        """Point-in-time aggregate per span name."""
        return {
            name: SpanStats(name, cell[0], cell[1], cell[2], cell[3], cell[4])
            for name, cell in self._cells.items()
        }

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulators into this one."""
        for name, cell in other._cells.items():
            mine = self._cells.get(name)
            if mine is None:
                self._cells[name] = list(cell)
            else:
                mine[0] += cell[0]
                mine[1] += cell[1]
                if cell[2] > mine[2]:
                    mine[2] = cell[2]
                if cell[3] < mine[3]:
                    mine[3] = cell[3]
                mine[4] += cell[4]

    def clear(self) -> None:
        """Drop all accumulated stats (spans stay usable)."""
        self._cells.clear()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}: {c[0]}x {c[1]:.4f}s" for n, c in sorted(self._cells.items())
        )
        return f"PhaseProfiler({parts})"


def merge_span_stats(*stat_maps: dict[str, SpanStats]) -> dict[str, SpanStats]:
    """Merge several ``name -> SpanStats`` maps into one (sorted by name)."""
    merged: dict[str, SpanStats] = {}
    for stats in stat_maps:
        for name, s in stats.items():
            cur = merged.get(name)
            merged[name] = s if cur is None else cur.merged(s)
    return dict(sorted(merged.items()))


__all__.append("merge_span_stats")
