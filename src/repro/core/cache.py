"""Authoritative cache states for multi-level and writeback-aware caching.

The simulator owns a cache object and hands policies a reference; every
mutation is charged to a :class:`~repro.core.ledger.CostLedger` and checked
against the model's invariants:

* at most ``k`` copies cached (:class:`CacheOverflowError` on overflow),
* at most one copy per page for multi-level caches
  (:class:`CacheInvariantError` on a second fetch),
* evictions only of cached copies.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.instance import MultiLevelInstance, WritebackInstance
from repro.core.ledger import CostLedger
from repro.errors import CacheInvariantError, CacheOverflowError

__all__ = ["MultiLevelCache", "WritebackCache"]


class MultiLevelCache:
    """Cache of at most ``k`` copies, at most one copy per page.

    The mapping is ``page -> level`` (1-based).  Eviction of the copy of
    page ``p`` at level ``i`` is charged ``w(p, i)``.
    """

    __slots__ = ("instance", "ledger", "_contents")

    def __init__(self, instance: MultiLevelInstance,
                 ledger: CostLedger | None = None) -> None:
        self.instance = instance
        self.ledger = ledger if ledger is not None else CostLedger()
        self._contents: dict[int, int] = {}

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._contents)

    def __contains__(self, page: int) -> bool:
        return page in self._contents

    def level_of(self, page: int) -> int | None:
        """Level of the cached copy of ``page``, or ``None`` if absent."""
        return self._contents.get(page)

    def serves(self, page: int, level: int) -> bool:
        """True if the cached copy of ``page`` serves a level-``level`` request."""
        cur = self._contents.get(page)
        return cur is not None and cur <= level

    def pages(self) -> Iterator[int]:
        """Iterate over cached pages (insertion order)."""
        return iter(self._contents)

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(page, level)`` pairs."""
        return iter(self._contents.items())

    def contents(self) -> dict[int, int]:
        """A copy of the ``page -> level`` mapping."""
        return dict(self._contents)

    @property
    def is_full(self) -> bool:
        """True if the cache holds exactly ``k`` copies."""
        return len(self._contents) >= self.instance.cache_size

    @property
    def free_slots(self) -> int:
        """Number of additional copies the cache can hold."""
        return self.instance.cache_size - len(self._contents)

    # -- mutations ---------------------------------------------------------
    def fetch(self, page: int, level: int) -> None:
        """Bring copy ``(page, level)`` into the cache (free).

        Raises on overflow or if another copy of ``page`` is cached — use
        :meth:`replace` for level changes of a cached page.
        """
        self.instance.check_copy(page, level)
        if page in self._contents:
            raise CacheInvariantError(
                f"page {page} already cached at level {self._contents[page]}; "
                "at most one copy per page is allowed"
            )
        if self.is_full:
            raise CacheOverflowError(
                f"cache full ({self.instance.cache_size} copies); evict before fetching"
            )
        self._contents[page] = level
        self.ledger.count_fetch()

    def evict(self, page: int, reason: str = "") -> int:
        """Evict the cached copy of ``page``; returns the evicted level.

        Charges ``w(page, level)`` to the ledger.
        """
        level = self._contents.pop(page, None)
        if level is None:
            raise CacheInvariantError(f"cannot evict page {page}: not cached")
        self.ledger.charge_eviction(
            page, level, self.instance.weight(page, level), reason
        )
        return level

    def replace(self, page: int, new_level: int, reason: str = "") -> int:
        """Swap the cached copy of ``page`` for its ``new_level`` copy.

        Charges the eviction of the old copy; the fetch is free.  Returns
        the old level.
        """
        self.instance.check_copy(page, new_level)
        old = self._contents.get(page)
        if old is None:
            raise CacheInvariantError(f"cannot replace page {page}: not cached")
        if old == new_level:
            raise CacheInvariantError(
                f"replace must change the level of page {page} (currently {old})"
            )
        self.ledger.charge_eviction(page, old, self.instance.weight(page, old), reason)
        self._contents[page] = new_level
        self.ledger.count_fetch()
        return old

    def flush(self, reason: str = "flush") -> float:
        """Evict everything; returns the total cost charged."""
        before = self.ledger.eviction_cost
        for page in list(self._contents):
            self.evict(page, reason)
        return self.ledger.eviction_cost - before

    # -- invariants ----------------------------------------------------------
    def check_invariants(self, *, deep: bool = False) -> None:
        """Raise :class:`CacheInvariantError` if internal state is corrupt.

        The O(1) capacity check runs always; ``deep=True`` additionally
        re-validates every cached entry's ranges (mutators already check
        entries on the way in, so the deep pass is for debugging).
        """
        if len(self._contents) > self.instance.cache_size:
            raise CacheInvariantError(
                f"cache holds {len(self._contents)} copies, capacity is "
                f"{self.instance.cache_size}"
            )
        if not deep:
            return
        for page, level in self._contents.items():
            if not (0 <= page < self.instance.n_pages):
                raise CacheInvariantError(f"cached page {page} out of range")
            if not (1 <= level <= self.instance.n_levels):
                raise CacheInvariantError(
                    f"cached level {level} of page {page} out of range"
                )

    def __repr__(self) -> str:
        return (
            f"MultiLevelCache(size={len(self)}/{self.instance.cache_size}, "
            f"cost={self.ledger.eviction_cost:.3f})"
        )


class WritebackCache:
    """Cache of at most ``k`` pages with dirty bits.

    Evicting a dirty page costs ``w1(p)``, a clean one ``w2(p)``.  Pages
    enter clean and become dirty on a write; evicting a dirty page models
    the writeback (after which the next fetch is clean again).
    """

    __slots__ = ("instance", "ledger", "_dirty")

    def __init__(self, instance: WritebackInstance,
                 ledger: CostLedger | None = None) -> None:
        self.instance = instance
        self.ledger = ledger if ledger is not None else CostLedger()
        self._dirty: dict[int, bool] = {}

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._dirty)

    def __contains__(self, page: int) -> bool:
        return page in self._dirty

    def is_dirty(self, page: int) -> bool:
        """True if ``page`` is cached and dirty."""
        return self._dirty.get(page, False)

    def pages(self) -> Iterator[int]:
        """Iterate over cached pages (insertion order)."""
        return iter(self._dirty)

    def items(self) -> Iterator[tuple[int, bool]]:
        """Iterate over ``(page, dirty)`` pairs."""
        return iter(self._dirty.items())

    def contents(self) -> dict[int, bool]:
        """A copy of the ``page -> dirty`` mapping."""
        return dict(self._dirty)

    @property
    def is_full(self) -> bool:
        """True if the cache holds exactly ``k`` pages."""
        return len(self._dirty) >= self.instance.cache_size

    @property
    def free_slots(self) -> int:
        """Number of additional pages the cache can hold."""
        return self.instance.cache_size - len(self._dirty)

    # -- mutations ---------------------------------------------------------
    def fetch(self, page: int) -> None:
        """Bring ``page`` into the cache, clean (free fetch)."""
        self.instance.check_page(page)
        if page in self._dirty:
            raise CacheInvariantError(f"page {page} already cached")
        if self.is_full:
            raise CacheOverflowError(
                f"cache full ({self.instance.cache_size} pages); evict before fetching"
            )
        self._dirty[page] = False
        self.ledger.count_fetch()

    def mark_dirty(self, page: int) -> None:
        """Mark a cached page dirty (a write request touched it)."""
        if page not in self._dirty:
            raise CacheInvariantError(f"cannot dirty page {page}: not cached")
        self._dirty[page] = True

    def evict(self, page: int, reason: str = "") -> bool:
        """Evict ``page``; returns whether it was dirty.

        Charges ``w1`` (dirty) or ``w2`` (clean).  Level 1 is reported to
        the ledger for dirty evictions and level 2 for clean ones, matching
        the RW-paging encoding.
        """
        dirty = self._dirty.pop(page, None)
        if dirty is None:
            raise CacheInvariantError(f"cannot evict page {page}: not cached")
        cost = self.instance.eviction_cost(page, dirty)
        self.ledger.charge_eviction(page, 1 if dirty else 2, cost, reason)
        return dirty

    def flush(self, reason: str = "flush") -> float:
        """Evict everything; returns the total cost charged."""
        before = self.ledger.eviction_cost
        for page in list(self._dirty):
            self.evict(page, reason)
        return self.ledger.eviction_cost - before

    # -- invariants ----------------------------------------------------------
    def check_invariants(self, *, deep: bool = False) -> None:
        """Raise :class:`CacheInvariantError` if internal state is corrupt.

        See :meth:`MultiLevelCache.check_invariants` for the deep flag.
        """
        if len(self._dirty) > self.instance.cache_size:
            raise CacheInvariantError(
                f"cache holds {len(self._dirty)} pages, capacity is "
                f"{self.instance.cache_size}"
            )
        if not deep:
            return
        for page in self._dirty:
            if not (0 <= page < self.instance.n_pages):
                raise CacheInvariantError(f"cached page {page} out of range")

    def __repr__(self) -> str:
        return (
            f"WritebackCache(size={len(self)}/{self.instance.cache_size}, "
            f"dirty={sum(self._dirty.values())}, "
            f"cost={self.ledger.eviction_cost:.3f})"
        )
