"""Core substrate: requests, instances, caches, cost accounting, reductions."""

from repro.core.cache import MultiLevelCache, WritebackCache
from repro.core.instance import (
    MultiLevelInstance,
    RWPagingInstance,
    WeightedPagingInstance,
    WritebackInstance,
)
from repro.core.ledger import CostLedger, EvictionRecord
from repro.core.normalize import NormalizedInstance, normalize_instance
from repro.core.reductions import (
    rw_to_writeback_instance,
    rw_to_writeback_sequence,
    writeback_to_rw_instance,
    writeback_to_rw_sequence,
)
from repro.core.requests import Request, RequestSequence, WBRequest, WBRequestSequence

__all__ = [
    "MultiLevelCache",
    "WritebackCache",
    "MultiLevelInstance",
    "RWPagingInstance",
    "WeightedPagingInstance",
    "WritebackInstance",
    "CostLedger",
    "EvictionRecord",
    "NormalizedInstance",
    "normalize_instance",
    "Request",
    "RequestSequence",
    "WBRequest",
    "WBRequestSequence",
    "rw_to_writeback_instance",
    "rw_to_writeback_sequence",
    "writeback_to_rw_instance",
    "writeback_to_rw_sequence",
]
