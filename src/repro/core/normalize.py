"""Geometric level normalization (the paper's WLOG weight separation).

Section 4 of the paper assumes, losing at most a factor of 2, that
consecutive level weights of every page are separated by a factor of at
least 2 (``w(p, i) >= 2 * w(p, i+1)``), "otherwise we can simply merge two
levels for p".

This module implements that merge as an explicit instance transform:

* per page, levels are greedily grouped so that each group's representative
  weight (the weight of its highest level) is at least twice the next
  group's — every level in a group has weight within a factor ``< 2`` of the
  representative, which is where the factor-2 loss comes from;
* requests are remapped to the group's representative level;
* because different pages may end up with different group counts, shorter
  pages are padded with *heavier* synthetic levels at the front (weights
  continuing the geometric progression upward).  Padded levels are never
  produced by the request remap, so they are inert for every algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence

__all__ = ["NormalizedInstance", "normalize_instance"]


@dataclass(frozen=True)
class NormalizedInstance:
    """Result of :func:`normalize_instance`.

    Attributes
    ----------
    instance:
        The normalized instance; ``instance.has_geometric_levels()`` holds.
    level_map:
        ``(n, l_old)`` int array; ``level_map[p, i-1]`` is the 1-based new
        level that an old request ``(p, i)`` maps to.
    original:
        The instance that was normalized.
    """

    instance: MultiLevelInstance
    level_map: np.ndarray
    original: MultiLevelInstance

    def map_request(self, page: int, level: int) -> tuple[int, int]:
        """Translate an original request into the normalized instance."""
        self.original.check_copy(page, level)
        return page, int(self.level_map[page, level - 1])

    def map_sequence(self, seq: RequestSequence) -> RequestSequence:
        """Translate a whole request sequence (vectorized)."""
        self.original.validate_sequence(seq.pages, seq.levels)
        new_levels = self.level_map[seq.pages, seq.levels - 1]
        return RequestSequence(seq.pages.copy(), new_levels)


def _group_page(weights: np.ndarray, ratio: float) -> tuple[list[float], np.ndarray]:
    """Greedy grouping of one page's level weights.

    Returns the per-group representative weights (non-increasing, pairwise
    separated by >= ratio) and the 0-based group index of each old level.
    """
    n_levels = weights.size
    reps: list[float] = []
    group_of = np.empty(n_levels, dtype=np.int64)
    current_rep = None
    for i in range(n_levels):
        w = float(weights[i])
        if current_rep is None or w * ratio <= current_rep + 1e-12:
            reps.append(w)
            current_rep = w
        group_of[i] = len(reps) - 1
    return reps, group_of


def normalize_instance(instance: MultiLevelInstance,
                       ratio: float = 2.0) -> NormalizedInstance:
    """Merge levels so consecutive weights differ by at least ``ratio``.

    The returned instance satisfies
    ``instance.has_geometric_levels(ratio)`` and any request stream mapped
    through :meth:`NormalizedInstance.map_sequence` costs at most ``ratio``
    times the original optimum (each request is served by a copy at most
    ``ratio`` times heavier than the one it asked for).
    """
    if ratio <= 1.0:
        raise ValueError(f"ratio must exceed 1, got {ratio}")
    n, l_old = instance.n_pages, instance.n_levels
    page_reps: list[list[float]] = []
    page_groups: list[np.ndarray] = []
    for p in range(n):
        reps, groups = _group_page(instance.weights[p], ratio)
        page_reps.append(reps)
        page_groups.append(groups)

    l_new = max(len(reps) for reps in page_reps)
    new_weights = np.empty((n, l_new), dtype=np.float64)
    level_map = np.empty((n, l_old), dtype=np.int64)
    for p in range(n):
        reps = page_reps[p]
        pad = l_new - len(reps)
        # Front-pad with heavier synthetic levels continuing the geometric
        # progression upward; these are unreachable through level_map.
        for j in range(pad):
            new_weights[p, j] = reps[0] * ratio ** (pad - j)
        new_weights[p, pad:] = reps
        level_map[p] = page_groups[p] + pad + 1  # 1-based new levels

    normalized = MultiLevelInstance(
        instance.cache_size, new_weights,
        name=f"{instance.name}|geo{ratio:g}",
    )
    return NormalizedInstance(instance=normalized, level_map=level_map,
                              original=instance)
