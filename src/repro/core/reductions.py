"""The Lemma 2.1 equivalence: writeback-aware caching <-> RW-paging.

The paper's reduction (Section 2):

* instance map — a writeback instance with dirty/clean costs
  ``w1(p) >= w2(p)`` becomes the RW-paging instance whose write copy
  ``(p, 1)`` costs ``w1(p)`` and read copy ``(p, 2)`` costs ``w2(p)``
  (and vice versa);
* request map — every write request becomes a request for ``(p, 1)``,
  every read request a request for ``(p, 2)``;
* solution maps in both directions preserve cost (Lemma 2.1), so the
  integral optima of the paired instances are equal.

:func:`writeback_cost_of_rw_run` implements the solution map S -> S' used in
the lemma's proof: replaying an RW cache trace as a writeback cache run can
only be cheaper (upgrading ``(p, 2) -> (p, 1)`` is free dirtying on the
writeback side).
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import RWPagingInstance, WritebackInstance
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import InvalidRequestError

__all__ = [
    "writeback_to_rw_instance",
    "rw_to_writeback_instance",
    "writeback_to_rw_sequence",
    "rw_to_writeback_sequence",
    "writeback_cost_of_rw_run",
]

WRITE_LEVEL = 1
READ_LEVEL = 2


def writeback_to_rw_instance(instance: WritebackInstance) -> RWPagingInstance:
    """Map a writeback instance to its equivalent RW-paging instance."""
    return RWPagingInstance(
        instance.cache_size,
        instance.dirty_weights.copy(),
        instance.clean_weights.copy(),
        name=f"{instance.name}|as-rw",
    )


def rw_to_writeback_instance(instance: RWPagingInstance) -> WritebackInstance:
    """Map an RW-paging instance to its equivalent writeback instance."""
    return WritebackInstance(
        instance.cache_size,
        instance.write_weights.copy(),
        instance.read_weights.copy(),
        name=f"{instance.name}|as-writeback",
    )


def writeback_to_rw_sequence(seq: WBRequestSequence) -> RequestSequence:
    """Writes become requests for ``(p, 1)``, reads for ``(p, 2)``."""
    levels = np.where(seq.writes, WRITE_LEVEL, READ_LEVEL).astype(np.int64)
    return RequestSequence(seq.pages.copy(), levels)


def rw_to_writeback_sequence(seq: RequestSequence) -> WBRequestSequence:
    """Level-1 requests become writes, level-2 requests reads."""
    if seq.levels.size and int(seq.levels.max()) > 2:
        raise InvalidRequestError(
            "RW-paging sequences may only use levels 1 and 2"
        )
    return WBRequestSequence(seq.pages.copy(), seq.levels == WRITE_LEVEL)


def writeback_cost_of_rw_run(
    instance: WritebackInstance,
    seq: WBRequestSequence,
    rw_trace: list[dict[int, int]],
) -> float:
    """Cost of the writeback solution induced by an RW cache trace.

    ``rw_trace[t]`` is the RW cache (``page -> level``) *after* serving
    request ``t`` of the RW image of ``seq``.  Per Lemma 2.1, the induced
    writeback solution keeps page ``p`` cached exactly when some copy of
    ``p`` is cached in the RW solution, and its cost is never higher: every
    RW eviction of ``(p, i)`` maps to a writeback eviction costing at most
    ``w_i(p)`` (dirty if the page was written since it was loaded and the RW
    solution held the write copy), and an RW swap ``(p, 2) -> (p, 1)`` maps
    to free dirtying.

    Returns the exact writeback eviction cost of the induced solution,
    assuming an initially empty cache.
    """
    if len(rw_trace) != len(seq):
        raise InvalidRequestError(
            f"trace length {len(rw_trace)} != sequence length {len(seq)}"
        )
    cost = 0.0
    cached: dict[int, bool] = {}  # page -> dirty
    for t, req in enumerate(seq):
        state = rw_trace[t]
        # Pages that left the RW cache are evicted on the writeback side.
        for page in list(cached):
            if page not in state:
                cost += instance.eviction_cost(page, cached.pop(page))
        # Pages that entered the RW cache are fetched clean.
        for page in state:
            if page not in cached:
                cached[page] = False
        # The served request dirties its page on a write.
        if req.is_write:
            if req.page not in cached:
                raise InvalidRequestError(
                    f"RW trace does not serve write request {t} for page {req.page}"
                )
            cached[req.page] = True
    return cost
