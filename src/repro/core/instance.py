"""Problem instances for the paging variants studied in the paper.

The central class is :class:`MultiLevelInstance`: ``n`` pages, a cache of
size ``k`` and an ``(n, l)`` weight matrix whose rows are non-increasing and
at least 1 (Section 2 of the paper).  Weighted paging (``l = 1``) and
RW-paging (``l = 2``) are thin specializations; writeback-aware caching is a
separate vocabulary (dirty/clean weights) linked to RW-paging by the
Lemma 2.1 reduction in :mod:`repro.core.reductions`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import InvalidInstanceError, InvalidRequestError

__all__ = [
    "MultiLevelInstance",
    "WeightedPagingInstance",
    "RWPagingInstance",
    "WritebackInstance",
]


def _as_weight_matrix(weights) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim == 1:
        w = w[:, None]
    if w.ndim != 2:
        raise InvalidInstanceError(f"weights must be (n,) or (n, l), got shape {w.shape}")
    return w


class MultiLevelInstance:
    """A weighted multi-level paging instance.

    Parameters
    ----------
    cache_size:
        Cache capacity ``k`` (number of copies the cache can hold).
    weights:
        ``(n, l)`` array; ``weights[p, i-1]`` is the eviction cost of copy
        ``(p, i)``.  Rows must be non-increasing and every entry ``>= 1``.
    name:
        Optional human-readable tag used in reports.

    Notes
    -----
    The paper additionally assumes WLOG that consecutive level weights are
    separated by a factor of at least 2; that normalization is *not* forced
    here — apply :func:`repro.core.normalize.normalize_instance` when an
    algorithm's analysis requires it.
    """

    __slots__ = ("_weights", "_k", "name")

    def __init__(self, cache_size: int, weights, *, name: str = "") -> None:
        w = _as_weight_matrix(weights)
        n, levels = w.shape
        if n == 0 or levels == 0:
            raise InvalidInstanceError("instance must have at least one page and level")
        if not np.all(np.isfinite(w)):
            raise InvalidInstanceError("weights must be finite")
        if np.any(w < 1.0):
            raise InvalidInstanceError("all weights must be >= 1")
        if levels > 1 and np.any(np.diff(w, axis=1) > 1e-12):
            raise InvalidInstanceError(
                "weights must be non-increasing across levels for every page"
            )
        if not isinstance(cache_size, (int, np.integer)) or cache_size < 1:
            raise InvalidInstanceError(f"cache_size must be a positive int, got {cache_size!r}")
        if cache_size >= n:
            raise InvalidInstanceError(
                f"cache_size ({cache_size}) must be smaller than the number of pages ({n})"
            )
        self._weights = w
        self._weights.setflags(write=False)
        self._k = int(cache_size)
        self.name = name or f"multilevel(n={n}, l={levels}, k={cache_size})"

    # -- basic accessors ---------------------------------------------------
    @property
    def n_pages(self) -> int:
        """Number of pages ``n`` in the universe."""
        return int(self._weights.shape[0])

    @property
    def n_levels(self) -> int:
        """Number of levels ``l`` (copies per page)."""
        return int(self._weights.shape[1])

    @property
    def cache_size(self) -> int:
        """Cache capacity ``k``."""
        return self._k

    @property
    def weights(self) -> np.ndarray:
        """Read-only ``(n, l)`` weight matrix."""
        return self._weights

    def weight(self, page: int, level: int) -> float:
        """Eviction cost of copy ``(page, level)`` (level is 1-based)."""
        self.check_copy(page, level)
        return float(self._weights[page, level - 1])

    # -- validation helpers --------------------------------------------------
    def check_page(self, page: int) -> None:
        """Raise :class:`InvalidRequestError` unless ``page`` is in range."""
        if not 0 <= page < self.n_pages:
            raise InvalidRequestError(
                f"page {page} out of range [0, {self.n_pages})"
            )

    def check_copy(self, page: int, level: int) -> None:
        """Raise :class:`InvalidRequestError` unless ``(page, level)`` exists."""
        self.check_page(page)
        if not 1 <= level <= self.n_levels:
            raise InvalidRequestError(
                f"level {level} out of range [1, {self.n_levels}]"
            )

    def validate_sequence(self, pages: np.ndarray, levels: np.ndarray) -> None:
        """Vectorized range check of a whole request stream."""
        if pages.size == 0:
            return
        if int(pages.min()) < 0 or int(pages.max()) >= self.n_pages:
            raise InvalidRequestError("request sequence references pages out of range")
        if int(levels.min()) < 1 or int(levels.max()) > self.n_levels:
            raise InvalidRequestError("request sequence references levels out of range")

    # -- derived quantities --------------------------------------------------
    def weight_class(self, page: int, level: int) -> int:
        """Weight class index ``i >= 1`` with ``w in (2^(i-1), 2^i]``.

        Class 1 is widened to ``[1, 2]`` so that unit weights belong to a
        class (the paper's ``P_i`` partition starts at ``w > 1``).
        """
        w = self.weight(page, level)
        return max(1, int(np.ceil(np.log2(w))))

    def weight_classes(self) -> np.ndarray:
        """``(n, l)`` int array of weight classes for every copy."""
        cls = np.ceil(np.log2(self._weights)).astype(np.int64)
        return np.maximum(cls, 1)

    def max_weight_class(self) -> int:
        """Largest weight class present in the instance."""
        return int(self.weight_classes().max())

    def has_geometric_levels(self, ratio: float = 2.0) -> bool:
        """True if ``w(p, i) >= ratio * w(p, i+1)`` for all pages and levels."""
        if self.n_levels == 1:
            return True
        w = self._weights
        return bool(np.all(w[:, :-1] >= ratio * w[:, 1:] - 1e-12))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiLevelInstance):
            return NotImplemented
        return self._k == other._k and np.array_equal(self._weights, other._weights)

    def __hash__(self) -> int:
        return hash((self._k, self._weights.tobytes()))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n_pages}, l={self.n_levels}, "
            f"k={self.cache_size})"
        )


class WeightedPagingInstance(MultiLevelInstance):
    """Classical weighted paging: one level per page (``l = 1``)."""

    def __init__(self, cache_size: int, weights: Sequence[float] | np.ndarray,
                 *, name: str = "") -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1:
            raise InvalidInstanceError("weighted paging weights must be 1-d")
        super().__init__(cache_size, w[:, None], name=name or f"weighted(n={w.size}, k={cache_size})")

    @classmethod
    def uniform(cls, n_pages: int, cache_size: int) -> "WeightedPagingInstance":
        """Unweighted paging: every page costs 1."""
        return cls(cache_size, np.ones(n_pages))

    def page_weight(self, page: int) -> float:
        """Eviction cost of ``page``."""
        return self.weight(page, 1)

    @property
    def page_weights(self) -> np.ndarray:
        """Read-only length-``n`` weight vector."""
        return self.weights[:, 0]


class RWPagingInstance(MultiLevelInstance):
    """RW-paging: each page has a write copy ``(p, 1)`` and read copy ``(p, 2)``.

    ``w(p, 1) >= w(p, 2) >= 1``; a write request is ``(p, 1)``, a read
    request is ``(p, 2)``, and the cache may hold at most one of the two
    copies — exactly the ``l = 2`` multi-level instance.
    """

    def __init__(self, cache_size: int, write_weights, read_weights,
                 *, name: str = "") -> None:
        ww = np.asarray(write_weights, dtype=np.float64)
        rw = np.asarray(read_weights, dtype=np.float64)
        if ww.ndim != 1 or rw.ndim != 1 or ww.shape != rw.shape:
            raise InvalidInstanceError(
                "write/read weights must be equal-length 1-d arrays"
            )
        super().__init__(
            cache_size,
            np.stack([ww, rw], axis=1),
            name=name or f"rw(n={ww.size}, k={cache_size})",
        )

    @property
    def write_weights(self) -> np.ndarray:
        """Eviction costs of the write copies ``(p, 1)``."""
        return self.weights[:, 0]

    @property
    def read_weights(self) -> np.ndarray:
        """Eviction costs of the read copies ``(p, 2)``."""
        return self.weights[:, 1]


class WritebackInstance:
    """Writeback-aware caching: dirty pages cost more to evict than clean.

    ``w1(p) = dirty_weights[p] >= w2(p) = clean_weights[p] >= 1``
    (page-dependent costs — the paper's generalization of Beckmann et al.'s
    uniform-cost model).
    """

    __slots__ = ("_w_dirty", "_w_clean", "_k", "name")

    def __init__(self, cache_size: int, dirty_weights, clean_weights,
                 *, name: str = "") -> None:
        wd = np.asarray(dirty_weights, dtype=np.float64)
        wc = np.asarray(clean_weights, dtype=np.float64)
        if wd.ndim != 1 or wc.ndim != 1 or wd.shape != wc.shape:
            raise InvalidInstanceError(
                "dirty/clean weights must be equal-length 1-d arrays"
            )
        n = wd.size
        if n == 0:
            raise InvalidInstanceError("instance must have at least one page")
        if not (np.all(np.isfinite(wd)) and np.all(np.isfinite(wc))):
            raise InvalidInstanceError("weights must be finite")
        if np.any(wc < 1.0):
            raise InvalidInstanceError("clean weights must be >= 1")
        if np.any(wd < wc - 1e-12):
            raise InvalidInstanceError("dirty weights must dominate clean weights")
        if not isinstance(cache_size, (int, np.integer)) or cache_size < 1:
            raise InvalidInstanceError(f"cache_size must be a positive int, got {cache_size!r}")
        if cache_size >= n:
            raise InvalidInstanceError(
                f"cache_size ({cache_size}) must be smaller than the number of pages ({n})"
            )
        self._w_dirty = wd
        self._w_clean = wc
        self._w_dirty.setflags(write=False)
        self._w_clean.setflags(write=False)
        self._k = int(cache_size)
        self.name = name or f"writeback(n={n}, k={cache_size})"

    @classmethod
    def uniform(cls, n_pages: int, cache_size: int, dirty_cost: float,
                clean_cost: float = 1.0) -> "WritebackInstance":
        """The Beckmann et al. model: one dirty and one clean cost for all pages."""
        return cls(
            cache_size,
            np.full(n_pages, float(dirty_cost)),
            np.full(n_pages, float(clean_cost)),
        )

    @property
    def n_pages(self) -> int:
        """Number of pages ``n`` in the universe."""
        return int(self._w_dirty.size)

    @property
    def cache_size(self) -> int:
        """Cache capacity ``k``."""
        return self._k

    @property
    def dirty_weights(self) -> np.ndarray:
        """Per-page eviction cost when dirty (``w1``)."""
        return self._w_dirty

    @property
    def clean_weights(self) -> np.ndarray:
        """Per-page eviction cost when clean (``w2``)."""
        return self._w_clean

    def eviction_cost(self, page: int, dirty: bool) -> float:
        """Cost of evicting ``page`` in the given dirtiness state."""
        if not 0 <= page < self.n_pages:
            raise InvalidRequestError(f"page {page} out of range [0, {self.n_pages})")
        return float(self._w_dirty[page] if dirty else self._w_clean[page])

    def check_page(self, page: int) -> None:
        """Raise :class:`InvalidRequestError` unless ``page`` is in range."""
        if not 0 <= page < self.n_pages:
            raise InvalidRequestError(f"page {page} out of range [0, {self.n_pages})")

    def validate_sequence(self, pages: np.ndarray, writes: np.ndarray) -> None:
        """Vectorized range check of a whole writeback request stream."""
        if pages.shape != writes.shape:
            raise InvalidRequestError(
                f"pages/writes length mismatch: {pages.shape} vs {writes.shape}"
            )
        if pages.size == 0:
            return
        if int(pages.min()) < 0 or int(pages.max()) >= self.n_pages:
            raise InvalidRequestError("request sequence references pages out of range")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WritebackInstance):
            return NotImplemented
        return (
            self._k == other._k
            and np.array_equal(self._w_dirty, other._w_dirty)
            and np.array_equal(self._w_clean, other._w_clean)
        )

    def __hash__(self) -> int:
        return hash((self._k, self._w_dirty.tobytes(), self._w_clean.tobytes()))

    def __repr__(self) -> str:
        return f"WritebackInstance(n={self.n_pages}, k={self.cache_size})"
