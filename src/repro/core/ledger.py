"""Cost accounting shared by every cache and simulator.

Following the paper's convention (Section 2, footnote 1) the primary cost is
*eviction cost*: evicting copy ``(p, i)`` costs ``w(p, i)``; evicting a dirty
writeback page costs ``w1(p)``, a clean one ``w2(p)``.  Fetches are free but
counted so hit/miss statistics can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EvictionRecord", "CostLedger"]


@dataclass(frozen=True, slots=True)
class EvictionRecord:
    """One eviction event: which copy, when, for how much, and why."""

    time: int
    page: int
    level: int
    cost: float
    reason: str = ""


class CostLedger:
    """Accumulates eviction cost and event counts for one simulation run.

    Parameters
    ----------
    record_events:
        When true, every eviction is appended to :attr:`events` — useful for
        the lower-bound experiments that reconstruct a set cover from the
        eviction trace (Lemma 3.3), but memory-heavy for long runs.
    """

    __slots__ = (
        "eviction_cost",
        "n_evictions",
        "n_fetches",
        "n_hits",
        "n_misses",
        "cost_by_reason",
        "record_events",
        "events",
        "tracer",
        "_time",
    )

    def __init__(self, *, record_events: bool = False) -> None:
        self.eviction_cost: float = 0.0
        self.n_evictions: int = 0
        self.n_fetches: int = 0
        self.n_hits: int = 0
        self.n_misses: int = 0
        self.cost_by_reason: dict[str, float] = {}
        self.record_events = record_events
        self.events: list[EvictionRecord] = []
        #: Optional :class:`repro.obs.DecisionTracer` (duck-typed — anything
        #: with an ``eviction(t, page, level, cost, reason)`` method).  The
        #: simulator / engine attaches it only while tracing, so the fast
        #: paths keep this None and pay one attribute load per eviction.
        self.tracer = None
        self._time: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def time(self) -> int:
        """Current logical time (index of the request being processed)."""
        return self._time

    def set_time(self, t: int) -> None:
        """Advance the logical clock; used by the simulator per request."""
        self._time = int(t)

    # -- charging ----------------------------------------------------------
    def charge_eviction(self, page: int, level: int, cost: float,
                        reason: str = "") -> None:
        """Record the eviction of copy ``(page, level)`` for ``cost``."""
        if cost < 0:
            raise ValueError(f"eviction cost must be non-negative, got {cost}")
        self.eviction_cost += cost
        self.n_evictions += 1
        if reason:
            self.cost_by_reason[reason] = self.cost_by_reason.get(reason, 0.0) + cost
        if self.record_events:
            self.events.append(EvictionRecord(self._time, page, level, cost, reason))
        if self.tracer is not None:
            self.tracer.eviction(self._time, page, level, cost, reason)

    def count_fetch(self) -> None:
        """Record a (free) fetch."""
        self.n_fetches += 1

    def count_hit(self) -> None:
        """Record a request served without any cache change."""
        self.n_hits += 1

    def count_miss(self) -> None:
        """Record a request that required cache changes."""
        self.n_misses += 1

    # -- pickling ----------------------------------------------------------
    def __getstate__(self) -> dict:
        """Slot dict minus the live tracer handle (an open file).

        Checkpoints round-trip ledgers through pickle; the tracer is a
        per-process observability attachment that the restoring engine
        re-attaches, never part of the replayable state.
        """
        state = {}
        for cls in type(self).__mro__:
            for slot in getattr(cls, "__slots__", ()):
                if hasattr(self, slot):
                    state[slot] = getattr(self, slot)
        state["tracer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    # -- reporting ---------------------------------------------------------
    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's totals into this one (for phased runs)."""
        self.eviction_cost += other.eviction_cost
        self.n_evictions += other.n_evictions
        self.n_fetches += other.n_fetches
        self.n_hits += other.n_hits
        self.n_misses += other.n_misses
        for reason, cost in other.cost_by_reason.items():
            self.cost_by_reason[reason] = self.cost_by_reason.get(reason, 0.0) + cost
        if self.record_events:
            self.events.extend(other.events)

    def snapshot(self) -> dict[str, float]:
        """A plain-dict summary (stable keys, safe to serialize)."""
        return {
            "eviction_cost": self.eviction_cost,
            "n_evictions": float(self.n_evictions),
            "n_fetches": float(self.n_fetches),
            "n_hits": float(self.n_hits),
            "n_misses": float(self.n_misses),
        }

    def __repr__(self) -> str:
        return (
            f"CostLedger(cost={self.eviction_cost:.3f}, evictions={self.n_evictions}, "
            f"fetches={self.n_fetches}, hits={self.n_hits}, misses={self.n_misses})"
        )
