"""Request types and columnar request sequences.

Two request vocabularies appear in the paper:

* **Multi-level requests** ``(p, i)`` — page ``p`` at level ``i`` (level 1 is
  the highest / most expensive).  A request ``(p, i)`` is served by any
  cached copy ``(p, j)`` with ``j <= i``.  Weighted paging is the special
  case ``i = 1`` everywhere, RW-paging the case ``i in {1, 2}``.
* **Writeback requests** ``(p, is_write)`` — reads and writes against a
  single-copy cache with dirty bits.

Sequences are stored columnar (NumPy arrays) so that workload generation,
trace IO and the simulator's hot loop stay vectorizable; iteration yields
light-weight frozen dataclasses for algorithm code that wants objects.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidRequestError

__all__ = [
    "Request",
    "WBRequest",
    "RequestSequence",
    "WBRequestSequence",
]


@dataclass(frozen=True, slots=True)
class Request:
    """A multi-level paging request for ``page`` at ``level`` (1-based)."""

    page: int
    level: int = 1

    def __post_init__(self) -> None:
        if self.page < 0:
            raise InvalidRequestError(f"page must be >= 0, got {self.page}")
        if self.level < 1:
            raise InvalidRequestError(f"level must be >= 1, got {self.level}")


@dataclass(frozen=True, slots=True)
class WBRequest:
    """A writeback-aware caching request: a read or a write of ``page``."""

    page: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.page < 0:
            raise InvalidRequestError(f"page must be >= 0, got {self.page}")


class RequestSequence(Sequence[Request]):
    """An immutable columnar sequence of multi-level requests."""

    __slots__ = ("_pages", "_levels")

    def __init__(self, pages: np.ndarray, levels: np.ndarray) -> None:
        pages = np.asarray(pages, dtype=np.int64)
        levels = np.asarray(levels, dtype=np.int64)
        if pages.ndim != 1 or levels.ndim != 1:
            raise InvalidRequestError("pages and levels must be 1-d arrays")
        if pages.shape != levels.shape:
            raise InvalidRequestError(
                f"pages and levels length mismatch: {pages.shape} vs {levels.shape}"
            )
        if pages.size and pages.min() < 0:
            raise InvalidRequestError("pages must be non-negative")
        if levels.size and levels.min() < 1:
            raise InvalidRequestError("levels must be >= 1")
        self._pages = pages
        self._levels = levels
        self._pages.setflags(write=False)
        self._levels.setflags(write=False)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_requests(cls, requests: Iterable[Request]) -> "RequestSequence":
        reqs = list(requests)
        pages = np.fromiter((r.page for r in reqs), dtype=np.int64, count=len(reqs))
        levels = np.fromiter((r.level for r in reqs), dtype=np.int64, count=len(reqs))
        return cls(pages, levels)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "RequestSequence":
        prs = list(pairs)
        pages = np.fromiter((p for p, _ in prs), dtype=np.int64, count=len(prs))
        levels = np.fromiter((i for _, i in prs), dtype=np.int64, count=len(prs))
        return cls(pages, levels)

    @classmethod
    def from_pages(cls, pages: Iterable[int], level: int = 1) -> "RequestSequence":
        """Build a single-level (weighted paging) sequence."""
        arr = np.asarray(list(pages) if not isinstance(pages, np.ndarray) else pages,
                         dtype=np.int64)
        return cls(arr, np.full(arr.shape, level, dtype=np.int64))

    # -- columnar access ---------------------------------------------------
    @property
    def pages(self) -> np.ndarray:
        """Read-only int64 array of requested pages."""
        return self._pages

    @property
    def levels(self) -> np.ndarray:
        """Read-only int64 array of requested levels (1-based)."""
        return self._levels

    def max_page(self) -> int:
        """Largest page id referenced, or ``-1`` for the empty sequence."""
        return int(self._pages.max()) if self._pages.size else -1

    def max_level(self) -> int:
        """Largest level referenced, or ``0`` for the empty sequence."""
        return int(self._levels.max()) if self._levels.size else 0

    def distinct_pages(self) -> int:
        """Number of distinct pages referenced."""
        return int(np.unique(self._pages).size)

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return int(self._pages.size)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return RequestSequence(self._pages[index], self._levels[index])
        return Request(int(self._pages[index]), int(self._levels[index]))

    def __iter__(self) -> Iterator[Request]:
        for p, i in zip(self._pages.tolist(), self._levels.tolist()):
            yield Request(p, i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestSequence):
            return NotImplemented
        return bool(
            np.array_equal(self._pages, other._pages)
            and np.array_equal(self._levels, other._levels)
        )

    def __hash__(self) -> int:
        return hash((self._pages.tobytes(), self._levels.tobytes()))

    def __add__(self, other: "RequestSequence") -> "RequestSequence":
        if not isinstance(other, RequestSequence):
            return NotImplemented
        return RequestSequence(
            np.concatenate([self._pages, other._pages]),
            np.concatenate([self._levels, other._levels]),
        )

    def __repr__(self) -> str:
        return (
            f"RequestSequence(len={len(self)}, pages<={self.max_page()}, "
            f"levels<={self.max_level()})"
        )


class WBRequestSequence(Sequence[WBRequest]):
    """An immutable columnar sequence of writeback-aware requests."""

    __slots__ = ("_pages", "_writes")

    def __init__(self, pages: np.ndarray, writes: np.ndarray) -> None:
        pages = np.asarray(pages, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        if pages.ndim != 1 or writes.ndim != 1:
            raise InvalidRequestError("pages and writes must be 1-d arrays")
        if pages.shape != writes.shape:
            raise InvalidRequestError(
                f"pages and writes length mismatch: {pages.shape} vs {writes.shape}"
            )
        if pages.size and pages.min() < 0:
            raise InvalidRequestError("pages must be non-negative")
        self._pages = pages
        self._writes = writes
        self._pages.setflags(write=False)
        self._writes.setflags(write=False)

    @classmethod
    def from_requests(cls, requests: Iterable[WBRequest]) -> "WBRequestSequence":
        reqs = list(requests)
        pages = np.fromiter((r.page for r in reqs), dtype=np.int64, count=len(reqs))
        writes = np.fromiter((r.is_write for r in reqs), dtype=bool, count=len(reqs))
        return cls(pages, writes)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, bool]]) -> "WBRequestSequence":
        prs = list(pairs)
        pages = np.fromiter((p for p, _ in prs), dtype=np.int64, count=len(prs))
        writes = np.fromiter((w for _, w in prs), dtype=bool, count=len(prs))
        return cls(pages, writes)

    @property
    def pages(self) -> np.ndarray:
        """Read-only int64 array of requested pages."""
        return self._pages

    @property
    def writes(self) -> np.ndarray:
        """Read-only bool array; ``True`` marks a write request."""
        return self._writes

    def max_page(self) -> int:
        """Largest page id referenced, or ``-1`` for the empty sequence."""
        return int(self._pages.max()) if self._pages.size else -1

    def write_fraction(self) -> float:
        """Fraction of requests that are writes (0.0 for empty sequences)."""
        return float(self._writes.mean()) if self._writes.size else 0.0

    def __len__(self) -> int:
        return int(self._pages.size)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return WBRequestSequence(self._pages[index], self._writes[index])
        return WBRequest(int(self._pages[index]), bool(self._writes[index]))

    def __iter__(self) -> Iterator[WBRequest]:
        for p, w in zip(self._pages.tolist(), self._writes.tolist()):
            yield WBRequest(p, w)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WBRequestSequence):
            return NotImplemented
        return bool(
            np.array_equal(self._pages, other._pages)
            and np.array_equal(self._writes, other._writes)
        )

    def __hash__(self) -> int:
        return hash((self._pages.tobytes(), self._writes.tobytes()))

    def __add__(self, other: "WBRequestSequence") -> "WBRequestSequence":
        if not isinstance(other, WBRequestSequence):
            return NotImplemented
        return WBRequestSequence(
            np.concatenate([self._pages, other._pages]),
            np.concatenate([self._writes, other._writes]),
        )

    def __repr__(self) -> str:
        return (
            f"WBRequestSequence(len={len(self)}, pages<={self.max_page()}, "
            f"write_fraction={self.write_fraction():.3f})"
        )
