"""The cluster map: an epoch-numbered shard -> backend assignment.

A :class:`ClusterMap` is the single piece of state the cluster proxy and
its backends must agree on.  It is deliberately tiny and immutable —
``n_shards`` fixed for the lifetime of the cluster, one backend address
per shard, and a monotonically increasing ``epoch`` that bumps on every
reassignment — so "agreement" reduces to comparing epochs.

Two structural decisions keep migration trivially correct:

* **Shards are the unit of placement, not pages.**  Pages hash to shards
  with the same splitmix64 :class:`~repro.service.router.ShardRouter`
  the backends use internally, so the proxy's page->shard assignment is
  *identical* to every backend's — moving a shard never re-hashes pages.
* **Every backend runs the full shard set.**  Backends are launched with
  the cluster's total ``n_shards`` and the same seed, so each holds a
  byte-identical (idle) engine for every shard it does not own.  The map
  only decides where traffic goes; migration fills the target's idle
  engine with the source's state and flips one entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceConfigError

__all__ = ["ClusterMap"]


@dataclass(frozen=True)
class ClusterMap:
    """Immutable shard->backend assignment at one epoch."""

    n_shards: int
    #: ``assignment[shard]`` is the owning backend's ``host:port``.
    assignment: tuple[str, ...]
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ServiceConfigError(
                f"n_shards must be >= 1, got {self.n_shards}")
        object.__setattr__(self, "assignment", tuple(self.assignment))
        if len(self.assignment) != self.n_shards:
            raise ServiceConfigError(
                f"assignment covers {len(self.assignment)} shards, "
                f"expected {self.n_shards}")
        for shard, address in enumerate(self.assignment):
            if not isinstance(address, str) or not address:
                raise ServiceConfigError(
                    f"shard {shard} has an empty backend address")
        if self.epoch < 0:
            raise ServiceConfigError(f"epoch must be >= 0, got {self.epoch}")

    @classmethod
    def balanced(cls, backends: list[str] | tuple[str, ...],
                 n_shards: int) -> "ClusterMap":
        """Round-robin ``n_shards`` across ``backends`` (epoch 0)."""
        backends = [str(b) for b in backends]
        if not backends:
            raise ServiceConfigError("at least one backend is required")
        if len(set(backends)) != len(backends):
            raise ServiceConfigError(f"duplicate backend in {backends}")
        return cls(
            n_shards=n_shards,
            assignment=tuple(backends[s % len(backends)]
                             for s in range(n_shards)),
        )

    # -- lookups -----------------------------------------------------------
    def owner_of(self, shard: int) -> str:
        """The backend address owning ``shard``."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}")
        return self.assignment[shard]

    @property
    def backends(self) -> tuple[str, ...]:
        """Distinct backend addresses, in first-appearance order."""
        return tuple(dict.fromkeys(self.assignment))

    def shards_of(self, address: str) -> tuple[int, ...]:
        """All shards currently owned by ``address``."""
        return tuple(s for s, a in enumerate(self.assignment) if a == address)

    def counts(self) -> dict[str, int]:
        """Shards per backend (insertion-ordered like :attr:`backends`)."""
        out: dict[str, int] = {}
        for address in self.assignment:
            out[address] = out.get(address, 0) + 1
        return out

    # -- evolution ---------------------------------------------------------
    def with_owner(self, shard: int, address: str) -> "ClusterMap":
        """A new map with ``shard`` reassigned and the epoch bumped.

        ``address`` may be a backend not yet in the map (scale-out) and
        the reassignment may leave a backend with zero shards (scale-in).
        """
        self.owner_of(shard)  # validates the index
        if not address:
            raise ServiceConfigError("backend address must be non-empty")
        assignment = list(self.assignment)
        assignment[shard] = str(address)
        return ClusterMap(self.n_shards, tuple(assignment), self.epoch + 1)

    def rebalance_moves(
        self, backends: list[str] | tuple[str, ...] | None = None,
    ) -> list[tuple[int, str, str]]:
        """A minimal, deterministic move plan toward an even spread.

        Returns ``(shard, source, target)`` triples; applying them in
        order (each bumping the epoch) lands every backend within one
        shard of ``n_shards / len(backends)``.  ``backends`` defaults to
        the backends already in the map; pass a longer list to plan a
        scale-out onto empty backends.
        """
        pool = [str(b) for b in (backends if backends is not None
                                 else self.backends)]
        if not pool:
            raise ServiceConfigError("at least one backend is required")
        if len(set(pool)) != len(pool):
            raise ServiceConfigError(f"duplicate backend in {pool}")
        base, extra = divmod(self.n_shards, len(pool))
        targets = {b: base + (1 if i < extra else 0)
                   for i, b in enumerate(pool)}
        owned = {b: [s for s, a in enumerate(self.assignment) if a == b]
                 for b in pool}
        stray = [s for s, a in enumerate(self.assignment) if a not in targets]
        surplus: list[int] = list(stray)
        for b in pool:
            if len(owned[b]) > targets[b]:
                # Donate the highest-numbered shards, keeping plans stable
                # under repeated invocation.
                surplus.extend(owned[b][targets[b]:])
        moves: list[tuple[int, str, str]] = []
        for b in pool:
            need = targets[b] - len(owned[b])
            for _ in range(max(0, need)):
                shard = surplus.pop(0)
                moves.append((shard, self.assignment[shard], b))
        return moves

    # -- wire form ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form (rides in :class:`~repro.net.ClusterStatusReply`)."""
        return {
            "epoch": self.epoch,
            "n_shards": self.n_shards,
            "assignment": list(self.assignment),
            "backends": list(self.backends),
            "counts": self.counts(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterMap":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            n_shards=int(data["n_shards"]),
            assignment=tuple(str(a) for a in data["assignment"]),
            epoch=int(data.get("epoch", 0)),
        )

    def __repr__(self) -> str:
        spread = ", ".join(f"{b}:{n}" for b, n in self.counts().items())
        return f"ClusterMap(epoch={self.epoch}, shards={self.n_shards}, {spread})"
