"""Live shard migration: move one shard between backends, losing nothing.

The sequence (coordinated from the proxy, executed over the wire)::

    hold(shard)                       # new submits park in admit()
      wait_shard_idle(shard)          # admitted submits finish on the owner
        source: Migrate(shard)        #   backend quiesces + checkpoints
        target: Install(shard, ...)   #   backend restores the payload
      reassign(shard, target)         # epoch += 1, routing flips
    release(shard)                    # parked submits route to the target

Why no ticket is dropped and the ledger stays exact:

* The hold + idle-wait pair guarantees *quiescence*: every batch the old
  owner accepted for the shard is fully applied before capture, and no
  new batch can reach it (``admit`` re-checks holds under the same lock
  that increments the in-flight counts — see
  :class:`~repro.cluster.proxy.RoutingTable`).
* The checkpoint is the same pickled policy->cache->ledger object graph
  the fault-recovery path restores, so the target's engine resumes
  byte-identical to the source's — the per-shard ledger transfers
  exactly, and the cluster total equals a single-node run on the same
  seed.
* Routing flips only *after* a successful install; any failure raises
  :class:`~repro.errors.MigrationError` and leaves the map untouched, so
  parked submits simply resume against the original owner.

Trace marks never ship: they are file positions on the source host.  The
target's trace (if tracing) continues forward from its own clock.
"""

from __future__ import annotations

from repro.errors import MigrationError
from repro.net.client import PagingClient, RemoteError

__all__ = ["migrate_shard", "MIGRATION_MAX_FRAME_BYTES"]

#: Decoder cap for migration clients: checkpoint payloads ride base64 in
#: one frame, so the cap must cover the largest shard state (a few KiB
#: for test instances; this is generous headroom for real ones).
MIGRATION_MAX_FRAME_BYTES = 256 * 1024 * 1024


def migrate_shard(
    table,
    shard: int,
    target: str,
    *,
    timeout: float = 60.0,
    client_factory=PagingClient,
) -> dict:
    """Move ``shard`` to backend ``target`` through ``table``'s gates.

    ``table`` is the proxy's :class:`~repro.cluster.proxy.RoutingTable`.
    Returns ``{"moved", "shard", "source", "target", "epoch", "t",
    "detail"}``; asking for a shard already on ``target`` is a no-op
    (``moved`` False, current epoch).  Raises ``ValueError`` for a bad
    shard index and :class:`~repro.errors.MigrationError` when the move
    could not complete — in which case routing is unchanged.
    """
    with table.migration_lock:
        cmap = table.map
        source = cmap.owner_of(shard)  # validates the index
        target = str(target)
        if not target:
            raise ValueError("target backend address must be non-empty")
        if source == target:
            return {"moved": False, "shard": shard, "source": source,
                    "target": target, "epoch": cmap.epoch, "t": -1,
                    "detail": f"shard {shard} already on {target}"}
        table.hold(shard)
        try:
            if not table.wait_shard_idle(shard, timeout):
                raise MigrationError(
                    f"shard {shard} still had submits in flight after "
                    f"{timeout:g}s")
            try:
                with client_factory(
                    source, timeout=timeout,
                    max_frame_bytes=MIGRATION_MAX_FRAME_BYTES,
                ) as src:
                    t, payload = src.migrate_shard(shard, timeout=timeout)
                with client_factory(
                    target, timeout=timeout,
                    max_frame_bytes=MIGRATION_MAX_FRAME_BYTES,
                ) as dst:
                    if not dst.install_shard(shard, t, payload,
                                             timeout=timeout):
                        raise MigrationError(
                            f"backend {target} refused the install of "
                            f"shard {shard}")
            except (OSError, RemoteError) as exc:
                raise MigrationError(
                    f"migrating shard {shard} {source} -> {target} "
                    f"failed: {exc}") from exc
            new_map = table.reassign(shard, target)
        finally:
            table.release(shard)
    return {"moved": True, "shard": shard, "source": source,
            "target": target, "epoch": new_map.epoch, "t": t,
            "detail": f"shard {shard} moved {source} -> {target} at t={t}"}
