"""repro.cluster — multi-node serving over the repro.net wire protocol.

Three pieces turn N independent ``repro serve`` backends into one
cluster:

* :class:`ClusterMap` (:mod:`repro.cluster.map`) — the epoch-numbered
  shard -> backend assignment both sides agree on;
* :class:`ClusterProxy` (:mod:`repro.cluster.proxy`) — a frame-protocol
  front door that consistent-hashes pages to cluster shards, pipelines
  per-backend parts, merges acks, aggregates snapshots, and retries
  ``overloaded`` answers;
* :func:`migrate_shard` (:mod:`repro.cluster.migrate`) — live shard
  migration over the :class:`~repro.net.Migrate` /
  :class:`~repro.net.Install` wire messages: quiesce, checkpoint, ship,
  restore, flip the epoch — with zero dropped tickets.

The correctness contract is inherited from the single-node service:
backends replicate the full shard set from identical seeds, so the
cluster's total cost ledger is *exactly* the single-node ledger for the
same workload — migrations included.  ``repro cluster --help`` is the
operational entry point.
"""

from repro.cluster.map import ClusterMap
from repro.cluster.migrate import MIGRATION_MAX_FRAME_BYTES, migrate_shard
from repro.cluster.proxy import ClusterProxy, RoutingTable

__all__ = [
    "ClusterMap",
    "ClusterProxy",
    "RoutingTable",
    "migrate_shard",
    "MIGRATION_MAX_FRAME_BYTES",
]
