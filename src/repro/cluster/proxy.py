"""ClusterProxy: one wire-protocol front door over N ``repro serve`` backends.

The proxy speaks the exact :mod:`repro.net` frame protocol on its front
side — :func:`~repro.net.run_network_load`, :class:`~repro.net.PagingClient`
and the CLI all work against it unchanged — and consistent-hashes each
submit's pages across the backends named by its :class:`ClusterMap`:

* pages hash to **cluster shards** with the same splitmix64
  :class:`~repro.service.router.ShardRouter` every backend uses
  internally, so a page lands on the same shard engine no matter which
  backend currently owns that shard;
* each front submit is split into per-backend parts (arrival order
  preserved within each part), pipelined to the backends over dedicated
  :class:`~repro.net.PagingClient` channels, and the part acks are merged
  into exactly one front :class:`~repro.net.frame.SubmitAck`;
* ``overloaded`` part answers are retried against the (possibly new)
  owner with capped backoff; a dead backend connection is re-dialed via
  :meth:`~repro.net.PagingClient.reconnect` and its in-flight parts
  resubmitted, so a backend restart costs latency, not tickets.

Concurrency model (all plain threads, mirroring the sync client): one
accept thread, one reader thread per front connection, and per
(connection, backend) one *channel* thread owning that backend's client —
clients are single-threaded by contract, so the channel both submits and
collects.  Routing state lives in a :class:`RoutingTable` shared by all
connections; its per-shard hold gates + in-flight counts give migration
its no-ticket-dropped guarantee (see :mod:`repro.cluster.migrate`).
"""

from __future__ import annotations

import contextlib
import queue as _queue
import socket
import threading
from time import monotonic, sleep

import numpy as np

from repro.cluster.map import ClusterMap
from repro.cluster.migrate import migrate_shard
from repro.errors import (
    FrameError,
    MigrationError,
    ServiceConfigError,
    ServiceStateError,
)
from repro.net.client import PagingClient, RemoteError
from repro.net.frame import (
    DEFAULT_MAX_FRAME_BYTES,
    ClusterStatus,
    ClusterStatusReply,
    Drain,
    DrainReply,
    Error,
    FrameDecoder,
    MoveShard,
    MoveShardReply,
    Ping,
    Pong,
    Snapshot,
    SnapshotReply,
    SubmitAck,
    SubmitBatch,
    encode,
)
from repro.obs.registry import null_registry
from repro.obs.rtrace import SpanExporter, TraceContext, flight_recorder
from repro.service.router import ShardRouter

__all__ = ["ClusterProxy", "RoutingTable"]

#: Backoff ceiling for per-part overload retries (the client's policy).
_BACKOFF_CAP_S = 0.05
#: How long a channel poll blocks before re-checking its work queue.
_POLL_S = 0.02

#: Severity order for merging part statuses into one front ack: the
#: merged status is the worst part status ("ok" only when every part ok).
_STATUS_RANK = {"ok": 0, "overloaded": 1, "shed": 2, "deadline": 3,
                "failed": 4}


class RoutingTable:
    """Shared, lockable routing state: the live map + migration gates.

    Admission protocol: a submit calls :meth:`admit` with the distinct
    shards it touches, which blocks while any of them is *held* by a
    migration and otherwise atomically (a) re-checks the holds, (b)
    increments the shards' in-flight counts and (c) returns the map to
    route by.  The migrator's counterpart — :meth:`hold` then
    :meth:`wait_shard_idle` — therefore observes a shard with zero
    in-flight submits only when no admitted submit can still reach the
    old owner, which is exactly the no-lost-update condition.
    """

    def __init__(self, cluster_map: ClusterMap) -> None:
        self._map = cluster_map
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: set() = open for traffic; clear() = held by a migration.
        self._holds = [threading.Event() for _ in range(cluster_map.n_shards)]
        for event in self._holds:
            event.set()
        self._inflight = [0] * cluster_map.n_shards
        #: Serializes migrations (one shard moves at a time).
        self.migration_lock = threading.Lock()

    @property
    def map(self) -> ClusterMap:
        """The current cluster map (immutable; safe to use lock-free)."""
        with self._lock:
            return self._map

    # -- submit side -------------------------------------------------------
    def admit(self, shards, timeout: float | None) -> ClusterMap | None:
        """Gate one submit touching ``shards``; None when holds timed out.

        On success the shards' in-flight counts are incremented and the
        map that routing must use is returned — reading the map *inside*
        the same critical section as the increment is what makes the
        flip in :meth:`reassign` atomic from the submit's point of view.
        """
        deadline = None if timeout is None else monotonic() + timeout
        while True:
            for s in shards:
                remaining = (None if deadline is None
                             else max(0.0, deadline - monotonic()))
                if not self._holds[s].wait(remaining):
                    return None
            with self._cond:
                if all(self._holds[s].is_set() for s in shards):
                    for s in shards:
                        self._inflight[s] += 1
                    return self._map
            # A migration grabbed a shard between the wait and the lock;
            # go around and wait for it to finish.

    def finish(self, shards) -> None:
        """Release one admitted submit's in-flight slots."""
        with self._cond:
            for s in shards:
                self._inflight[s] -= 1
            self._cond.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no admitted submit is in flight anywhere."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not any(self._inflight), timeout)

    # -- migration side ----------------------------------------------------
    def hold(self, shard: int) -> None:
        """Park new submits touching ``shard`` (they block in admit)."""
        with self._cond:
            self._holds[shard].clear()

    def release(self, shard: int) -> None:
        """Reopen ``shard`` for traffic."""
        with self._cond:
            self._holds[shard].set()

    def wait_shard_idle(self, shard: int, timeout: float | None) -> bool:
        """Block until every admitted submit touching ``shard`` finished."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._inflight[shard] == 0, timeout)

    def reassign(self, shard: int, target: str) -> ClusterMap:
        """Flip one shard's owner; returns the new (epoch-bumped) map."""
        with self._cond:
            self._map = self._map.with_owner(shard, target)
            return self._map


class _Work:
    """One per-backend part of one front submit."""

    __slots__ = ("pending", "pages", "levels", "attempts", "trace")

    def __init__(self, pending: "_FrontPending", pages: tuple, levels: tuple,
                 trace: TraceContext | None = None) -> None:
        self.pending = pending
        self.pages = pages
        self.levels = levels
        self.attempts = 0
        #: Trace context forwarded to the owning backend (None = untraced).
        self.trace = trace


class _FrontPending:
    """Merges per-backend part acks into one front SubmitAck."""

    __slots__ = ("conn", "id", "n_requests", "shards", "table",
                 "_remaining", "_status", "_shard", "_detail", "_lock")

    def __init__(self, conn: "_FrontConn", request_id: int, n_requests: int,
                 n_parts: int, shards, table: RoutingTable) -> None:
        self.conn = conn
        self.id = request_id
        self.n_requests = n_requests
        self.shards = shards
        self.table = table
        self._remaining = n_parts
        self._status = "ok"
        self._shard = -1
        self._detail = ""
        self._lock = threading.Lock()

    def part_done(self, status: str, shard: int = -1, detail: str = "") -> None:
        """Fold one part's terminal status; the last part sends the ack."""
        with self._lock:
            if _STATUS_RANK.get(status, 5) > _STATUS_RANK.get(self._status, 0):
                self._status = status
                self._shard = shard
                self._detail = detail
            self._remaining -= 1
            fire = self._remaining == 0
        if fire:
            # Release the routing slots *before* the ack write: a client
            # that reacts instantly (migrate-on-ack tests do) must see
            # the table already idle.
            self.table.finish(self.shards)
            self.conn.send(SubmitAck(
                self.id, self._status, self.n_requests,
                shard=self._shard, detail=self._detail))


class _FrontConn:
    """One accepted front socket plus its write lock."""

    __slots__ = ("sock", "open", "_wlock")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.open = True
        self._wlock = threading.Lock()

    def send(self, msg) -> None:
        data = encode(msg, max_frame_bytes=2**31 - 1)
        with self._wlock:
            if not self.open:
                return
            try:
                self.sock.sendall(data)
            except OSError:
                self.open = False


class _BackendChannel:
    """One connection-private pipeline to one backend.

    Owns the only thread that ever touches its :class:`PagingClient`.
    The loop drains its work queue up to ``window`` submits in flight,
    reaps acks as they arrive, retries ``overloaded`` parts with capped
    backoff, and on a transport error re-dials and resubmits everything
    outstanding — parts are only ever resolved by a terminal ack.
    """

    def __init__(self, address: str, *, window: int, retries: int,
                 retry_backoff: float, timeout: float, on_forward) -> None:
        self.address = address
        self.window = window
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.client = PagingClient(address, timeout=timeout, retries=retries,
                                   retry_backoff=retry_backoff)
        self._on_forward = on_forward
        self._q: _queue.Queue[_Work] = _queue.Queue()
        self._outstanding: dict[int, _Work] = {}
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-proxy-ch-{address}", daemon=True)
        self._thread.start()

    def enqueue(self, work: _Work) -> None:
        self._q.put(work)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(5.0)
        self.client.close()

    # -- channel loop ------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._pump()
            except (OSError, ConnectionError, RemoteError) as exc:
                self._recover(exc)

    def _pump(self) -> None:
        moved = False
        while (len(self._outstanding) < self.window
               and not self._q.empty()):
            try:
                work = self._q.get_nowait()
            except _queue.Empty:
                break
            self._submit(work)
            moved = True
        if self._outstanding:
            try:
                rid, result = self.client.collect_any(timeout=_POLL_S)
            except (TimeoutError, socket.timeout):
                return
            work = self._outstanding.pop(rid)
            if result.retryable and work.attempts < self.retries:
                work.attempts += 1
                sleep(min(self.retry_backoff * 2 ** (work.attempts - 1),
                          _BACKOFF_CAP_S))
                self._submit(work)
                return
            work.pending.part_done(result.status, result.ack.shard,
                                   result.ack.detail)
        elif not moved:
            # Idle: block briefly on the queue so stop() stays responsive.
            try:
                work = self._q.get(timeout=0.1)
            except _queue.Empty:
                return
            self._submit(work)

    def _submit(self, work: _Work) -> None:
        rid = self.client.submit_nowait(work.pages, work.levels,
                                        trace=work.trace)
        self._outstanding[rid] = work
        self._on_forward(self.address)

    def _recover(self, exc: BaseException) -> None:
        """Re-dial a dead backend and resubmit everything outstanding."""
        if isinstance(exc, RemoteError) and exc.request_id != 0:
            # A per-request typed error is terminal for that part, not a
            # transport failure.
            work = self._outstanding.pop(exc.request_id, None)
            if work is not None:
                work.pending.part_done("failed", detail=str(exc))
            return
        works = list(self._outstanding.values())
        self._outstanding.clear()
        while not self._stop.is_set():
            try:
                self.client.reconnect()
                break
            except OSError:
                sleep(0.05)
        else:
            for work in works:
                work.pending.part_done("failed",
                                       detail=f"backend {self.address} lost")
            return
        for work in works:
            self._submit(work)


class ClusterProxy:
    """A threaded TCP front door routing the wire protocol over a cluster.

    ``start()`` binds the listener and returns once the port is known;
    ``stop()`` closes the listener, then the front connections and their
    backend channels.  The proxy never owns the backends' lifecycles —
    they are independent ``repro serve`` processes.
    """

    def __init__(
        self,
        cluster_map: ClusterMap,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window: int = 16,
        retries: int = 8,
        retry_backoff: float = 0.002,
        timeout: float = 30.0,
        hold_timeout: float = 60.0,
        migration_timeout: float = 60.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        registry=None,
        span_exporter: SpanExporter | None = None,
    ) -> None:
        if window < 1:
            raise ServiceConfigError(f"window must be >= 1, got {window}")
        #: Optional exporter for ``proxy``-tier spans (admit + per-part
        #: forward); incoming contexts are forwarded to backends either
        #: way, so tracing composes across tiers without proxy recording.
        self._spans = span_exporter
        self._submit_seq = 0
        self._seq_lock = threading.Lock()
        self.table = RoutingTable(cluster_map)
        self.router = ShardRouter(cluster_map.n_shards)
        self.window = window
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.timeout = timeout
        self.hold_timeout = hold_timeout
        self.migration_timeout = migration_timeout
        self.max_frame_bytes = max_frame_bytes
        self._host = host
        self._requested_port = port
        reg = registry if registry is not None else null_registry()
        self._m_connections = reg.counter(
            "repro_proxy_connections_total", "Front connections accepted")
        self._m_submits = reg.counter(
            "repro_proxy_submits_total", "Front submits received")
        self._m_forwards = reg.counter(
            "repro_proxy_forwards_total",
            "Parts forwarded to backends", ("backend",))
        self._m_migrations = reg.counter(
            "repro_proxy_migrations_total", "Shard migrations completed")
        self._m_migrating = reg.gauge(
            "repro_proxy_migrations_inflight", "Migrations currently running")
        self._m_epoch = reg.gauge(
            "repro_proxy_epoch", "Current cluster map epoch")
        self._m_epoch.set(cluster_map.epoch)
        self.n_migrations = 0
        self._listener: socket.socket | None = None
        self._port: int | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        return self._port if self._port is not None else self._requested_port

    @property
    def host(self) -> str:
        return self._host

    @property
    def address(self) -> str:
        """``host:port`` as accepted by :class:`~repro.net.PagingClient`."""
        return f"{self._host}:{self.port}"

    def start(self, *, check_backends: bool = True) -> "ClusterProxy":
        """Bind the front listener (optionally pinging every backend first)."""
        if self._listener is not None:
            raise ServiceStateError("cluster proxy already started")
        if check_backends:
            for backend in self.table.map.backends:
                with PagingClient(backend, timeout=self.timeout) as probe:
                    probe.ping()
        listener = socket.create_server(
            (self._host, self._requested_port), backlog=64)
        self._port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-proxy-accept", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Close the listener, then every front connection (idempotent)."""
        if self._listener is None:
            return
        self._stopping.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
            self._accept_thread = None
        with self._lock:
            threads = list(self._conn_threads)
        for t in threads:
            t.join(timeout)
        self._listener = None

    def __enter__(self) -> "ClusterProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- accept / per-connection loops -------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._m_connections.inc()
            thread = threading.Thread(
                target=self._serve_front, args=(sock,),
                name="repro-proxy-conn", daemon=True)
            with self._lock:
                self._conn_threads.append(thread)
            thread.start()

    def _serve_front(self, sock: socket.socket) -> None:
        conn = _FrontConn(sock)
        channels: dict[str, _BackendChannel] = {}
        decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        sock.settimeout(0.25)
        try:
            while not self._stopping.is_set():
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                for event in decoder.feed(data):
                    if isinstance(event, FrameError):
                        conn.send(Error(0, event.code, str(event)))
                        continue
                    self._dispatch(conn, channels, event)
        finally:
            conn.open = False
            for channel in channels.values():
                channel.stop()
            with contextlib.suppress(OSError):
                sock.close()

    def _channel(self, channels: dict, address: str) -> _BackendChannel:
        channel = channels.get(address)
        if channel is None:
            channel = _BackendChannel(
                address, window=self.window, retries=self.retries,
                retry_backoff=self.retry_backoff, timeout=self.timeout,
                on_forward=lambda a: self._m_forwards.labels(a).inc())
            channels[address] = channel
        return channel

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, conn: _FrontConn, channels: dict, msg) -> None:
        if isinstance(msg, SubmitBatch):
            self._dispatch_submit(conn, channels, msg)
        elif isinstance(msg, Ping):
            conn.send(Pong(msg.id))
        elif isinstance(msg, Snapshot):
            self._dispatch_snapshot(conn, msg)
        elif isinstance(msg, Drain):
            self._dispatch_drain(conn, msg)
        elif isinstance(msg, ClusterStatus):
            conn.send(ClusterStatusReply(msg.id, self.status()))
        elif isinstance(msg, MoveShard):
            self._dispatch_move(conn, msg)
        else:
            conn.send(Error(msg.id, "bad_request",
                            f"unexpected {msg.type} message"))

    def _dispatch_submit(self, conn: _FrontConn, channels: dict,
                         msg: SubmitBatch) -> None:
        self._m_submits.inc()
        pages = np.asarray(msg.pages, dtype=np.int64)
        if pages.size == 0:
            conn.send(SubmitAck(msg.id, "ok", 0))
            return
        levels = (np.asarray(msg.levels, dtype=np.int64) if msg.levels
                  else np.ones_like(pages))
        owners = self.router.shards_of(pages)
        shards = [int(s) for s in np.unique(owners)]
        cmap = self.table.admit(shards, self.hold_timeout)
        if cmap is None:
            conn.send(SubmitAck(
                msg.id, "overloaded", int(pages.size),
                detail="shard held by migration beyond hold_timeout"))
            return
        # Group the touched shards by owning backend; each group becomes
        # one part, its pages kept in arrival order (boolean masks are
        # order-preserving), so per-shard request order is untouched.
        by_backend: dict[str, list[int]] = {}
        for s in shards:
            by_backend.setdefault(cmap.owner_of(s), []).append(s)
        ctx = (TraceContext.from_wire(msg.trace)
               if msg.trace is not None else None)
        admit_ctx = ctx
        if ctx is not None and self._spans is not None:
            with self._seq_lock:
                t = self._submit_seq
                self._submit_seq += 1
            admit_ctx = self._spans.emit(
                ctx, "admit", tier="proxy", t=t,
                attrs={"n_requests": int(pages.size),
                       "n_backends": len(by_backend)})
        pending = _FrontPending(conn, msg.id, int(pages.size),
                                len(by_backend), shards, self.table)
        for idx, (backend, owned) in enumerate(by_backend.items()):
            mask = np.isin(owners, owned)
            part_pages = tuple(int(p) for p in pages[mask])
            fwd_ctx = admit_ctx
            if admit_ctx is not None and self._spans is not None:
                fwd_ctx = self._spans.emit(
                    admit_ctx, "forward", tier="proxy", t=t, index=idx,
                    attrs={"backend": backend,
                           "n_requests": len(part_pages)})
            work = _Work(pending, part_pages,
                         tuple(int(v) for v in levels[mask]),
                         trace=fwd_ctx)
            self._channel(channels, backend).enqueue(work)

    def _dispatch_snapshot(self, conn: _FrontConn, msg: Snapshot) -> None:
        cmap = self.table.map
        try:
            per_backend = {
                backend: self._backend_call(backend,
                                            lambda c: c.snapshot())
                for backend in cmap.backends
            }
        except (OSError, RemoteError) as exc:
            conn.send(Error(msg.id, "unavailable",
                            f"backend snapshot failed: {exc}"))
            return
        conn.send(SnapshotReply(msg.id, self._merge_snapshots(
            cmap, per_backend)))

    def _dispatch_drain(self, conn: _FrontConn, msg: Drain) -> None:
        deadline = (None if msg.timeout is None
                    else monotonic() + msg.timeout)

        def remaining() -> float | None:
            if deadline is None:
                return None
            return max(0.0, deadline - monotonic())

        ok = self.table.wait_idle(remaining())
        if ok:
            for backend in self.table.map.backends:
                try:
                    ok = self._backend_call(
                        backend, lambda c: c.drain(remaining())) and ok
                except (OSError, RemoteError) as exc:
                    conn.send(Error(msg.id, "unavailable",
                                    f"backend drain failed: {exc}"))
                    return
        conn.send(DrainReply(msg.id, bool(ok)))

    def _dispatch_move(self, conn: _FrontConn, msg: MoveShard) -> None:
        try:
            result = self.migrate(msg.shard, msg.target)
        except (ValueError, ServiceConfigError) as exc:
            conn.send(Error(msg.id, "bad_request", str(exc)))
            return
        except (MigrationError, OSError, RemoteError) as exc:
            conn.send(MoveShardReply(
                msg.id, msg.shard, ok=False, target=msg.target,
                epoch=self.table.map.epoch, detail=str(exc)))
            return
        conn.send(MoveShardReply(
            msg.id, msg.shard, ok=True, source=result["source"],
            target=result["target"], epoch=result["epoch"],
            detail=result["detail"]))

    # -- backend helpers ---------------------------------------------------
    def _backend_call(self, address: str, fn):
        """Run one control-plane call on an ephemeral backend client."""
        with PagingClient(address, timeout=self.timeout) as client:
            return fn(client)

    @staticmethod
    def _merge_snapshots(cmap: ClusterMap, per_backend: dict) -> dict:
        """One service-shaped snapshot: each shard from its current owner.

        Backends replicate the full shard set, so every backend reports
        every shard; only the owner's copy carries that shard's live
        state (the others are idle or stale post-migration).  Service-wide
        ingest counters are summed across backends.
        """
        shard_dicts = []
        for shard in range(cmap.n_shards):
            owner = per_backend[cmap.owner_of(shard)]
            shard_dicts.append(next(
                s for s in owner["shards"] if s["shard"] == shard))
        n_requests = sum(s["n_requests"] for s in shard_dicts)
        n_hits = sum(s["n_hits"] for s in shard_dicts)
        cost_by_level: dict[str, float] = {}
        for s in shard_dicts:
            for level, cost in s["cost_by_level"].items():
                cost_by_level[level] = cost_by_level.get(level, 0.0) + cost
        return {
            "n_requests": n_requests,
            "n_hits": n_hits,
            "n_misses": sum(s["n_misses"] for s in shard_dicts),
            "hit_rate": (n_hits / n_requests) if n_requests else 0.0,
            "eviction_cost": sum(s["eviction_cost"] for s in shard_dicts),
            "cost_by_level": cost_by_level,
            "n_overloaded": sum(b["n_overloaded"]
                                for b in per_backend.values()),
            "n_submitted_batches": sum(b["n_submitted_batches"]
                                       for b in per_backend.values()),
            "n_worker_restarts": sum(b["n_worker_restarts"]
                                     for b in per_backend.values()),
            "n_failed_shards": sum(b["n_failed_shards"]
                                   for b in per_backend.values()),
            "n_faults_injected": sum(b["n_faults_injected"]
                                     for b in per_backend.values()),
            "shards": shard_dicts,
            "cluster": cmap.to_dict(),
        }

    # -- control plane -----------------------------------------------------
    def status(self) -> dict:
        """The live map plus proxy-side counters (ClusterStatus payload)."""
        payload = self.table.map.to_dict()
        payload["n_migrations"] = self.n_migrations
        return payload

    def migrate(self, shard: int, target: str) -> dict:
        """Live-migrate ``shard`` to ``target``; returns the outcome dict.

        Delegates to :func:`repro.cluster.migrate_shard` with this
        proxy's routing table, so in-flight tickets finish on the old
        owner before the state moves and new ones only unblock once
        routing points at the new owner.
        """
        self._m_migrating.set(1)
        try:
            result = migrate_shard(
                self.table, shard, target, timeout=self.migration_timeout)
        except MigrationError:
            # Preserve the last spans' worth of context for the post-mortem
            # before the error propagates to the mover.
            flight_recorder().dump(f"migration-error-shard-{shard}")
            raise
        finally:
            self._m_migrating.set(0)
        if result["moved"]:
            self.n_migrations += 1
            self._m_migrations.inc()
            self._m_epoch.set(result["epoch"])
        return result

    def __repr__(self) -> str:
        state = "serving" if self._listener is not None else "stopped"
        return f"ClusterProxy({self.address}, {state}, {self.table.map!r})"
