"""Workload generators: synthetic, writeback, multi-level, adversarial, traces."""

from repro.workloads.adversarial import (
    chase_misses,
    cyclic_nemesis,
    weighted_phase_adversary,
)
from repro.workloads.base import as_generator, sample_weights, zipf_probabilities
from repro.workloads.multilevel import (
    geometric_instance,
    multilevel_stream,
    optane_stream,
    random_multilevel_instance,
)
from repro.workloads.synthetic import (
    loop_stream,
    markov_stream,
    mixture_stream,
    scan_stream,
    uniform_stream,
    working_set_stream,
    zipf_stream,
)
from repro.workloads.stats import (
    WorkloadProfile,
    profile_sequence,
    profile_wb_sequence,
)
from repro.workloads.traces import dumps_trace, load_trace, loads_trace, save_trace
from repro.workloads.writeback import (
    hot_writer_stream,
    logging_stream,
    readwrite_stream,
)

__all__ = [
    "as_generator",
    "sample_weights",
    "zipf_probabilities",
    "uniform_stream",
    "zipf_stream",
    "scan_stream",
    "working_set_stream",
    "markov_stream",
    "loop_stream",
    "mixture_stream",
    "readwrite_stream",
    "hot_writer_stream",
    "logging_stream",
    "geometric_instance",
    "random_multilevel_instance",
    "multilevel_stream",
    "optane_stream",
    "cyclic_nemesis",
    "chase_misses",
    "weighted_phase_adversary",
    "WorkloadProfile",
    "profile_sequence",
    "profile_wb_sequence",
    "dumps_trace",
    "loads_trace",
    "save_trace",
    "load_trace",
]
