"""Workload characterization.

Summary statistics used by reports to describe a request stream before
any policy touches it: footprint, popularity skew, reuse-distance
profile, level mix, and write intensity.  Reuse distances reuse the
Fenwick-tree stack-distance engine from :mod:`repro.sim.mrc`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.requests import RequestSequence, WBRequestSequence

__all__ = ["WorkloadProfile", "profile_sequence", "profile_wb_sequence"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Descriptive statistics of a request stream."""

    n_requests: int
    footprint: int  # distinct pages touched
    top1_share: float  # share of the most popular page
    top10_share: float  # share of the 10 most popular pages
    median_reuse_distance: float  # over re-references (nan if none)
    cold_fraction: float  # first references / requests
    level_mix: dict[int, float]  # level -> request share
    write_fraction: float  # 0.0 for plain multi-level streams

    def describe(self) -> str:
        """One-line human-readable summary."""
        reuse = (
            "n/a"
            if np.isnan(self.median_reuse_distance)
            else f"{self.median_reuse_distance:.0f}"
        )
        return (
            f"{self.n_requests} requests over {self.footprint} pages; "
            f"top-1 {self.top1_share:.1%}, top-10 {self.top10_share:.1%}; "
            f"median reuse distance {reuse}; "
            f"cold {self.cold_fraction:.1%}; writes {self.write_fraction:.1%}"
        )


def _popularity(pages: np.ndarray) -> tuple[float, float]:
    counts = np.sort(np.bincount(pages))[::-1]
    total = counts.sum()
    if total == 0:
        return 0.0, 0.0
    return float(counts[0] / total), float(counts[:10].sum() / total)


def _reuse(pages: np.ndarray) -> tuple[float, float]:
    from repro.sim.mrc import stack_distances

    if pages.size == 0:
        return float("nan"), 0.0
    dist = stack_distances(pages)
    finite = dist[dist < np.iinfo(np.int64).max]
    cold = 1.0 - finite.size / dist.size
    median = float(np.median(finite)) if finite.size else float("nan")
    return median, float(cold)


def profile_sequence(seq: RequestSequence) -> WorkloadProfile:
    """Characterize a multi-level request stream."""
    pages = seq.pages
    top1, top10 = _popularity(pages) if pages.size else (0.0, 0.0)
    median, cold = _reuse(pages)
    mix: dict[int, float] = {}
    if len(seq):
        levels, counts = np.unique(seq.levels, return_counts=True)
        mix = {int(l): float(c / len(seq)) for l, c in zip(levels, counts)}
    return WorkloadProfile(
        n_requests=len(seq),
        footprint=seq.distinct_pages(),
        top1_share=top1,
        top10_share=top10,
        median_reuse_distance=median,
        cold_fraction=cold,
        level_mix=mix,
        write_fraction=0.0,
    )


def profile_wb_sequence(seq: WBRequestSequence) -> WorkloadProfile:
    """Characterize a writeback request stream."""
    pages = seq.pages
    top1, top10 = _popularity(pages) if pages.size else (0.0, 0.0)
    median, cold = _reuse(pages)
    return WorkloadProfile(
        n_requests=len(seq),
        footprint=int(np.unique(pages).size) if pages.size else 0,
        top1_share=top1,
        top10_share=top10,
        median_reuse_distance=median,
        cold_fraction=cold,
        level_mix={1: seq.write_fraction(), 2: 1.0 - seq.write_fraction()}
        if len(seq)
        else {},
        write_fraction=seq.write_fraction(),
    )
