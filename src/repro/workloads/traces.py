"""Trace serialization.

A minimal line-oriented text format standing in for production traces (the
paper motivates with real systems but evaluates nothing; see the
substitution notes in DESIGN.md).  Format::

    # comments and blank lines ignored
    ml <page> <level>      # multi-level request
    wb <page> r|w          # writeback request

A file must be homogeneous (all ``ml`` or all ``wb``).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import TraceFormatError

__all__ = [
    "save_trace",
    "load_trace",
    "dumps_trace",
    "loads_trace",
]


def dumps_trace(seq: RequestSequence | WBRequestSequence) -> str:
    """Serialize a request sequence to the text trace format."""
    out = io.StringIO()
    if isinstance(seq, RequestSequence):
        for p, i in zip(seq.pages.tolist(), seq.levels.tolist()):
            out.write(f"ml {p} {i}\n")
    elif isinstance(seq, WBRequestSequence):
        for p, w in zip(seq.pages.tolist(), seq.writes.tolist()):
            out.write(f"wb {p} {'w' if w else 'r'}\n")
    else:
        raise TypeError(f"unsupported sequence type {type(seq).__name__}")
    return out.getvalue()


def loads_trace(text: str) -> RequestSequence | WBRequestSequence:
    """Parse the text trace format back into a request sequence."""
    kind: str | None = None
    ml_pairs: list[tuple[int, int]] = []
    wb_pairs: list[tuple[int, bool]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise TraceFormatError(f"line {lineno}: expected 3 fields, got {len(parts)}")
        tag, page_s, third = parts
        if kind is None:
            kind = tag
        elif tag != kind:
            raise TraceFormatError(
                f"line {lineno}: mixed record kinds ({kind!r} then {tag!r})"
            )
        try:
            page = int(page_s)
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: bad page {page_s!r}") from exc
        if tag == "ml":
            try:
                level = int(third)
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: bad level {third!r}") from exc
            ml_pairs.append((page, level))
        elif tag == "wb":
            if third not in ("r", "w"):
                raise TraceFormatError(f"line {lineno}: expected r|w, got {third!r}")
            wb_pairs.append((page, third == "w"))
        else:
            raise TraceFormatError(f"line {lineno}: unknown record kind {tag!r}")
    if kind is None:
        raise TraceFormatError("empty trace (no records)")
    if kind == "ml":
        return RequestSequence.from_pairs(ml_pairs)
    return WBRequestSequence.from_pairs(wb_pairs)


def save_trace(path: str | Path, seq: RequestSequence | WBRequestSequence) -> None:
    """Write a request sequence to ``path`` in the text trace format."""
    Path(path).write_text(dumps_trace(seq), encoding="utf-8")


def load_trace(path: str | Path) -> RequestSequence | WBRequestSequence:
    """Read a request sequence from ``path``."""
    return loads_trace(Path(path).read_text(encoding="utf-8"))
