"""Synthetic single-level request streams.

These are the classical paging workload shapes: independent uniform / Zipf
references, sequential scans, and phase-shifted working sets.  All return
:class:`~repro.core.requests.RequestSequence` objects with ``level = 1``
(weighted paging); lift them to multi-level or writeback streams with
:mod:`repro.workloads.multilevel` and :mod:`repro.workloads.writeback`.
"""

from __future__ import annotations

import numpy as np

from repro.core.requests import RequestSequence
from repro.workloads.base import as_generator, zipf_probabilities

__all__ = [
    "uniform_stream",
    "zipf_stream",
    "scan_stream",
    "working_set_stream",
    "markov_stream",
    "loop_stream",
    "mixture_stream",
]


def uniform_stream(
    n_pages: int, length: int, rng=None
) -> RequestSequence:
    """Independent uniform references over ``n_pages`` pages."""
    gen = as_generator(rng)
    pages = gen.integers(0, n_pages, size=length, dtype=np.int64)
    return RequestSequence.from_pages(pages)


def zipf_stream(
    n_pages: int, length: int, alpha: float = 0.8, rng=None,
    *, shuffle_ranks: bool = True,
) -> RequestSequence:
    """Zipf(alpha)-distributed references.

    When ``shuffle_ranks`` is true, the popularity ranking is a random
    permutation of the page ids so that popularity is uncorrelated with page
    weight in weighted instances.
    """
    gen = as_generator(rng)
    probs = zipf_probabilities(n_pages, alpha)
    if shuffle_ranks:
        probs = probs[gen.permutation(n_pages)]
    pages = gen.choice(n_pages, size=length, p=probs).astype(np.int64)
    return RequestSequence.from_pages(pages)


def scan_stream(n_pages: int, length: int, *, stride: int = 1) -> RequestSequence:
    """A cyclic sequential scan ``0, stride, 2*stride, ...`` (mod n).

    With ``n_pages = k + 1`` this is the classical LRU nemesis.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    idx = (np.arange(length, dtype=np.int64) * stride) % n_pages
    return RequestSequence.from_pages(idx)


def working_set_stream(
    n_pages: int,
    length: int,
    *,
    set_size: int,
    phase_length: int,
    rng=None,
    locality: float = 0.95,
) -> RequestSequence:
    """Phase-shifted working sets.

    Time is split into phases of ``phase_length`` requests.  Each phase
    draws a fresh random working set of ``set_size`` pages; every request
    falls inside the current working set with probability ``locality`` and
    is uniform over all pages otherwise.  This is the canonical workload on
    which LRU-style policies shine and scan-resistant policies are tested.
    """
    if not 1 <= set_size <= n_pages:
        raise ValueError(f"set_size must be in [1, {n_pages}], got {set_size}")
    if phase_length < 1:
        raise ValueError(f"phase_length must be >= 1, got {phase_length}")
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    gen = as_generator(rng)
    pages = np.empty(length, dtype=np.int64)
    pos = 0
    while pos < length:
        wset = gen.choice(n_pages, size=set_size, replace=False)
        span = min(phase_length, length - pos)
        inside = gen.random(span) < locality
        local = wset[gen.integers(0, set_size, size=span)]
        global_ = gen.integers(0, n_pages, size=span)
        pages[pos : pos + span] = np.where(inside, local, global_)
        pos += span
    return RequestSequence.from_pages(pages)


def loop_stream(
    n_pages: int,
    length: int,
    *,
    loop_size: int,
    jitter: float = 0.0,
    rng=None,
) -> RequestSequence:
    """A repeating loop over ``loop_size`` pages with optional jitter.

    The LOOP pattern of the caching literature: with ``loop_size > k`` LRU
    thrashes (0% hits) while MIN retains ``k - 1`` loop pages; ``jitter``
    replaces that fraction of requests with uniform references.
    """
    if not 1 <= loop_size <= n_pages:
        raise ValueError(f"loop_size must be in [1, {n_pages}], got {loop_size}")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    gen = as_generator(rng)
    pages = (np.arange(length, dtype=np.int64) % loop_size)
    if jitter > 0:
        noisy = gen.random(length) < jitter
        pages = np.where(noisy, gen.integers(0, n_pages, size=length), pages)
    return RequestSequence.from_pages(pages)


def mixture_stream(
    components: list[tuple[float, RequestSequence]],
    length: int,
    rng=None,
) -> RequestSequence:
    """Interleave request streams by weighted random choice per request.

    ``components`` is a list of ``(weight, stream)``; each output request
    is drawn as the next unread request of a component chosen with
    probability proportional to its weight.  Components are consumed
    round-robin within themselves and recycled when exhausted — useful for
    mixing a scan with Zipf point lookups, the canonical scan-pollution
    scenario.
    """
    if not components:
        raise ValueError("need at least one component")
    weights = np.array([w for w, _ in components], dtype=np.float64)
    if np.any(weights <= 0):
        raise ValueError("component weights must be positive")
    streams = [s for _, s in components]
    if any(len(s) == 0 for s in streams):
        raise ValueError("components must be non-empty")
    gen = as_generator(rng)
    probs = weights / weights.sum()
    choice = gen.choice(len(streams), size=length, p=probs)
    cursors = [0] * len(streams)
    pages = np.empty(length, dtype=np.int64)
    levels = np.empty(length, dtype=np.int64)
    for t in range(length):
        c = int(choice[t])
        s = streams[c]
        i = cursors[c] % len(s)
        pages[t] = s.pages[i]
        levels[t] = s.levels[i]
        cursors[c] += 1
    return RequestSequence(pages, levels)


def markov_stream(
    n_pages: int,
    length: int,
    *,
    stickiness: float = 0.6,
    neighborhood: int = 4,
    rng=None,
) -> RequestSequence:
    """A random-walk reference stream with temporal and spatial locality.

    With probability ``stickiness`` the next request repeats or moves to a
    page within ``neighborhood`` of the current one; otherwise it jumps
    uniformly.  Models pointer-chasing / B-tree descent access patterns.
    """
    if not 0.0 <= stickiness <= 1.0:
        raise ValueError(f"stickiness must be in [0, 1], got {stickiness}")
    if neighborhood < 1:
        raise ValueError(f"neighborhood must be >= 1, got {neighborhood}")
    gen = as_generator(rng)
    pages = np.empty(length, dtype=np.int64)
    current = int(gen.integers(0, n_pages))
    sticky = gen.random(length) < stickiness
    offsets = gen.integers(-neighborhood, neighborhood + 1, size=length)
    jumps = gen.integers(0, n_pages, size=length)
    for t in range(length):
        if sticky[t]:
            current = int((current + offsets[t]) % n_pages)
        else:
            current = int(jumps[t])
        pages[t] = current
    return RequestSequence.from_pages(pages)
