"""Multi-level request streams and instance builders.

The paper motivates multi-level paging with devices that serve requests at
several granularities — e.g. Intel Optane SSDs where fetching an aligned
4 KB chunk (level 1, expensive) also serves reads of any of its 8 sectors
(level 2+, cheap) — and with substitutable caching in ML-training storage.
These generators build weight matrices with geometric level spacing and
request streams whose level distribution is controllable.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence
from repro.workloads.base import as_generator, sample_weights, zipf_probabilities

__all__ = [
    "geometric_instance",
    "random_multilevel_instance",
    "multilevel_stream",
    "optane_stream",
]


def geometric_instance(
    n_pages: int,
    cache_size: int,
    n_levels: int,
    *,
    top_weight: float | None = None,
    ratio: float = 2.0,
    rng=None,
) -> MultiLevelInstance:
    """An instance where every page has the same geometric level weights.

    ``w(p, i) = top_weight / ratio^(i-1)``, with ``top_weight`` defaulting
    to ``ratio^(n_levels-1)`` so the lightest level has weight 1.
    """
    if n_levels < 1:
        raise ValueError(f"n_levels must be >= 1, got {n_levels}")
    if ratio < 1.0:
        raise ValueError(f"ratio must be >= 1, got {ratio}")
    if top_weight is None:
        top_weight = float(ratio ** (n_levels - 1))
    levels = top_weight / ratio ** np.arange(n_levels, dtype=np.float64)
    if levels[-1] < 1.0:
        raise ValueError(
            f"top_weight {top_weight} too small for {n_levels} levels at ratio {ratio}"
        )
    return MultiLevelInstance(
        cache_size, np.tile(levels, (n_pages, 1)),
        name=f"geometric(n={n_pages}, l={n_levels}, k={cache_size})",
    )


def random_multilevel_instance(
    n_pages: int,
    cache_size: int,
    n_levels: int,
    *,
    rng=None,
    low: float = 1.0,
    high: float = 64.0,
    ratio: float = 2.0,
) -> MultiLevelInstance:
    """Per-page random weights with geometric level spacing.

    The lightest level of each page is sampled log-uniformly from
    ``[low, high]``; level ``i`` costs ``ratio^(n_levels-i)`` times that.
    """
    gen = as_generator(rng)
    base = sample_weights(n_pages, gen, low=low, high=high)
    mult = ratio ** np.arange(n_levels - 1, -1, -1, dtype=np.float64)
    return MultiLevelInstance(
        cache_size, base[:, None] * mult[None, :],
        name=f"randml(n={n_pages}, l={n_levels}, k={cache_size})",
    )


def multilevel_stream(
    n_pages: int,
    n_levels: int,
    length: int,
    *,
    alpha: float = 0.8,
    level_bias: float = 2.0,
    rng=None,
) -> RequestSequence:
    """Zipf pages with independently sampled levels.

    ``level_bias > 1`` skews requests toward the *low* (cheap) levels —
    a request for level ``i`` is ``level_bias`` times as likely as for
    level ``i-1`` — which matches the common case that most traffic can be
    served at fine granularity while occasional requests demand the
    expensive copy.  ``level_bias = 1`` is uniform over levels.
    """
    if level_bias <= 0:
        raise ValueError(f"level_bias must be positive, got {level_bias}")
    gen = as_generator(rng)
    probs = zipf_probabilities(n_pages, alpha)
    probs = probs[gen.permutation(n_pages)]
    pages = gen.choice(n_pages, size=length, p=probs).astype(np.int64)
    level_probs = level_bias ** np.arange(n_levels, dtype=np.float64)
    level_probs /= level_probs.sum()
    levels = gen.choice(np.arange(1, n_levels + 1), size=length, p=level_probs)
    return RequestSequence(pages, levels.astype(np.int64))


def optane_stream(
    n_chunks: int,
    length: int,
    *,
    sectors_per_chunk: int = 8,
    chunk_read_fraction: float = 0.1,
    alpha: float = 0.8,
    rng=None,
) -> RequestSequence:
    """A two-level stream modeled on Optane chunk/sector granularity.

    Pages are 4 KB chunks.  A fraction ``chunk_read_fraction`` of requests
    reads the whole chunk (level 1, must be served by the chunk copy);
    the rest read a single sector (level 2, servable by either the chunk
    copy or the sector copy).  ``sectors_per_chunk`` only shapes the
    docstring-level story — the model collapses each chunk's sectors into
    its level-2 copy, which is exactly the paper's substitutability
    abstraction.
    """
    if not 0.0 <= chunk_read_fraction <= 1.0:
        raise ValueError(
            f"chunk_read_fraction must be in [0, 1], got {chunk_read_fraction}"
        )
    if sectors_per_chunk < 1:
        raise ValueError(f"sectors_per_chunk must be >= 1, got {sectors_per_chunk}")
    gen = as_generator(rng)
    probs = zipf_probabilities(n_chunks, alpha)
    probs = probs[gen.permutation(n_chunks)]
    pages = gen.choice(n_chunks, size=length, p=probs).astype(np.int64)
    levels = np.where(gen.random(length) < chunk_read_fraction, 1, 2)
    return RequestSequence(pages, levels.astype(np.int64))
