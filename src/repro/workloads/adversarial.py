"""Adversarial request streams.

These are the sequences that force online policies toward their worst-case
competitive ratios: cyclic scans over ``k + 1`` pages (the deterministic
nemesis behind the Sleator–Tarjan k lower bound), adaptive miss-chasing
sequences against a concrete deterministic policy, and weighted phase
adversaries that punish weight-oblivious policies.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.requests import RequestSequence
from repro.workloads.base import as_generator

__all__ = [
    "cyclic_nemesis",
    "chase_misses",
    "weighted_phase_adversary",
]


def cyclic_nemesis(cache_size: int, length: int) -> RequestSequence:
    """The cyclic scan over ``k + 1`` pages.

    Every deterministic policy with a size-``k`` cache misses on (almost)
    every request of some such sequence; LRU misses on *every* request.
    """
    return RequestSequence.from_pages(
        np.arange(length, dtype=np.int64) % (cache_size + 1)
    )


def chase_misses(
    n_pages: int,
    length: int,
    cached_pages: Callable[[], set[int]],
    on_request: Callable[[int], None],
    *,
    rng=None,
) -> RequestSequence:
    """Adaptively request a page the policy does not currently cache.

    Drives a concrete deterministic policy through ``on_request`` while
    always requesting some uncached page (uniformly among them), producing
    the adaptive adversary's all-miss stream.  ``cached_pages`` must return
    the policy's current cache contents.

    This helper owns the adversary loop; the caller wires it to a live
    policy + cache (see ``tests/workloads`` for the pattern).
    """
    gen = as_generator(rng)
    pages = np.empty(length, dtype=np.int64)
    universe = np.arange(n_pages, dtype=np.int64)
    for t in range(length):
        cached = cached_pages()
        uncached = universe[~np.isin(universe, list(cached))]
        if uncached.size == 0:
            raise ValueError(
                "adversary needs at least one uncached page; "
                f"universe {n_pages} <= cache size?"
            )
        page = int(uncached[gen.integers(0, uncached.size)])
        pages[t] = page
        on_request(page)
    return RequestSequence.from_pages(pages)


def weighted_phase_adversary(
    light_pages: int,
    heavy_pages: int,
    cache_size: int,
    phases: int,
    *,
    light_burst: int = 32,
) -> RequestSequence:
    """Alternating light-page floods and heavy-page probes.

    Weight-oblivious policies (LRU) evict the heavy pages during each flood
    of ``light_burst`` distinct light pages and then pay the heavy refetch
    on the probe; weight-aware policies keep the heavy pages resident.
    Pages ``[0, heavy_pages)`` are the heavy ones; build the matching
    :class:`~repro.core.instance.WeightedPagingInstance` by giving those
    pages large weights.
    """
    if heavy_pages < 1 or light_pages < 1:
        raise ValueError("need at least one heavy and one light page")
    if light_burst < 1:
        raise ValueError(f"light_burst must be >= 1, got {light_burst}")
    chunks = []
    light_ids = heavy_pages + (np.arange(light_burst, dtype=np.int64) % light_pages)
    heavy_ids = np.arange(heavy_pages, dtype=np.int64)
    for ph in range(phases):
        # Rotate the light flood so successive phases touch different pages.
        rotated = heavy_pages + ((light_ids - heavy_pages + ph * light_burst) % light_pages)
        chunks.append(rotated)
        chunks.append(heavy_ids)
    return RequestSequence.from_pages(np.concatenate(chunks))
