"""Writeback-aware request streams (read/write mixes).

Models the buffer-pool workloads that motivate writeback-aware caching:
reads and writes over a page universe where the write *fraction* and the
write *affinity* (which pages attract the writes) are controllable.  The
intensity of writes controls how much a dirty-oblivious policy overpays.
"""

from __future__ import annotations

import numpy as np

from repro.core.requests import WBRequestSequence
from repro.workloads.base import as_generator, zipf_probabilities

__all__ = [
    "readwrite_stream",
    "hot_writer_stream",
    "logging_stream",
]


def readwrite_stream(
    n_pages: int,
    length: int,
    *,
    write_fraction: float = 0.3,
    alpha: float = 0.8,
    rng=None,
) -> WBRequestSequence:
    """Zipf references where each request is independently a write.

    Every request is a write with probability ``write_fraction``
    regardless of the page — the simplest dirty/clean mix.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0, 1], got {write_fraction}")
    gen = as_generator(rng)
    probs = zipf_probabilities(n_pages, alpha)
    probs = probs[gen.permutation(n_pages)]
    pages = gen.choice(n_pages, size=length, p=probs).astype(np.int64)
    writes = gen.random(length) < write_fraction
    return WBRequestSequence(pages, writes)


def hot_writer_stream(
    n_pages: int,
    length: int,
    *,
    hot_fraction: float = 0.1,
    hot_write_prob: float = 0.8,
    cold_write_prob: float = 0.02,
    alpha: float = 0.8,
    rng=None,
) -> WBRequestSequence:
    """A small set of "hot" pages attracts nearly all writes.

    Models an OLTP index: most pages are read-mostly while a hot fraction
    (e.g. the rightmost B-tree leaves) is write-heavy.  This is the shape
    where writeback-aware eviction pays off most: the policy should prefer
    evicting clean cold pages over dirty hot pages.
    """
    for name, v in [("hot_fraction", hot_fraction),
                    ("hot_write_prob", hot_write_prob),
                    ("cold_write_prob", cold_write_prob)]:
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {v}")
    gen = as_generator(rng)
    n_hot = max(1, int(round(hot_fraction * n_pages)))
    hot_pages = gen.choice(n_pages, size=n_hot, replace=False)
    is_hot = np.zeros(n_pages, dtype=bool)
    is_hot[hot_pages] = True

    probs = zipf_probabilities(n_pages, alpha)
    probs = probs[gen.permutation(n_pages)]
    pages = gen.choice(n_pages, size=length, p=probs).astype(np.int64)
    write_prob = np.where(is_hot[pages], hot_write_prob, cold_write_prob)
    writes = gen.random(length) < write_prob
    return WBRequestSequence(pages, writes)


def logging_stream(
    n_pages: int,
    length: int,
    *,
    log_pages: int = 4,
    log_interval: int = 8,
    alpha: float = 0.8,
    rng=None,
) -> WBRequestSequence:
    """Read-mostly traffic interleaved with round-robin log-page writes.

    Every ``log_interval``-th request writes the next page of a small
    circular log region; everything else is a Zipf read over the remaining
    pages.  Models WAL-style writers sharing a buffer pool with readers.
    """
    if not 1 <= log_pages < n_pages:
        raise ValueError(f"log_pages must be in [1, {n_pages}), got {log_pages}")
    if log_interval < 1:
        raise ValueError(f"log_interval must be >= 1, got {log_interval}")
    gen = as_generator(rng)
    data_pages = n_pages - log_pages
    probs = zipf_probabilities(data_pages, alpha)
    reads = gen.choice(data_pages, size=length, p=probs).astype(np.int64) + log_pages

    pages = reads
    writes = np.zeros(length, dtype=bool)
    log_slots = np.arange(0, length, log_interval)
    pages[log_slots] = (np.arange(log_slots.size, dtype=np.int64)) % log_pages
    writes[log_slots] = True
    return WBRequestSequence(pages, writes)
