"""Shared workload-generation utilities.

All generators take a ``rng`` argument accepting either a seed (int), a
:class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).  Passing the
same seed always reproduces the same stream; sweeps use
:class:`numpy.random.SeedSequence` spawning (see :mod:`repro.sim.seeding`)
so per-seed runs are independent yet reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "zipf_probabilities", "sample_weights"]


def as_generator(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed / generator / None into a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def zipf_probabilities(n: int, alpha: float) -> np.ndarray:
    """Zipf(alpha) probabilities over ``n`` items (rank 1 most popular).

    ``alpha = 0`` degenerates to the uniform distribution.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def sample_weights(
    n: int,
    rng: int | np.random.Generator | None = None,
    *,
    low: float = 1.0,
    high: float = 64.0,
    distribution: str = "loguniform",
) -> np.ndarray:
    """Sample per-page eviction weights in ``[low, high]``.

    ``loguniform`` (default) spreads pages across weight classes, which is
    what exercises the rounding algorithm's class structure; ``uniform``
    samples linearly; ``two_point`` picks ``low`` or ``high`` with equal
    probability (the classical two-weight caching model of Irani).
    """
    if low < 1.0:
        raise ValueError(f"weights must be >= 1, got low={low}")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    gen = as_generator(rng)
    if distribution == "loguniform":
        w = np.exp(gen.uniform(np.log(low), np.log(high), size=n))
    elif distribution == "uniform":
        w = gen.uniform(low, high, size=n)
    elif distribution == "two_point":
        w = np.where(gen.random(n) < 0.5, low, high).astype(np.float64)
    else:
        raise ValueError(f"unknown weight distribution {distribution!r}")
    return np.clip(w, low, high)
