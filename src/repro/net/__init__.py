"""repro.net — a TCP frontend for the paging service.

The network layer in four pieces:

* :mod:`repro.net.frame` — the wire protocol: length-prefixed, versioned
  frames carrying typed JSON messages, with a decoder that turns
  malformed input into error *events* instead of exceptions;
* :mod:`repro.net.admission` — the server's admission knobs (connection
  cap, per-connection in-flight window with oldest-first shedding,
  server-side request deadline);
* :mod:`repro.net.server` — :class:`NetServer`, an asyncio listener on a
  daemon thread bridging socket traffic onto a
  :class:`~repro.service.server.PagingService` without blocking its
  event loop on ticket completion;
* :mod:`repro.net.client` / :mod:`repro.net.loadgen` —
  :class:`PagingClient` (round-trip and pipelined submission with
  overload retry) and :func:`run_network_load`, the wire twin of the
  inline load generator.

The contract worth testing: a workload streamed through the server
produces per-shard ledgers and decision traces *byte-identical* to
submitting the same batches inline — the network is a transport, never
an observer effect.
"""

from repro.net.admission import AdmissionPolicy, ConnectionGate, InflightWindow
from repro.net.client import NetSubmitResult, PagingClient, RemoteError, parse_address
from repro.net.frame import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ClusterStatus,
    ClusterStatusReply,
    Drain,
    DrainReply,
    Error,
    FrameDecoder,
    Install,
    InstallReply,
    Migrate,
    MigrateReply,
    MoveShard,
    MoveShardReply,
    Ping,
    Pong,
    Snapshot,
    SnapshotReply,
    SubmitAck,
    SubmitBatch,
    encode,
    message_from_payload,
    message_to_payload,
)
from repro.net.loadgen import run_network_load
from repro.net.server import NetServer

__all__ = [
    "AdmissionPolicy",
    "ConnectionGate",
    "InflightWindow",
    "NetServer",
    "NetSubmitResult",
    "PagingClient",
    "RemoteError",
    "parse_address",
    "run_network_load",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "encode",
    "message_to_payload",
    "message_from_payload",
    "SubmitBatch",
    "SubmitAck",
    "Snapshot",
    "SnapshotReply",
    "Drain",
    "DrainReply",
    "Ping",
    "Pong",
    "Error",
    "Migrate",
    "MigrateReply",
    "Install",
    "InstallReply",
    "ClusterStatus",
    "ClusterStatusReply",
    "MoveShard",
    "MoveShardReply",
]
