"""Synchronous client for the :mod:`repro.net` wire protocol.

:class:`PagingClient` speaks the length-prefixed frame protocol over one
TCP connection, reused across calls.  Two submission styles:

* **round-trip** — :meth:`submit_batch` sends and waits for the matching
  :class:`~repro.net.frame.SubmitAck`, retrying ``overloaded`` answers
  with capped exponential backoff when ``on_overload="retry"`` (the same
  policy as the inline load generator);
* **pipelined** — :meth:`submit_nowait` queues a request id and
  :meth:`collect` / :meth:`collect_any` reap acks as they arrive, so one
  connection can keep ``window`` submits in flight.

Every reply is matched to its request by id; the server may interleave
responses across pipelined submits (acks arrive completion-order, not
send-order).  A typed :class:`~repro.net.frame.Error` reply raises
:class:`RemoteError` carrying the server's error code.  Socket-level
failures (reset, timeout) raise ``OSError`` / ``socket.timeout`` — the
client is deliberately transparent about transport loss: it never hides
a failure, but :meth:`reconnect` gives callers (the cluster proxy's
backend channels, chiefly) a one-call way to drop the dead socket and
its unmatched protocol state, then re-dial and resubmit.
"""

from __future__ import annotations

import base64
import socket
import time

from repro.errors import ReproError
from repro.net.frame import (
    DEFAULT_MAX_FRAME_BYTES,
    ClusterStatus,
    ClusterStatusReply,
    Drain,
    DrainReply,
    Error,
    FrameDecoder,
    FrameError,
    Install,
    InstallReply,
    Migrate,
    MigrateReply,
    MoveShard,
    MoveShardReply,
    Ping,
    Pong,
    Snapshot,
    SnapshotReply,
    SubmitAck,
    SubmitBatch,
    encode,
)

__all__ = ["PagingClient", "NetSubmitResult", "RemoteError", "parse_address"]

#: Backoff ceiling for overload retries, matching the inline load
#: generator's policy in :func:`repro.service.loadgen.run_load`.
_BACKOFF_CAP_S = 0.05


class RemoteError(ReproError, RuntimeError):
    """The server answered with a typed :class:`Error` frame."""

    def __init__(self, code: str, message: str, request_id: int = 0) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message
        self.request_id = request_id


class NetSubmitResult:
    """Outcome of one networked submit: the final ack plus client-side cost."""

    __slots__ = ("ack", "latency_s", "retries")

    def __init__(self, ack: SubmitAck, latency_s: float, retries: int = 0) -> None:
        self.ack = ack
        self.latency_s = latency_s
        self.retries = retries

    @property
    def status(self) -> str:
        return self.ack.status

    @property
    def ok(self) -> bool:
        """True when the batch was fully applied (``status == "ok"``)."""
        return self.ack.status == "ok"

    @property
    def accepted(self) -> bool:
        return self.ack.accepted

    @property
    def retryable(self) -> bool:
        return self.ack.retryable

    @property
    def n_requests(self) -> int:
        return self.ack.n_requests

    def __repr__(self) -> str:
        return (f"NetSubmitResult({self.ack.status}, n={self.ack.n_requests}, "
                f"latency={self.latency_s * 1e3:.3f}ms, retries={self.retries})")


def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` (or an already-split pair) -> ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be 'host:port', got {address!r}")
    return host, int(port)


class PagingClient:
    """One reusable connection to a :class:`~repro.net.NetServer`.

    The socket dials lazily on first use and survives across calls.
    Instances are not thread-safe: share work across threads by giving
    each its own client (the load generator does exactly that).
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        timeout: float = 10.0,
        retries: int = 3,
        retry_backoff: float = 0.002,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.max_frame_bytes = max_frame_bytes
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._next_id = 1
        #: Acks that arrived while waiting for a different id.
        self._pending: dict[int, SubmitAck] = {}
        #: Ids submitted via submit_nowait and not yet collected.
        self._inflight: dict[int, tuple[int, float]] = {}
        self.n_sent = 0
        self.n_received = 0

    # -- connection --------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> "PagingClient":
        """Dial the server (no-op when already connected)."""
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self

    def close(self) -> None:
        """Drop the connection and any unmatched protocol state."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        self._pending.clear()
        self._inflight.clear()

    def reconnect(self) -> "PagingClient":
        """Drop the (possibly dead) connection and dial again.

        Equivalent to :meth:`close` + :meth:`connect`: any half-decoded
        frames, unmatched acks and in-flight ids are discarded — a new
        socket is a new protocol stream, and replies to requests sent on
        the old one will never arrive.  Callers that pipelined submits
        must resubmit them; the cluster proxy does exactly that when a
        backend restarts under it.
        """
        self.close()
        return self.connect()

    def __enter__(self) -> "PagingClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire helpers ------------------------------------------------------
    def _alloc_id(self) -> int:
        rid = self._next_id
        self._next_id += 1
        return rid

    def _send(self, msg) -> None:
        self.connect()
        assert self._sock is not None
        self._sock.sendall(encode(msg, max_frame_bytes=self.max_frame_bytes))
        self.n_sent += 1

    def _recv_into_pending(self, deadline: float) -> None:
        """Read one chunk off the socket and file decoded acks by id."""
        assert self._sock is not None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise socket.timeout("timed out waiting for server reply")
        self._sock.settimeout(min(remaining, self.timeout))
        data = self._sock.recv(65536)
        if not data:
            raise ConnectionResetError("server closed the connection")
        for event in self._decoder.feed(data):
            if isinstance(event, FrameError):
                # The server never sends malformed frames; treat this as
                # transport corruption and surface it.
                raise RemoteError(event.code, str(event))
            self.n_received += 1
            if isinstance(event, Error):
                if event.id == 0:
                    # Connection-scoped error (e.g. too_many_connections).
                    raise RemoteError(event.code, event.message, 0)
                self._pending[event.id] = event
            else:
                self._pending[event.id] = event

    def _wait_for(self, request_id: int, timeout: float | None = None):
        """Block until the reply for ``request_id`` arrives."""
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.timeout)
        while request_id not in self._pending:
            self._recv_into_pending(deadline)
        reply = self._pending.pop(request_id)
        if isinstance(reply, Error):
            raise RemoteError(reply.code, reply.message, reply.id)
        return reply

    # -- control plane -----------------------------------------------------
    def ping(self) -> float:
        """Round-trip one Ping; returns the latency in seconds."""
        rid = self._alloc_id()
        started = time.monotonic()
        self._send(Ping(rid))
        reply = self._wait_for(rid)
        if not isinstance(reply, Pong):
            raise RemoteError("bad_request", f"expected Pong, got {reply.type}")
        return time.monotonic() - started

    def snapshot(self) -> dict:
        """Fetch the service's point-in-time snapshot as a plain dict."""
        rid = self._alloc_id()
        self._send(Snapshot(rid))
        reply = self._wait_for(rid)
        if not isinstance(reply, SnapshotReply):
            raise RemoteError("bad_request",
                              f"expected SnapshotReply, got {reply.type}")
        return reply.snapshot

    def drain(self, timeout: float | None = None) -> bool:
        """Ask the server to drain its service; True when fully drained."""
        rid = self._alloc_id()
        self._send(Drain(rid, timeout))
        wait = (timeout + self.timeout) if timeout is not None else None
        reply = self._wait_for(rid, timeout=wait)
        if not isinstance(reply, DrainReply):
            raise RemoteError("bad_request",
                              f"expected DrainReply, got {reply.type}")
        return reply.ok

    # -- cluster control plane ---------------------------------------------
    def migrate_shard(self, shard: int,
                      timeout: float | None = None) -> tuple[int, bytes]:
        """Capture ``shard`` on the server; returns ``(t, payload_bytes)``.

        The server quiesces the shard first, so only call this once the
        shard's traffic is held (the proxy's migration path does).
        """
        rid = self._alloc_id()
        self._send(Migrate(rid, int(shard), timeout))
        wait = (timeout + self.timeout) if timeout is not None else None
        reply = self._wait_for(rid, timeout=wait)
        if not isinstance(reply, MigrateReply):
            raise RemoteError("bad_request",
                              f"expected MigrateReply, got {reply.type}")
        return reply.t, base64.b64decode(reply.payload.encode("ascii"))

    def install_shard(self, shard: int, t: int, payload: bytes,
                      timeout: float | None = None) -> bool:
        """Install captured shard state on the server; True on success."""
        rid = self._alloc_id()
        self._send(Install(
            rid, int(shard), int(t),
            base64.b64encode(payload).decode("ascii"), timeout))
        wait = (timeout + self.timeout) if timeout is not None else None
        reply = self._wait_for(rid, timeout=wait)
        if not isinstance(reply, InstallReply):
            raise RemoteError("bad_request",
                              f"expected InstallReply, got {reply.type}")
        return reply.ok

    def cluster_status(self) -> dict:
        """Fetch a cluster proxy's routing map and counters."""
        rid = self._alloc_id()
        self._send(ClusterStatus(rid))
        reply = self._wait_for(rid)
        if not isinstance(reply, ClusterStatusReply):
            raise RemoteError("bad_request",
                              f"expected ClusterStatusReply, got {reply.type}")
        return reply.cluster

    def move_shard(self, shard: int, target: str,
                   timeout: float | None = 60.0) -> MoveShardReply:
        """Ask a cluster proxy to live-migrate ``shard`` to ``target``."""
        rid = self._alloc_id()
        self._send(MoveShard(rid, int(shard), str(target)))
        reply = self._wait_for(rid, timeout=timeout)
        if not isinstance(reply, MoveShardReply):
            raise RemoteError("bad_request",
                              f"expected MoveShardReply, got {reply.type}")
        return reply

    # -- submission --------------------------------------------------------
    def submit_batch(self, pages, levels=None, *,
                     on_overload: str = "retry",
                     trace=None) -> NetSubmitResult:
        """Submit one batch and wait for its final ack.

        ``on_overload="retry"`` resends an ``overloaded`` answer up to
        ``retries`` times with capped exponential backoff
        (``min(retry_backoff * 2**(attempt-1), 50ms)``); ``"shed"``
        returns the overloaded ack as-is after the first attempt.

        ``trace`` (a :class:`repro.obs.rtrace.TraceContext` or ``None``)
        rides in the version-2 frame's optional ``trace`` field; retries
        resend the same context, so the whole retry storm stitches into
        one waterfall.
        """
        if on_overload not in ("retry", "shed"):
            raise ValueError(
                f"on_overload must be 'retry' or 'shed', got {on_overload!r}")
        pages_t = tuple(int(p) for p in pages)
        levels_t = (tuple(int(v) for v in levels)
                    if levels is not None else ())
        wire_trace = trace.to_wire() if trace is not None else None
        started = time.monotonic()
        attempt = 0
        while True:
            rid = self._alloc_id()
            self._send(SubmitBatch(rid, pages_t, levels_t, trace=wire_trace))
            ack = self._wait_for(rid)
            if not isinstance(ack, SubmitAck):
                raise RemoteError("bad_request",
                                  f"expected SubmitAck, got {ack.type}")
            if (ack.retryable and on_overload == "retry"
                    and attempt < self.retries):
                attempt += 1
                time.sleep(min(self.retry_backoff * 2 ** (attempt - 1),
                               _BACKOFF_CAP_S))
                continue
            return NetSubmitResult(ack, time.monotonic() - started, attempt)

    def submit_nowait(self, pages, levels=None, *, trace=None) -> int:
        """Send a batch without waiting; returns its request id.

        ``trace`` propagates exactly as in :meth:`submit_batch`.
        """
        rid = self._alloc_id()
        self._send(SubmitBatch(
            rid,
            tuple(int(p) for p in pages),
            tuple(int(v) for v in levels) if levels is not None else (),
            trace=trace.to_wire() if trace is not None else None,
        ))
        self._inflight[rid] = (len(pages), time.monotonic())
        return rid

    @property
    def inflight(self) -> int:
        """Submits sent via :meth:`submit_nowait` and not yet collected."""
        return len(self._inflight)

    def collect(self, request_id: int,
                timeout: float | None = None) -> NetSubmitResult:
        """Wait for the ack of one pipelined submit."""
        if request_id not in self._inflight:
            raise KeyError(f"request id {request_id} is not in flight")
        _, sent_at = self._inflight[request_id]
        try:
            ack = self._wait_for(request_id, timeout=timeout)
        finally:
            self._inflight.pop(request_id, None)
        if not isinstance(ack, SubmitAck):
            raise RemoteError("bad_request",
                              f"expected SubmitAck, got {ack.type}")
        return NetSubmitResult(ack, time.monotonic() - sent_at)

    def collect_any(self, timeout: float | None = None) -> tuple[int, NetSubmitResult]:
        """Wait for whichever pipelined submit resolves first.

        Returns ``(request_id, result)`` for the oldest in-flight id whose
        ack has arrived (responses may complete out of send order).
        """
        if not self._inflight:
            raise RuntimeError("no submits in flight")
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.timeout)
        while True:
            for rid in self._inflight:
                if rid in self._pending:
                    return rid, self.collect(rid, timeout=0.001)
            self._recv_into_pending(deadline)

    def __repr__(self) -> str:
        state = "connected" if self.connected else "idle"
        return (f"PagingClient({self.host}:{self.port}, {state}, "
                f"inflight={len(self._inflight)})")
