"""Networked load generation: drive a remote server with N connections.

:func:`run_network_load` is the wire twin of
:func:`repro.service.loadgen.run_load`: it replays the same request
sequence under the same open-loop pacing (batch ``i`` due at ``start +
i·B/rate``, globally — all connections share one clock) and produces the
same :class:`~repro.service.loadgen.LoadReport`, so networked and inline
numbers sit side by side in one table.

Concurrency model: one thread per connection, each owning one
:class:`~repro.net.PagingClient` (clients are not thread-safe; threads
never share one).  Batches are dealt round-robin by global batch index,
which keeps the pacing clock honest — connection ``c`` handles batches
``c, c+C, c+2C, …`` and sleeps until each batch's *global* due time.

``window`` controls per-connection pipelining: 1 means strict
round-trips (submit, wait, next); larger values use
``submit_nowait``/``collect_any`` to keep up to ``window`` submits in
flight, reaping completions only when the window is full or the stream
ends.  Overloaded acks honor ``on_overload`` exactly like the inline
generator: ``"retry"`` resubmits with capped backoff (round-trip mode)
or immediate resubmission (pipelined mode, where the window itself is
the backoff), ``"shed"`` drops and counts.
"""

from __future__ import annotations

import threading
from pathlib import Path
from time import perf_counter, sleep

from repro.core.requests import RequestSequence
from repro.net.client import NetSubmitResult, PagingClient
from repro.obs.rtrace import RequestSampler, SpanExporter
from repro.service.loadgen import LoadReport, summarize_latencies
from repro.service.profiles import RateProfile

__all__ = ["run_network_load"]


class _ConnStats:
    """Accounting gathered by one connection thread."""

    __slots__ = ("latencies", "n_served", "n_batches", "n_overloaded",
                 "n_dropped", "n_failed", "error")

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.n_served = 0
        self.n_batches = 0
        self.n_overloaded = 0
        self.n_dropped = 0
        self.n_failed = 0
        self.error: BaseException | None = None

    def absorb(self, result: NetSubmitResult) -> None:
        """Fold one final ack into the tallies."""
        self.n_overloaded += result.retries
        if result.ok:
            self.n_batches += 1
            self.n_served += result.n_requests
            self.latencies.append(result.latency_s)
        elif result.status == "failed":
            self.n_batches += 1
            self.n_failed += 1
        else:  # overloaded (retries exhausted), shed, deadline
            if result.status == "overloaded":
                self.n_overloaded += 1
            self.n_dropped += 1


def _drive_connection(
    address: str,
    batches: list[tuple[float, int, object, object]],
    stats: _ConnStats,
    *,
    window: int,
    timeout: float,
    max_retries: int,
    retry_backoff: float,
    on_overload: str,
    started: float,
    sampler: RequestSampler | None = None,
    exporter: SpanExporter | None = None,
) -> None:
    """Thread body: replay this connection's slice of the batch stream.

    When ``sampler`` is set, every batch carries a trace context derived
    from its *global* batch index ``t`` (so the sampled set is a pure
    function of ``(trace_seed, t)``, independent of connection count);
    the ``client:submit`` span is exported once the final ack lands,
    with the round-trip latency as its duration.
    """
    try:
        client = PagingClient(address, timeout=timeout, retries=max_retries,
                              retry_backoff=retry_backoff)

        def ctx_for(t):
            return sampler.context(t) if sampler is not None else None

        def export(ctx, t, n, result) -> None:
            if exporter is not None and ctx is not None:
                exporter.emit(
                    ctx, "submit", tier="client", t=t,
                    attrs={"n_requests": n, "status": result.status},
                    dur=result.latency_s)

        with client:
            if window <= 1:
                for due, t, pages, levels in batches:
                    now = perf_counter()
                    if now < started + due:
                        sleep(started + due - now)
                    ctx = ctx_for(t)
                    result = client.submit_batch(
                        pages, levels, on_overload=on_overload,
                        trace=ctx.child("submit") if ctx is not None else None)
                    stats.absorb(result)
                    export(ctx, t, len(pages), result)
                return
            # Pipelined: keep up to ``window`` submits in flight; an
            # overloaded ack is resubmitted immediately (the open window
            # already provides the pushback a sleep would).
            budgets: dict[int, tuple[object, object, int, int, object]] = {}
            it = iter(batches)

            def reap() -> None:
                rid, result = client.collect_any()
                pages, levels, attempts, t, ctx = budgets.pop(rid)
                if (result.retryable and on_overload == "retry"
                        and attempts < max_retries):
                    stats.n_overloaded += 1
                    nrid = client.submit_nowait(
                        pages, levels,
                        trace=ctx.child("submit") if ctx is not None else None)
                    budgets[nrid] = (pages, levels, attempts + 1, t, ctx)
                else:
                    stats.absorb(result)
                    export(ctx, t, len(pages), result)

            for due, t, pages, levels in it:
                now = perf_counter()
                if now < started + due:
                    sleep(started + due - now)
                while client.inflight >= window:
                    reap()
                ctx = ctx_for(t)
                rid = client.submit_nowait(
                    pages, levels,
                    trace=ctx.child("submit") if ctx is not None else None)
                budgets[rid] = (pages, levels, 0, t, ctx)
            while client.inflight:
                reap()
    except BaseException as exc:  # noqa: BLE001 - reported via the stats
        stats.error = exc


def run_network_load(
    address: str | tuple[str, int],
    seq: RequestSequence,
    *,
    rate: float = 100_000.0,
    batch_size: int = 256,
    connections: int = 1,
    window: int = 1,
    timeout: float = 10.0,
    max_retries: int = 3,
    retry_backoff: float = 0.001,
    on_overload: str = "retry",
    drain_timeout: float | None = 30.0,
    trace_sample: float = 0.0,
    trace_seed: int = 0,
    span_dir: str | Path | None = None,
    profile: RateProfile | None = None,
) -> LoadReport:
    """Replay ``seq`` against a remote server at ``rate`` requests/second.

    Opens ``connections`` sockets, deals batches round-robin across them,
    and reports the merged :class:`LoadReport`.  A connection thread that
    dies (transport failure) re-raises after the others finish — partial
    accounting is never silently reported as a healthy run.  The service
    is drained through the wire before reporting, so a subsequent
    snapshot covers every accepted request.

    ``span_dir`` switches on request tracing: every batch carries a
    trace context keyed by its global batch index, sampled at
    ``trace_sample`` under ``trace_seed`` (the deterministic tracing
    sampler), and ``client.spans.jsonl`` in that directory records one
    ``client:submit`` span per sampled batch.  ``span_dir`` with
    ``trace_sample=0.0`` still *propagates* contexts on the wire without
    recording any.  ``profile`` swaps the flat pacing for a
    :class:`~repro.service.profiles.RateProfile`'s due offsets, exactly
    as in the inline generator — the configuration the trace-overhead benchmark
    measures.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if on_overload not in ("retry", "shed"):
        raise ValueError(
            f"on_overload must be 'retry' or 'shed', got {on_overload!r}")
    if not 0.0 <= trace_sample <= 1.0:
        raise ValueError(
            f"trace_sample must be in [0, 1], got {trace_sample}")
    pages, levels = seq.pages, seq.levels
    n = len(seq)
    target = float(rate)
    offsets = None
    if profile is not None:
        offsets = profile.due_offsets(-(-n // batch_size), batch_size)
        target = profile.mean_rate(n, batch_size)
    # Deal batches round-robin by global index; each keeps its *global*
    # open-loop due offset so C connections still offer ``rate`` req/s,
    # and its global index ``i`` doubles as the tracing sampler's clock.
    slices: list[list[tuple[float, int, object, object]]] = [
        [] for _ in range(connections)
    ]
    for i, lo in enumerate(range(0, n, batch_size)):
        slices[i % connections].append(
            (lo / rate if offsets is None else float(offsets[i]), i,
             pages[lo:lo + batch_size], levels[lo:lo + batch_size])
        )
    sampler: RequestSampler | None = None
    exporter: SpanExporter | None = None
    if span_dir is not None:
        directory = Path(span_dir)
        directory.mkdir(parents=True, exist_ok=True)
        sampler = RequestSampler(seed=trace_seed, sample=trace_sample)
        exporter = SpanExporter(directory / "client.spans.jsonl", wall=True)
    stats = [_ConnStats() for _ in range(connections)]
    addr = parse_host(address)
    started = perf_counter()
    threads = [
        threading.Thread(
            target=_drive_connection,
            args=(addr, slices[c], stats[c]),
            kwargs=dict(window=window, timeout=timeout,
                        max_retries=0 if on_overload == "shed" else max_retries,
                        retry_backoff=retry_backoff, on_overload=on_overload,
                        started=started, sampler=sampler, exporter=exporter),
            name=f"repro-netload-{c}",
            daemon=True,
        )
        for c in range(connections)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        if exporter is not None:
            exporter.close()
    for s in stats:
        if s.error is not None:
            raise s.error
    # Drain over a fresh control connection so the post-run snapshot
    # covers every accepted batch, mirroring the inline generator.
    with PagingClient(address, timeout=max(timeout, drain_timeout or timeout)) as ctl:
        ctl.drain(drain_timeout)
    duration = perf_counter() - started
    latencies = [v for s in stats for v in s.latencies]
    n_served = sum(s.n_served for s in stats)
    n_batches = sum(s.n_batches for s in stats)
    p50, p95, p99 = summarize_latencies(latencies)
    return LoadReport(
        target_rate=target,
        achieved_rate=n_served / duration if duration > 0 else 0.0,
        duration_s=duration,
        n_requests=n,
        n_served=n_served,
        n_batches=n_batches,
        n_overloaded=sum(s.n_overloaded for s in stats),
        n_dropped_batches=sum(s.n_dropped for s in stats),
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        n_failed_batches=sum(s.n_failed for s in stats),
        rejected_all=n_batches == 0,
    )


def parse_host(address: str | tuple[str, int]) -> str:
    """Normalize an address to the ``host:port`` string clients accept."""
    if isinstance(address, tuple):
        return f"{address[0]}:{address[1]}"
    return address
