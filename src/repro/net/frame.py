"""Length-prefixed binary framing with typed JSON payloads.

One frame on the wire is::

    +----------------+---------+------------------------+
    | payload length | version |     JSON payload       |
    |   uint32 (BE)  |  uint8  |  {"type": ..., ...}    |
    +----------------+---------+------------------------+

The 5-byte header carries the payload length and the protocol version;
the payload is one JSON object whose ``type`` field selects a typed
message dataclass.  Requests carry a client-chosen ``id`` that the
matching response echoes, so responses may arrive out of order
(pipelining) and still be matched.

Decoding is *stream-safe by construction*: :class:`FrameDecoder.feed`
never raises.  Truncated input simply waits for more bytes; an oversized
length prefix, an unknown version, or garbage JSON each yield a typed
:class:`~repro.errors.FrameError` *event* in the returned list, and the
decoder skips the bad frame's announced payload so a compliant peer stays
in sync.  Servers map these events to :class:`Error` responses instead of
killing the connection.

Message catalog
---------------
Requests: :class:`SubmitBatch`, :class:`Snapshot`, :class:`Drain`,
:class:`Ping`.  Responses: :class:`SubmitAck` (whose ``status`` maps the
service's :class:`~repro.service.ingest.Overloaded` /
:class:`~repro.service.ingest.Failed` / shed / deadline outcomes onto the
wire), :class:`SnapshotReply`, :class:`DrainReply`, :class:`Pong`, and
:class:`Error` for protocol-level failures.

Cluster extensions (PR 6): backends additionally answer
:class:`Migrate` / :class:`Install` (shard checkpoint handoff, payload
base64-encoded to ride in JSON), and a cluster proxy answers
:class:`ClusterStatus` / :class:`MoveShard` on the same protocol —
one frame codec serves single-node and cluster deployments alike.
"""

from __future__ import annotations

import json
import struct
from dataclasses import MISSING as DC_MISSING
from dataclasses import dataclass, field, fields
from typing import ClassVar

from repro.errors import FrameError, FrameTooLargeError, ProtocolVersionError

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "STATUSES",
    "SubmitBatch",
    "SubmitAck",
    "Snapshot",
    "SnapshotReply",
    "Drain",
    "DrainReply",
    "Ping",
    "Pong",
    "Error",
    "Migrate",
    "MigrateReply",
    "Install",
    "InstallReply",
    "ClusterStatus",
    "ClusterStatusReply",
    "MoveShard",
    "MoveShardReply",
    "MESSAGE_TYPES",
    "encode",
    "message_to_payload",
    "message_from_payload",
    "FrameDecoder",
]

#: Current wire protocol version, carried in every frame header.
#: Version 2 (PR 7) added the optional ``trace`` field on
#: :class:`SubmitBatch`; the payload schema is otherwise unchanged, so
#: both versions stay accepted (see :data:`SUPPORTED_VERSIONS`) and a v1
#: peer simply never sees or sends trace contexts — unknown payload keys
#: are ignored by :func:`message_from_payload` by design.
PROTOCOL_VERSION = 2

#: Frame header versions this peer decodes.
SUPPORTED_VERSIONS = frozenset({1, 2})

_HEADER = struct.Struct(">IB")  # payload length, protocol version
HEADER_SIZE = _HEADER.size

#: Default cap on a single frame's payload (8 MiB — a 512-request batch
#: is a few KiB, so this is generous headroom, not a tight budget).
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Terminal states a submit can resolve to, as reported in
#: :attr:`SubmitAck.status`.
#:
#: * ``ok`` — every shard served its slice.
#: * ``overloaded`` — the service's bounded queues rejected the batch;
#:   transient, resubmit later (maps :class:`~repro.service.ingest.Overloaded`).
#: * ``failed`` — a target shard is permanently down (maps
#:   :class:`~repro.service.ingest.Failed` or a failed ticket).
#: * ``shed`` — the server's per-connection in-flight window overflowed
#:   and this (oldest) request's response slot was given away.
#: * ``deadline`` — the server-side deadline expired before the batch
#:   resolved; its fate is unknown to the client.
STATUSES = ("ok", "overloaded", "failed", "shed", "deadline")

MESSAGE_TYPES: dict[str, type] = {}


def _register(cls: type) -> type:
    MESSAGE_TYPES[cls.type] = cls
    return cls


def _int_tuple(values) -> tuple[int, ...]:
    try:
        return tuple(int(v) for v in values)
    except (TypeError, ValueError) as exc:
        raise FrameError(f"expected a sequence of integers: {exc}") from exc


@_register
@dataclass(frozen=True)
class SubmitBatch:
    """Submit one micro-batch; ``levels`` empty means all-ones."""

    type: ClassVar[str] = "submit"
    id: int
    pages: tuple[int, ...]
    levels: tuple[int, ...] = ()
    #: Optional request-trace context, ``(trace_hex, span_hex, sampled)``
    #: — see :class:`repro.obs.rtrace.TraceContext`.  ``None`` (the v1
    #: shape) means untraced.
    trace: tuple | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pages", _int_tuple(self.pages))
        object.__setattr__(self, "levels", _int_tuple(self.levels))
        if self.trace is not None:
            object.__setattr__(self, "trace", tuple(self.trace))


@_register
@dataclass(frozen=True)
class SubmitAck:
    """Terminal response for one :class:`SubmitBatch` (see :data:`STATUSES`)."""

    type: ClassVar[str] = "submit_ack"
    id: int
    status: str
    n_requests: int = 0
    shard: int = -1
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise FrameError(
                f"unknown submit status {self.status!r}; expected one of {STATUSES}"
            )

    @property
    def accepted(self) -> bool:
        """True when the batch was fully served (mirrors ticket ``ok``)."""
        return self.status == "ok"

    @property
    def retryable(self) -> bool:
        """True when resubmitting the same batch may succeed later."""
        return self.status == "overloaded"


@_register
@dataclass(frozen=True)
class Snapshot:
    """Request a point-in-time service snapshot."""

    type: ClassVar[str] = "snapshot"
    id: int


@_register
@dataclass(frozen=True)
class SnapshotReply:
    """The :meth:`~repro.service.metrics.ServiceSnapshot.to_dict` payload."""

    type: ClassVar[str] = "snapshot_reply"
    id: int
    snapshot: dict = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class Drain:
    """Block until all accepted work is served (``timeout`` seconds cap)."""

    type: ClassVar[str] = "drain"
    id: int
    timeout: float | None = None


@_register
@dataclass(frozen=True)
class DrainReply:
    """``ok`` is False when the drain timed out with work in flight."""

    type: ClassVar[str] = "drain_reply"
    id: int
    ok: bool = True


@_register
@dataclass(frozen=True)
class Ping:
    """Liveness/RTT probe."""

    type: ClassVar[str] = "ping"
    id: int


@_register
@dataclass(frozen=True)
class Pong:
    """Answer to :class:`Ping`."""

    type: ClassVar[str] = "pong"
    id: int


@_register
@dataclass(frozen=True)
class Migrate:
    """Quiesce ``shard`` and return its checkpoint (cluster handoff step 1).

    Answered by a backend ``repro serve`` instance: the shard is captured
    only once it is idle (no queued or in-flight batches touch it), so the
    caller must have stopped routing the shard's traffic first — the
    cluster proxy holds the shard before sending this.
    """

    type: ClassVar[str] = "migrate"
    id: int
    shard: int
    timeout: float | None = None


@_register
@dataclass(frozen=True)
class MigrateReply:
    """The captured shard state: logical clock ``t`` + base64 payload."""

    type: ClassVar[str] = "migrate_reply"
    id: int
    shard: int
    t: int = 0
    payload: str = ""


@_register
@dataclass(frozen=True)
class Install:
    """Install a shipped checkpoint into ``shard`` (cluster handoff step 2).

    ``payload`` is the base64 pickled state from a :class:`MigrateReply`.
    Trace marks never cross the wire — they are file positions on the
    source host — so the new owner's trace continues from its own clock.
    """

    type: ClassVar[str] = "install"
    id: int
    shard: int
    t: int = 0
    payload: str = ""
    timeout: float | None = None


@_register
@dataclass(frozen=True)
class InstallReply:
    """``ok`` is False when the install was rejected (see ``detail``)."""

    type: ClassVar[str] = "install_reply"
    id: int
    shard: int
    ok: bool = True
    detail: str = ""


@_register
@dataclass(frozen=True)
class ClusterStatus:
    """Ask a cluster proxy for its routing state (answered with the map)."""

    type: ClassVar[str] = "cluster_status"
    id: int


@_register
@dataclass(frozen=True)
class ClusterStatusReply:
    """The proxy's :meth:`~repro.cluster.ClusterMap.to_dict` plus counters."""

    type: ClassVar[str] = "cluster_status_reply"
    id: int
    cluster: dict = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class MoveShard:
    """Ask a cluster proxy to live-migrate ``shard`` to backend ``target``."""

    type: ClassVar[str] = "move_shard"
    id: int
    shard: int
    target: str


@_register
@dataclass(frozen=True)
class MoveShardReply:
    """Outcome of one migration: the epoch the routing flip landed in."""

    type: ClassVar[str] = "move_shard_reply"
    id: int
    shard: int
    ok: bool = True
    source: str = ""
    target: str = ""
    epoch: int = 0
    detail: str = ""


@_register
@dataclass(frozen=True)
class Error:
    """Protocol-level failure for request ``id`` (0 = connection-level).

    ``code`` is stable and machine-checkable: ``decode``,
    ``frame_too_large``, ``bad_version``, ``bad_request``,
    ``too_many_connections``, ``unavailable``, or ``internal``.
    """

    type: ClassVar[str] = "error"
    id: int
    code: str = "internal"
    message: str = ""


def _jsonify(value):
    if isinstance(value, tuple):
        return list(value)
    return value


def message_to_payload(msg) -> dict:
    """The JSON-ready payload dict for one typed message."""
    payload = {"type": msg.type}
    for f in fields(msg):
        payload[f.name] = _jsonify(getattr(msg, f.name))
    return payload


def _is_int(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


_FIELD_CHECKS = {
    "id": ("an integer", _is_int),
    "n_requests": ("an integer", _is_int),
    "shard": ("an integer", _is_int),
    "pages": ("a list of integers", lambda v: isinstance(v, (list, tuple))),
    "levels": ("a list of integers", lambda v: isinstance(v, (list, tuple))),
    "status": ("a string", lambda v: isinstance(v, str)),
    "detail": ("a string", lambda v: isinstance(v, str)),
    "code": ("a string", lambda v: isinstance(v, str)),
    "message": ("a string", lambda v: isinstance(v, str)),
    "snapshot": ("an object", lambda v: isinstance(v, dict)),
    "ok": ("a boolean", lambda v: isinstance(v, bool)),
    "timeout": ("a number or null",
                lambda v: v is None or (isinstance(v, (int, float))
                                        and not isinstance(v, bool))),
    "t": ("an integer", _is_int),
    "epoch": ("an integer", _is_int),
    "payload": ("a string", lambda v: isinstance(v, str)),
    "source": ("a string", lambda v: isinstance(v, str)),
    "target": ("a string", lambda v: isinstance(v, str)),
    "cluster": ("an object", lambda v: isinstance(v, dict)),
    "trace": ("null or [trace, span, sampled]",
              lambda v: v is None or (
                  isinstance(v, (list, tuple)) and len(v) == 3
                  and isinstance(v[0], str) and isinstance(v[1], str)
                  and isinstance(v[2], (bool, int)))),
}

_MISSING = object()


def message_from_payload(payload) -> object:
    """Build the typed message for one decoded JSON payload.

    Every malformed shape — not a dict, unknown ``type``, missing or
    mistyped fields — raises :class:`~repro.errors.FrameError`, never
    anything else.
    """
    if not isinstance(payload, dict):
        raise FrameError(f"frame payload must be an object, got {type(payload).__name__}")
    mtype = payload.get("type")
    cls = MESSAGE_TYPES.get(mtype)
    if cls is None:
        raise FrameError(f"unknown message type {mtype!r}")
    kwargs = {}
    for f in fields(cls):
        value = payload.get(f.name, _MISSING)
        if value is _MISSING:
            # Required fields are exactly those without a default.
            if f.default is DC_MISSING and f.default_factory is DC_MISSING:
                raise FrameError(f"{cls.type} frame is missing field {f.name!r}")
            continue
        expected, check = _FIELD_CHECKS[f.name]
        if not check(value):
            raise FrameError(
                f"{cls.type} field {f.name!r} must be {expected}, "
                f"got {type(value).__name__}"
            )
        if f.name == "timeout" and value is not None:
            value = float(value)
        kwargs[f.name] = value
    try:
        return cls(**kwargs)
    except FrameError:
        raise
    except (TypeError, ValueError) as exc:
        raise FrameError(f"bad {cls.type} frame: {exc}") from exc


def encode(msg, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """One wire frame for ``msg``; raises if it exceeds ``max_frame_bytes``.

    The header version is negotiated per message: frames that carry a
    trace context need the v2 envelope, everything else is emitted as v1
    (with the ``trace`` key elided) so trace-free traffic stays byte-
    and version-compatible with pre-PR-7 peers.
    """
    payload_dict = message_to_payload(msg)
    version = 1
    if payload_dict.get("trace") is not None:
        version = PROTOCOL_VERSION
    elif "trace" in payload_dict:
        del payload_dict["trace"]
    payload = json.dumps(
        payload_dict, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"{msg.type} frame payload is {len(payload)} bytes, "
            f"over the {max_frame_bytes}-byte cap"
        )
    return _HEADER.pack(len(payload), version) + payload


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    :meth:`feed` returns a list of *events*: decoded messages interleaved
    with :class:`~repro.errors.FrameError` instances for frames that were
    rejected (oversized, wrong version, undecodable payload).  It never
    raises — the caller decides whether an error event is fatal (clients)
    or answered with a typed :class:`Error` response (servers).  After a
    rejected header the decoder discards that frame's announced payload,
    so a stream from a compliant-but-unlucky peer re-synchronizes at the
    next frame boundary.
    """

    __slots__ = ("max_frame_bytes", "n_frames", "n_errors", "_buf", "_skip")

    def __init__(self, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError(f"max_frame_bytes must be >= 1, got {max_frame_bytes}")
        self.max_frame_bytes = max_frame_bytes
        #: Frames decoded into messages / frames rejected, over the lifetime.
        self.n_frames = 0
        self.n_errors = 0
        self._buf = bytearray()
        self._skip = 0

    def __len__(self) -> int:
        """Bytes currently buffered awaiting a complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list:
        """Consume ``data``; return decoded messages and error events."""
        self._buf += data
        events: list = []
        while True:
            if self._skip:
                taken = min(self._skip, len(self._buf))
                del self._buf[:taken]
                self._skip -= taken
                if self._skip:
                    break
            if len(self._buf) < HEADER_SIZE:
                break
            length, version = _HEADER.unpack_from(self._buf)
            if version not in SUPPORTED_VERSIONS:
                events.append(ProtocolVersionError(
                    f"unsupported protocol version {version} "
                    f"(this peer speaks {sorted(SUPPORTED_VERSIONS)})"
                ))
                self.n_errors += 1
                del self._buf[:HEADER_SIZE]
                self._skip = length
                continue
            if length > self.max_frame_bytes:
                events.append(FrameTooLargeError(
                    f"frame announces a {length}-byte payload, over the "
                    f"{self.max_frame_bytes}-byte cap"
                ))
                self.n_errors += 1
                del self._buf[:HEADER_SIZE]
                self._skip = length
                continue
            if len(self._buf) < HEADER_SIZE + length:
                break
            payload = bytes(self._buf[HEADER_SIZE:HEADER_SIZE + length])
            del self._buf[:HEADER_SIZE + length]
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                events.append(FrameError(f"undecodable frame payload: {exc}"))
                self.n_errors += 1
                continue
            try:
                events.append(message_from_payload(decoded))
                self.n_frames += 1
            except FrameError as exc:
                events.append(exc)
                self.n_errors += 1
        return events
