"""Admission control for the network frontend.

Three knobs, enforced in this order on every connection:

1. **Connection cap** (:class:`ConnectionGate`) — a socket past
   ``max_connections`` is answered with a ``too_many_connections`` error
   and closed before any request is read.
2. **Per-connection in-flight window** (:class:`InflightWindow`) — each
   connection may have at most ``max_inflight`` submits awaiting a
   response.  A submit past the cap does not stall the reader: the
   *oldest* outstanding request is shed (answered ``shed`` immediately)
   and the fresh one admitted — under overload the server prefers
   answering recent traffic over queueing stale responses.
3. **Request deadline** — every admitted submit carries a server-side
   deadline; a batch that has not resolved by then is answered
   ``deadline`` and counted, so a stalled shard cannot pin response
   slots forever.

All of this is event-loop-local state: methods are called from the
server's single asyncio thread, so there is no locking.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ServiceConfigError
from repro.net.frame import DEFAULT_MAX_FRAME_BYTES

__all__ = ["AdmissionPolicy", "ConnectionGate", "InflightWindow"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """The server's admission knobs, validated once at construction."""

    max_connections: int = 64
    max_inflight: int = 32
    request_deadline_s: float = 30.0
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ServiceConfigError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.max_inflight < 1:
            raise ServiceConfigError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.request_deadline_s <= 0:
            raise ServiceConfigError(
                f"request_deadline_s must be > 0, got {self.request_deadline_s}"
            )
        if self.max_frame_bytes < 1:
            raise ServiceConfigError(
                f"max_frame_bytes must be >= 1, got {self.max_frame_bytes}"
            )


class ConnectionGate:
    """Counts live connections against a fixed cap."""

    __slots__ = ("max_connections", "active", "n_rejected")

    def __init__(self, max_connections: int) -> None:
        self.max_connections = max_connections
        self.active = 0
        self.n_rejected = 0

    def try_acquire(self) -> bool:
        """Claim a connection slot; False (and counted) when full."""
        if self.active >= self.max_connections:
            self.n_rejected += 1
            return False
        self.active += 1
        return True

    def release(self) -> None:
        """Return a slot claimed by :meth:`try_acquire`."""
        self.active -= 1


class InflightWindow:
    """One connection's outstanding submits, oldest first.

    ``admit`` inserts a new entry and, when the window is already at its
    cap, evicts and returns the oldest unresolved entry — the victim the
    server answers ``shed``.  Entries resolve out of order (pipelined
    responses), so the window is an ordered map, not a ring.
    """

    __slots__ = ("cap", "_entries")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self._entries: OrderedDict[int, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def admit(self, request_id: int, entry: object) -> object | None:
        """Track ``entry``; returns the shed victim when over the cap."""
        victim = None
        if len(self._entries) >= self.cap:
            _, victim = self._entries.popitem(last=False)
        self._entries[request_id] = entry
        return victim

    def resolve(self, request_id: int) -> None:
        """Drop a completed (or shed) request from the window."""
        self._entries.pop(request_id, None)

    def drain(self) -> list:
        """Remove and return every outstanding entry (connection teardown)."""
        entries = list(self._entries.values())
        self._entries.clear()
        return entries
