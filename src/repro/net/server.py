"""Asyncio TCP frontend for a :class:`~repro.service.server.PagingService`.

:class:`NetServer` owns a listening socket and an event loop on a
dedicated daemon thread (the same lifecycle shape as
:class:`~repro.obs.MetricsServer`): ``start()`` binds and returns once the
port is known, ``stop()`` closes the *listener first* and then tears down
live connections, so a graceful shutdown can drain the backing service
with no new work arriving.

Request flow per connection (all on the event loop)::

    bytes -> FrameDecoder -> admission -> service.submit_batch -> ticket
                                                            |
         SubmitAck <- deadline-bounded await <- done-callback bridge

The service's :class:`~repro.service.ingest.BatchTicket` resolves on a
shard worker thread; :meth:`BatchTicket.add_done_callback` bridges that
completion into the loop via ``call_soon_threadsafe`` — the event loop
never blocks in ``ticket.wait``.  Slow batches are bounded by a
server-side deadline (answered ``deadline``), bursts beyond the
per-connection window shed the oldest response slot (answered ``shed``),
and the service's own :class:`~repro.service.ingest.Overloaded` /
:class:`~repro.service.ingest.Failed` rejections map onto ``SubmitAck``
statuses — the client always gets a typed answer, never a hang.

Chaos coverage extends to the socket path: an optional
:class:`~repro.faults.FaultPlan` is polled per connection (``shard`` =
connection index, logical time = submits seen on that connection);
``delay`` sleeps before processing, ``drop`` swallows the request
(client-visible as a timeout), ``kill`` closes the connection abruptly.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import (
    FrameError,
    InvalidInstanceError,
    InvalidRequestError,
    ServiceStateError,
)
from repro.net.admission import AdmissionPolicy, ConnectionGate, InflightWindow
from repro.faults.checkpoint import ShardCheckpoint
from repro.net.frame import (
    Drain,
    DrainReply,
    Error,
    FrameDecoder,
    Install,
    InstallReply,
    Migrate,
    MigrateReply,
    Ping,
    Pong,
    Snapshot,
    SnapshotReply,
    SubmitAck,
    SubmitBatch,
    encode,
)
from repro.obs.rtrace import SpanExporter, TraceContext
from repro.service.ingest import BatchTicket, Failed, Overloaded
from repro.service.server import PagingService

__all__ = ["NetServer"]


class _Request:
    """One outstanding submit on one connection."""

    __slots__ = ("id", "n_requests", "started", "responded", "trace", "t")

    def __init__(self, request_id: int, n_requests: int, started: float,
                 trace: TraceContext | None = None, t: int = 0) -> None:
        self.id = request_id
        self.n_requests = n_requests
        self.started = started
        #: Exactly one SubmitAck per request id: set when any path (shed,
        #: deadline, completion) claims the response slot.
        self.responded = False
        #: Trace context carried in the submit frame (None when untraced).
        self.trace = trace
        #: Connection-local submit index, the ack span's logical time.
        self.t = t


class _Connection:
    """Per-connection state owned by the event loop."""

    __slots__ = ("id", "writer", "window", "write_lock", "n_submits", "open")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter,
                 window: InflightWindow) -> None:
        self.id = conn_id
        self.writer = writer
        self.window = window
        self.write_lock = asyncio.Lock()
        #: Logical clock for net-level fault injection: submits seen.
        self.n_submits = 0
        self.open = True


class NetServer:
    """Serves the wire protocol for one backing :class:`PagingService`.

    The server does not own the service's lifecycle: start the service
    (threaded mode) before accepting traffic and stop it after
    :meth:`stop` — with an inline service every submit is served on the
    event loop thread, which works but serializes connections.
    """

    def __init__(
        self,
        service: PagingService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: AdmissionPolicy | None = None,
        fault_plan=None,
        registry=None,
        span_exporter: SpanExporter | None = None,
    ) -> None:
        self.service = service
        self.admission = admission if admission is not None else AdmissionPolicy()
        self._host = host
        self._requested_port = port
        self._plan = fault_plan
        #: Optional exporter for ``net``-tier ack spans; the backing
        #: service emits its own svc/shard spans when request tracing is
        #: enabled, this covers the frontend's slice of the waterfall.
        self._spans = span_exporter
        reg = registry if registry is not None else service.registry
        self._m_connections = reg.counter(
            "repro_net_connections_total", "Connections accepted")
        self._m_conn_rejected = reg.counter(
            "repro_net_connections_rejected_total",
            "Connections refused at the max_connections gate")
        self._m_active = reg.gauge(
            "repro_net_active_connections", "Currently open connections")
        self._m_requests = reg.counter(
            "repro_net_requests_total", "Messages received", ("kind",))
        self._m_bytes = reg.counter(
            "repro_net_bytes_total", "Bytes moved over the wire", ("direction",))
        self._m_inflight = reg.gauge(
            "repro_net_inflight", "Submits awaiting a response")
        self._m_decode_errors = reg.counter(
            "repro_net_decode_errors_total", "Frames rejected by the codec")
        self._m_deadline = reg.counter(
            "repro_net_deadline_drops_total",
            "Submits answered 'deadline' (server-side deadline expired)")
        self._m_shed = reg.counter(
            "repro_net_shed_total",
            "Submits answered 'shed' (oldest-first window overflow)")
        self._m_overloaded = reg.counter(
            "repro_net_overloaded_total",
            "Submits answered 'overloaded' (service backpressure)")
        self._m_faults = reg.counter(
            "repro_net_faults_injected_total",
            "Net-boundary faults fired", ("kind",))
        self._m_latency = reg.histogram(
            "repro_net_request_seconds",
            "Server-side submit latency (admission to response)")
        self._m_window_cap = reg.gauge(
            "repro_net_max_inflight",
            "Per-connection in-flight window cap (runtime-adjustable)")
        self._m_window_cap.set(self.admission.max_inflight)
        self._gate = ConnectionGate(self.admission.max_connections)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_evt: asyncio.Event | None = None
        self._started_evt = threading.Event()
        self._startup_error: BaseException | None = None
        self._server: asyncio.base_events.Server | None = None
        self._port: int | None = None
        self._conn_seq = 0
        self._conns: set[_Connection] = set()
        self._tasks: set[asyncio.Task] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-net-drain")

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        return self._port if self._port is not None else self._requested_port

    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    @property
    def address(self) -> str:
        """``host:port`` as accepted by :class:`~repro.net.PagingClient`."""
        return f"{self._host}:{self.port}"

    def start(self) -> "NetServer":
        """Bind the listener and serve from a daemon thread."""
        if self._thread is not None:
            raise ServiceStateError("net server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-net", daemon=True)
        self._thread.start()
        self._started_evt.wait(10.0)
        if self._startup_error is not None:
            self._thread.join(1.0)
            self._thread = None
            raise self._startup_error
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Close the listener first, then live connections (idempotent)."""
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and not loop.is_closed() and self._stop_evt is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._stop_evt.set)
        self._thread.join(timeout)
        self._thread = None
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- runtime admission actuators ---------------------------------------
    def set_max_inflight(self, cap: int) -> None:
        """Live-adjust the per-connection in-flight window cap.

        The control plane's net-side actuator: swaps the (frozen)
        :class:`AdmissionPolicy` for new connections and resizes every
        live connection's window on the event loop.  Shrinking does not
        retro-shed entries already in flight — the next ``admit`` past
        the new cap sheds oldest-first, exactly the steady-state rule.
        Thread-safe; callable before ``start()`` and while serving.
        """
        from dataclasses import replace

        cap = int(cap)
        if cap < 1:
            raise ValueError(f"max_inflight must be >= 1, got {cap}")
        self.admission = replace(self.admission, max_inflight=cap)
        self._m_window_cap.set(cap)
        loop = self._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._apply_window_cap, cap)

    def _apply_window_cap(self, cap: int) -> None:
        for conn in self._conns:
            conn.window.cap = cap

    def set_request_deadline(self, deadline_s: float) -> None:
        """Live-adjust the server-side submit deadline (thread-safe).

        Takes effect per request: the deadline is read when a submit's
        ticket await starts, so in-flight waits keep the deadline they
        were admitted under.
        """
        from dataclasses import replace

        if deadline_s <= 0:
            raise ValueError(
                f"request_deadline_s must be > 0, got {deadline_s}")
        self.admission = replace(self.admission,
                                 request_deadline_s=float(deadline_s))

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _serve(self) -> None:
        self._stop_evt = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle, self._host, self._requested_port)
        except OSError as exc:
            self._startup_error = exc
            self._started_evt.set()
            return
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_evt.set()
        await self._stop_evt.wait()
        # Listener closes before connections: a draining service must not
        # see new sockets, only the tail of already-accepted work.
        self._server.close()
        await self._server.wait_closed()
        for task in [t for t in self._tasks if not t.done()]:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    # -- connection handling -----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            import socket as _socket

            with contextlib.suppress(OSError):
                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        if not self._gate.try_acquire():
            self._m_conn_rejected.inc()
            await self._write_raw(writer, None, Error(
                0, "too_many_connections",
                f"server accepts at most {self.admission.max_connections} "
                "connections"))
            await self._close_writer(writer)
            return
        self._m_connections.inc()
        self._m_active.set(self._gate.active)
        conn = _Connection(self._conn_seq, writer,
                           InflightWindow(self.admission.max_inflight))
        self._conn_seq += 1
        self._conns.add(conn)
        decoder = FrameDecoder(max_frame_bytes=self.admission.max_frame_bytes)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                self._m_bytes.labels("in").inc(len(data))
                close = False
                for event in decoder.feed(data):
                    if isinstance(event, FrameError):
                        self._m_decode_errors.inc()
                        await self._send(conn, Error(0, event.code, str(event)))
                        continue
                    self._m_requests.labels(event.type).inc()
                    close = await self._dispatch(conn, event)
                    if close:
                        break
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            conn.open = False
            self._conns.discard(conn)
            for entry in conn.window.drain():
                if not entry.responded:
                    entry.responded = True
                    self._m_inflight.dec()
            self._gate.release()
            self._m_active.set(self._gate.active)
            await self._close_writer(writer)

    async def _dispatch(self, conn: _Connection, msg) -> bool:
        """Handle one message; returns True when the connection must close."""
        if isinstance(msg, SubmitBatch):
            return await self._dispatch_submit(conn, msg)
        if isinstance(msg, Ping):
            await self._send(conn, Pong(msg.id))
            return False
        if isinstance(msg, Snapshot):
            snap = self.service.snapshot()
            await self._send(conn, SnapshotReply(msg.id, snap.to_dict()))
            return False
        if isinstance(msg, Drain):
            loop = asyncio.get_running_loop()
            try:
                ok = await loop.run_in_executor(
                    self._executor, self.service.drain, msg.timeout)
            except ServiceStateError as exc:
                await self._send(conn, Error(msg.id, "unavailable", str(exc)))
                return False
            await self._send(conn, DrainReply(msg.id, bool(ok)))
            return False
        if isinstance(msg, Migrate):
            loop = asyncio.get_running_loop()
            try:
                ckpt = await loop.run_in_executor(
                    self._executor, self.service.capture_shard,
                    msg.shard, msg.timeout)
            except (ValueError, ServiceStateError) as exc:
                code = ("bad_request" if isinstance(exc, ValueError)
                        else "unavailable")
                await self._send(conn, Error(msg.id, code, str(exc)))
                return False
            await self._send(conn, MigrateReply(
                msg.id, msg.shard, ckpt.t,
                base64.b64encode(ckpt.payload).decode("ascii")))
            return False
        if isinstance(msg, Install):
            loop = asyncio.get_running_loop()
            try:
                ckpt = ShardCheckpoint.from_wire(
                    msg.t, base64.b64decode(msg.payload.encode("ascii")))
                await loop.run_in_executor(
                    self._executor, self.service.install_shard,
                    msg.shard, ckpt, msg.timeout)
            except (ValueError, binascii.Error) as exc:
                await self._send(conn, Error(msg.id, "bad_request", str(exc)))
                return False
            except ServiceStateError as exc:
                await self._send(conn, Error(msg.id, "unavailable", str(exc)))
                return False
            await self._send(conn, InstallReply(msg.id, msg.shard, True))
            return False
        # A response-typed message from a client is a protocol violation.
        await self._send(conn, Error(
            msg.id, "bad_request", f"unexpected {msg.type} message"))
        return False

    async def _dispatch_submit(self, conn: _Connection, msg: SubmitBatch) -> bool:
        loop = asyncio.get_running_loop()
        t = conn.n_submits
        conn.n_submits += 1
        if self._plan is not None:
            spec = self._plan.poll(conn.id, t)
            if spec is not None:
                self._m_faults.labels(spec.kind).inc()
                if spec.kind == "delay":
                    await asyncio.sleep(spec.delay_s)
                elif spec.kind == "drop":
                    return False  # request vanishes; the client times out
                else:  # kill: abrupt close, mid-protocol
                    return True
        ctx = (TraceContext.from_wire(msg.trace)
               if msg.trace is not None else None)
        entry = _Request(msg.id, len(msg.pages), loop.time(), trace=ctx, t=t)
        victim = conn.window.admit(msg.id, entry)
        self._m_inflight.inc()
        if victim is not None and not victim.responded:
            victim.responded = True
            self._m_shed.inc()
            self._m_inflight.dec()
            await self._send(conn, SubmitAck(
                victim.id, "shed", victim.n_requests,
                detail="per-connection in-flight window overflow"))
        pages = np.asarray(msg.pages, dtype=np.int64)
        levels = (np.asarray(msg.levels, dtype=np.int64)
                  if msg.levels else None)
        try:
            result = self.service.submit_batch(pages, levels, trace=ctx)
        except (InvalidRequestError, InvalidInstanceError, ValueError) as exc:
            self._finish(conn, entry)
            await self._send(conn, Error(msg.id, "bad_request", str(exc)))
            return False
        except ServiceStateError as exc:
            self._finish(conn, entry)
            await self._send(conn, Error(msg.id, "unavailable", str(exc)))
            return False
        if isinstance(result, Overloaded):
            self._m_overloaded.inc()
            self._finish(conn, entry)
            await self._send(conn, SubmitAck(
                msg.id, "overloaded", entry.n_requests, shard=result.shard,
                detail=f"shard queue at depth {result.queue_depth}"))
            return False
        if isinstance(result, Failed):
            self._finish(conn, entry)
            await self._send(conn, SubmitAck(
                msg.id, "failed", entry.n_requests, shard=result.shard,
                detail=repr(result.error)))
            return False
        # Accepted: bridge the ticket into the loop and answer when it
        # resolves (or the deadline fires) without blocking the reader.
        fut: asyncio.Future = loop.create_future()

        def _on_done(_ticket, loop=loop, fut=fut):
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._resolve_future, fut)

        result.add_done_callback(_on_done)
        waiter = loop.create_task(self._await_ticket(conn, entry, result, fut))
        self._tasks.add(waiter)
        waiter.add_done_callback(self._tasks.discard)
        return False

    @staticmethod
    def _resolve_future(fut: asyncio.Future) -> None:
        if not fut.done():
            fut.set_result(None)

    async def _await_ticket(self, conn: _Connection, entry: _Request,
                            ticket: BatchTicket, fut: asyncio.Future) -> None:
        loop = asyncio.get_running_loop()
        remaining = self.admission.request_deadline_s - (loop.time() - entry.started)
        try:
            await asyncio.wait_for(fut, max(remaining, 1e-3))
        except (asyncio.TimeoutError, TimeoutError):
            if not entry.responded and conn.open:
                self._m_deadline.inc()
                self._finish(conn, entry)
                await self._send(conn, SubmitAck(
                    entry.id, "deadline", entry.n_requests,
                    detail=f"not resolved within "
                           f"{self.admission.request_deadline_s:g}s"))
            else:
                conn.window.resolve(entry.id)
            return
        except asyncio.CancelledError:
            conn.window.resolve(entry.id)
            return
        if entry.responded or not conn.open:
            conn.window.resolve(entry.id)
            return
        status = "ok" if ticket.ok else "failed"
        detail = "" if ticket.ok else repr(ticket.errors[0] if ticket.errors
                                           else "shard slice failed")
        elapsed = loop.time() - entry.started
        self._m_latency.observe(elapsed)
        self._finish(conn, entry)
        if self._spans is not None and entry.trace is not None:
            self._spans.emit(
                entry.trace, "ack", tier="net", t=entry.t,
                attrs={"status": status, "n_requests": entry.n_requests},
                dur=elapsed)
        await self._send(conn, SubmitAck(
            entry.id, status, entry.n_requests, detail=detail))

    def _finish(self, conn: _Connection, entry: _Request) -> None:
        """Claim the response slot for ``entry`` and release its window seat."""
        entry.responded = True
        conn.window.resolve(entry.id)
        self._m_inflight.dec()

    # -- writes ------------------------------------------------------------
    async def _send(self, conn: _Connection, msg) -> None:
        await self._write_raw(conn.writer, conn.write_lock, msg)

    async def _write_raw(self, writer: asyncio.StreamWriter,
                         lock: asyncio.Lock | None, msg) -> None:
        data = encode(msg, max_frame_bytes=2**31 - 1)
        try:
            if lock is not None:
                async with lock:
                    writer.write(data)
                    await writer.drain()
            else:
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            return
        self._m_bytes.labels("out").inc(len(data))

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()

    def __repr__(self) -> str:
        state = "serving" if self._thread is not None else "stopped"
        return f"NetServer({self.address}, {state}, conns={self._gate.active})"
