"""Exact integral offline optima by min-plus dynamic programming.

For small instances the integral optimum is computed exactly by a DP over
*all feasible cache states*.  A state assigns each page a level (0 = not
cached); feasible states cache at most ``k`` pages.  Transitions may
rearrange the cache arbitrarily; following the paper's cost convention
only evictions are charged (a cached copy that leaves or changes level
pays its weight; fetches are free).  The per-step recurrence

    new_cost[b] = min_a ( cost[a] + trans[a, b] )    over states b serving
                                                     the request

is evaluated with vectorized NumPy min-plus products in column chunks.

Two concrete DPs are provided:

* :func:`offline_opt_multilevel` — multi-level paging (weighted paging and
  RW-paging as special cases);
* :func:`offline_opt_writeback` — writeback-aware caching in its *native*
  state space (out / clean / dirty with the legal dirtying dynamics).

Lemma 2.1 says the two give equal values on reduction-paired instances —
an equality the test suite and experiment E7 verify.

The state space has ``(l + 1)^n`` raw states; callers must keep
``n`` small (``<= max_states`` after filtering) or a
:class:`~repro.errors.StateSpaceTooLargeError` is raised.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.core.instance import MultiLevelInstance, WritebackInstance
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import StateSpaceTooLargeError

__all__ = [
    "enumerate_states",
    "offline_opt_multilevel",
    "offline_opt_writeback",
]

_INF = np.inf
DEFAULT_MAX_STATES = 20_000


def enumerate_states(
    n_pages: int, n_levels: int, cache_size: int, max_states: int = DEFAULT_MAX_STATES
) -> np.ndarray:
    """All cache states as an ``(S, n)`` int8 array of levels (0 = absent)."""
    raw = (n_levels + 1) ** n_pages
    if raw > 50_000_000:
        raise StateSpaceTooLargeError(
            f"(l+1)^n = {raw} raw states; the exact DP needs a smaller instance"
        )
    states = [
        s
        for s in product(range(n_levels + 1), repeat=n_pages)
        if sum(1 for x in s if x > 0) <= cache_size
    ]
    if len(states) > max_states:
        raise StateSpaceTooLargeError(
            f"{len(states)} feasible states exceed the limit {max_states}; "
            "use the LP bound instead (repro.offline.bounds)"
        )
    return np.array(states, dtype=np.int8)


def _transition_costs(
    states: np.ndarray, level_cost: np.ndarray, chunk: int = 128
) -> np.ndarray:
    """``(S, S)`` eviction cost of moving between states.

    ``level_cost[p, j]`` is the cost of copy ``(p, j)`` leaving the cache
    (``level_cost[p, 0] = 0`` for absent pages).  A copy pays when its
    page's level changes or it leaves.
    """
    S, n = states.shape
    out = np.empty((S, S), dtype=np.float64)
    # Cost of the copies of state a, gathered once: (S, n).
    pages = np.arange(n)
    cost_a = level_cost[pages[None, :], states.astype(np.int64)]
    for lo in range(0, S, chunk):
        hi = min(lo + chunk, S)
        differs = states[lo:hi, None, :] != states[None, :, :]  # (c, S, n)
        out[lo:hi] = np.einsum(
            "cn,csn->cs", cost_a[lo:hi], differs, optimize=True
        )
    return out


def _minplus_run(
    trans: np.ndarray,
    serve_masks: np.ndarray,
    start_cost: np.ndarray,
    chunk: int = 512,
    *,
    backpointers: list[np.ndarray] | None = None,
) -> np.ndarray:
    """Run the DP; returns the final cost vector over states.

    When ``backpointers`` is a list, one argmin array per time step is
    appended to it (entries are -1 for unreachable states), allowing the
    optimal state trace to be reconstructed.
    """
    cost = start_cost
    S = trans.shape[0]
    for mask in serve_masks:
        new = np.full(S, _INF)
        back = np.full(S, -1, dtype=np.int64) if backpointers is not None else None
        idx = np.flatnonzero(mask)
        for lo in range(0, idx.size, chunk):
            sel = idx[lo : lo + chunk]
            totals = trans[:, sel] + cost[:, None]
            arg = totals.argmin(axis=0)
            new[sel] = totals[arg, np.arange(sel.size)]
            if back is not None:
                back[sel] = arg
        if backpointers is not None:
            backpointers.append(back)
        cost = new
    return cost


def offline_opt_multilevel(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    *,
    max_states: int = DEFAULT_MAX_STATES,
) -> float:
    """Exact integral offline optimum for multi-level paging.

    Starts from the empty cache; only evictions are charged (copies left
    in the cache at the end are free, matching the online simulator).
    """
    instance.validate_sequence(seq.pages, seq.levels)
    if len(seq) == 0:
        return 0.0
    n, l, k = instance.n_pages, instance.n_levels, instance.cache_size
    states = enumerate_states(n, l, k, max_states)
    S = states.shape[0]

    # level_cost[p, j]: eviction cost of copy (p, j); j = 0 -> absent, 0.
    level_cost = np.zeros((n, l + 1), dtype=np.float64)
    level_cost[:, 1:] = instance.weights
    trans = _transition_costs(states, level_cost)

    serve_masks = np.stack(
        [
            (states[:, p] > 0) & (states[:, p] <= i)
            for p, i in zip(seq.pages.tolist(), seq.levels.tolist())
        ]
    )
    start = np.full(S, _INF)
    empty = int(np.flatnonzero((states == 0).all(axis=1))[0])
    start[empty] = 0.0
    final = _minplus_run(trans, serve_masks, start)
    return float(final.min())


def offline_opt_multilevel_trace(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    *,
    max_states: int = DEFAULT_MAX_STATES,
) -> tuple[float, list[dict[int, int]]]:
    """Exact optimum *and* an optimal cache trace.

    Returns ``(value, trace)`` where ``trace[t]`` is the OPT cache
    (``page -> level``) after serving request ``t``.  Used by the
    potential-function verifier (:mod:`repro.analysis.potentials`).
    """
    instance.validate_sequence(seq.pages, seq.levels)
    if len(seq) == 0:
        return 0.0, []
    n, l, k = instance.n_pages, instance.n_levels, instance.cache_size
    states = enumerate_states(n, l, k, max_states)
    S = states.shape[0]
    level_cost = np.zeros((n, l + 1), dtype=np.float64)
    level_cost[:, 1:] = instance.weights
    trans = _transition_costs(states, level_cost)
    serve_masks = np.stack(
        [
            (states[:, p] > 0) & (states[:, p] <= i)
            for p, i in zip(seq.pages.tolist(), seq.levels.tolist())
        ]
    )
    start = np.full(S, _INF)
    empty = int(np.flatnonzero((states == 0).all(axis=1))[0])
    start[empty] = 0.0
    backs: list[np.ndarray] = []
    final = _minplus_run(trans, serve_masks, start, backpointers=backs)
    end = int(final.argmin())
    # Walk backpointers from the end state to recover the trace.
    state_indices = [end]
    cur = end
    for back in reversed(backs[1:]):  # backs[0] points into the start vector
        cur = int(back[cur])
        state_indices.append(cur)
    state_indices.reverse()
    trace = [
        {p: int(lvl) for p, lvl in enumerate(states[s]) if lvl > 0}
        for s in state_indices
    ]
    return float(final[end]), trace


# Writeback state encoding: 0 = out, 1 = clean, 2 = dirty.
_WB_OUT, _WB_CLEAN, _WB_DIRTY = 0, 1, 2


def _wb_transition_costs(
    states: np.ndarray, instance: WritebackInstance, chunk: int = 128
) -> np.ndarray:
    """Writeback transition costs with the legal dirtying dynamics.

    * clean -> out costs ``w2``; dirty -> out costs ``w1``;
    * dirty -> clean costs ``w1`` (writeback then refetch clean);
    * clean -> dirty and out -> dirty are *illegal* between requests
      (a page only becomes dirty through a served write, which the DP
      applies as a separate forced map) -> infinite cost;
    * everything else is free.
    """
    S, n = states.shape
    w1, w2 = instance.dirty_weights, instance.clean_weights
    out = np.empty((S, S), dtype=np.float64)
    # Per-page cost table c[a_state, b_state] built per page via lookup:
    # cost_tab[p, a, b].
    cost_tab = np.zeros((n, 3, 3), dtype=np.float64)
    for p in range(n):
        cost_tab[p, _WB_CLEAN, _WB_OUT] = w2[p]
        cost_tab[p, _WB_DIRTY, _WB_OUT] = w1[p]
        cost_tab[p, _WB_DIRTY, _WB_CLEAN] = w1[p]
        cost_tab[p, _WB_CLEAN, _WB_DIRTY] = _INF
        cost_tab[p, _WB_OUT, _WB_DIRTY] = _INF
    pages = np.arange(n)
    st = states.astype(np.int64)
    for lo in range(0, S, chunk):
        hi = min(lo + chunk, S)
        # (c, S, n) gather of per-page costs, then sum over pages.
        per_page = cost_tab[
            pages[None, None, :], st[lo:hi, None, :], st[None, :, :]
        ]
        out[lo:hi] = per_page.sum(axis=2)
    return out


def offline_opt_writeback(
    instance: WritebackInstance,
    seq: WBRequestSequence,
    *,
    max_states: int = DEFAULT_MAX_STATES,
) -> float:
    """Exact integral offline optimum for writeback-aware caching.

    Native three-valued state space (out / clean / dirty).  After a served
    write the page is forced dirty at zero cost — the dirtying is part of
    the request semantics, not a transition the DP may refuse.
    """
    n, k = instance.n_pages, instance.cache_size
    if len(seq) and seq.max_page() >= n:
        instance.check_page(seq.max_page())
    states = enumerate_states(n, 2, k, max_states)
    S = states.shape[0]
    trans = _wb_transition_costs(states, instance)

    # Forced dirtying maps: dirty_map[p][s] = index of s with s_p := dirty.
    index_of = {tuple(row): i for i, row in enumerate(states.tolist())}
    dirty_map = np.empty((n, S), dtype=np.int64)
    for p in range(n):
        for s_idx, row in enumerate(states.tolist()):
            if row[p] == _WB_OUT:
                dirty_map[p, s_idx] = -1  # unreachable when serving p
            else:
                target = list(row)
                target[p] = _WB_DIRTY
                dirty_map[p, s_idx] = index_of[tuple(target)]

    cost = np.full(S, _INF)
    empty = int(np.flatnonzero((states == 0).all(axis=1))[0])
    cost[empty] = 0.0

    for page, is_write in zip(seq.pages.tolist(), seq.writes.tolist()):
        serves = states[:, page] != _WB_OUT
        new = np.full(S, _INF)
        idx = np.flatnonzero(serves)
        for lo in range(0, idx.size, 512):
            sel = idx[lo : lo + 512]
            new[sel] = (trans[:, sel] + cost[:, None]).min(axis=0)
        if is_write:
            forced = np.full(S, _INF)
            for s_idx in idx:
                target = dirty_map[page, s_idx]
                if new[s_idx] < forced[target]:
                    forced[target] = new[s_idx]
            new = forced
        cost = new
    return float(cost.min())
