"""Fractional offline optimum via linear programming.

This is the paper's LP (Section 2) in polynomial size.  The paper writes
the covering family over *all* subsets ``S`` of pages::

    sum_{p in S} u(p, l, t) >= |S| - k        for all S subset [n]

Under the box constraints ``u <= 1`` (valid by Claim 2.2) this family is
equivalent to the single constraint ``sum_p u(p, l, t) >= n - k``: for any
``S``, ``sum_{p in S} u >= sum_p u - (n - |S|) >= (n - k) - (n - |S|)
= |S| - k``.  Conversely ``S = [n]`` is in the family.  So the LP below,
with one covering row per time step, has exactly the paper's optimum.

Variables (per time step ``t = 1..T``, page ``p``, level ``i``):

* ``u(p, i, t) in [0, 1]`` — evicted fraction of the prefix ``(p, 1..i)``;
  ``u(p, i, 0) = 1`` (empty cache); fixed to 0 for ``i >= i_t`` when
  ``p = p_t`` (the request must be served);
* ``z(p, i, t) >= 0`` with ``z >= u(p, i, t) - u(p, i, t-1)`` — the paid
  increase.

Objective: ``min sum w(p, i) * z(p, i, t)``.

The LP optimum lower-bounds the integral optimum in the *z-accounting*.
Relative to the eviction-cost accounting used by the simulator, an
integral eviction of ``(p, i)`` costs ``sum_{j>=i} w(p, j)`` in
z-accounting — at most twice ``w(p, i)`` for geometric weights (at most
``l`` times in general).  :mod:`repro.offline.bounds` applies the correct
divisor when a bound on the eviction-cost optimum is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence
from repro.errors import SolverError

__all__ = ["OfflineLPResult", "solve_offline_lp", "fractional_offline_opt"]


@dataclass(frozen=True)
class OfflineLPResult:
    """Solution of the offline fractional LP.

    ``u`` has shape ``(T + 1, n, l)`` with ``u[0] = 1`` (empty cache);
    ``value`` is the optimal z-cost.
    """

    value: float
    u: np.ndarray


def solve_offline_lp(
    instance: MultiLevelInstance, seq: RequestSequence
) -> OfflineLPResult:
    """Solve the offline fractional multi-level paging LP exactly."""
    instance.validate_sequence(seq.pages, seq.levels)
    n, l, k = instance.n_pages, instance.n_levels, instance.cache_size
    T = len(seq)
    if T == 0:
        return OfflineLPResult(0.0, np.ones((1, n, l)))

    nl = n * l
    n_vars = 2 * nl * T  # u block then z block

    def u_idx(t: int, p: int, i0: int) -> int:
        # t is 1-based (1..T), i0 is the 0-based level column.
        return (t - 1) * nl + p * l + i0

    def z_idx(t: int, p: int, i0: int) -> int:
        return nl * T + (t - 1) * nl + p * l + i0

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b_ub: list[float] = []
    row = 0

    pages = seq.pages.tolist()
    levels = seq.levels.tolist()

    for t in range(1, T + 1):
        # Covering: -sum_p u(p, l, t) <= -(n - k).
        for p in range(n):
            rows.append(row)
            cols.append(u_idx(t, p, l - 1))
            vals.append(-1.0)
        b_ub.append(-(n - k))
        row += 1
        # Monotone prefixes: u(p, i, t) - u(p, i-1, t) <= 0.
        for p in range(n):
            for i0 in range(1, l):
                rows.extend([row, row])
                cols.extend([u_idx(t, p, i0), u_idx(t, p, i0 - 1)])
                vals.extend([1.0, -1.0])
                b_ub.append(0.0)
                row += 1
        # Movement: u(p, i, t) - u(p, i, t-1) - z(p, i, t) <= rhs.
        for p in range(n):
            for i0 in range(l):
                if t == 1:
                    rows.extend([row, row])
                    cols.extend([u_idx(t, p, i0), z_idx(t, p, i0)])
                    vals.extend([1.0, -1.0])
                    b_ub.append(1.0)  # u(p, i, 0) = 1
                else:
                    rows.extend([row, row, row])
                    cols.extend(
                        [u_idx(t, p, i0), u_idx(t - 1, p, i0), z_idx(t, p, i0)]
                    )
                    vals.extend([1.0, -1.0, -1.0])
                    b_ub.append(0.0)
                row += 1

    A_ub = csr_matrix((vals, (rows, cols)), shape=(row, n_vars))

    # Bounds: u in [0, 1] (0 where serving forces it), z >= 0.
    ub = np.ones(n_vars)
    lb = np.zeros(n_vars)
    ub[nl * T :] = np.inf
    for t in range(1, T + 1):
        p_t, i_t = pages[t - 1], levels[t - 1]
        for i0 in range(i_t - 1, l):
            ub[u_idx(t, p_t, i0)] = 0.0

    c = np.zeros(n_vars)
    w = instance.weights
    for t in range(1, T + 1):
        base = nl * T + (t - 1) * nl
        c[base : base + nl] = w.reshape(-1)

    res = linprog(
        c,
        A_ub=A_ub,
        b_ub=np.asarray(b_ub),
        bounds=np.stack([lb, ub], axis=1),
        method="highs",
    )
    if not res.success:
        raise SolverError(f"offline LP failed: {res.message}")

    u = np.empty((T + 1, n, l), dtype=np.float64)
    u[0] = 1.0
    u[1:] = res.x[: nl * T].reshape(T, n, l)
    return OfflineLPResult(value=float(res.fun), u=u)


def fractional_offline_opt(
    instance: MultiLevelInstance, seq: RequestSequence
) -> float:
    """Optimal fractional z-cost of serving ``seq`` offline."""
    return solve_offline_lp(instance, seq).value
