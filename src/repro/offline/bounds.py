"""Choosing the strongest available lower bound on the offline optimum.

Competitive ratios are measured against a *lower bound* on OPT so that the
reported ratio is an upper bound on the true one.  Three bounds are
available, tried in order under ``prefer="auto"``:

* the exact DP (:mod:`repro.offline.dp`) — equals OPT, but only feasible
  for small state spaces;
* the sparse interval LP (:mod:`repro.offline.scale`) — scales to streams
  of hundreds of thousands of requests;
* the dense time-indexed LP (:mod:`repro.offline.lp`) — the reference
  formulation, kept as a last resort (same optimum, vastly bigger matrix).

Both LPs share a z-accounting that over-charges integral solutions of
multi-level instances by up to a factor 2 (geometric weights) or ``l``
(general), so the bound on the eviction-cost OPT is ``LP / divisor``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence
from repro.errors import SolverError, StateSpaceTooLargeError
from repro.offline.dp import DEFAULT_MAX_STATES, offline_opt_multilevel
from repro.offline.lp import fractional_offline_opt

__all__ = ["OptBound", "lp_divisor", "best_opt_bound"]

_PREFERENCES = ("auto", "dp", "lp", "sparse-lp", "dense-lp")


@dataclass(frozen=True)
class OptBound:
    """A lower bound on the integral offline optimum (eviction cost).

    ``lp_value`` carries the raw (undivided) LP optimum when an LP
    produced the bound; ``upper`` carries a rounded feasible schedule's
    cost when the caller asked for the full sandwich — together
    ``value <= OPT <= upper``.
    """

    value: float
    method: str  # "dp" (exact), "sparse-lp", or "dense-lp"
    lp_value: float | None = None
    upper: float | None = None

    @property
    def exact(self) -> bool:
        """True when the bound equals OPT."""
        return self.method == "dp"


def lp_divisor(instance: MultiLevelInstance) -> float:
    """Factor by which the LP's z-cost may exceed integral eviction cost."""
    if instance.n_levels == 1:
        return 1.0
    if instance.has_geometric_levels():
        return 2.0
    return float(instance.n_levels)


def best_opt_bound(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    prefer: str = "auto",
    with_upper: bool = False,
) -> OptBound:
    """Best available lower bound on the eviction-cost OPT of ``seq``.

    ``prefer`` may be ``"auto"`` (exact DP when the state space fits,
    else the sparse interval LP, else the dense LP), ``"dp"`` (raise if
    infeasible), ``"sparse-lp"``, ``"dense-lp"``, or ``"lp"`` (the LP
    path of ``auto``: sparse first, dense as fallback).

    Only :class:`~repro.errors.StateSpaceTooLargeError` triggers the
    DP -> LP fallback: any other failure (invalid sequence, solver
    breakdown) propagates — retrying a different method would mask a
    real defect.  LP solver failures are re-raised as
    :class:`~repro.errors.SolverError` naming the instance.

    With ``with_upper=True`` an LP-produced bound also threshold-rounds
    the fractional solution (:func:`repro.offline.scale.threshold_round`)
    and records the cheapest feasible integral cost in ``upper``; a DP
    bound sets ``upper`` to its own (exact) value.
    """
    from repro.offline.scale import solve_sparse_lp, threshold_round

    if prefer not in _PREFERENCES:
        raise ValueError(f"unknown preference {prefer!r}")
    if prefer in ("auto", "dp"):
        try:
            value = offline_opt_multilevel(instance, seq, max_states=max_states)
            return OptBound(value=value, method="dp",
                            upper=value if with_upper else None)
        except StateSpaceTooLargeError:
            if prefer == "dp":
                raise
    divisor = lp_divisor(instance)
    if prefer in ("auto", "lp", "sparse-lp"):
        try:
            solution = solve_sparse_lp(instance, seq)
            upper = (threshold_round(solution).cost if with_upper else None)
            return OptBound(value=solution.value / divisor, method="sparse-lp",
                            lp_value=solution.value, upper=upper)
        except SolverError as exc:
            if prefer == "sparse-lp":
                raise SolverError(
                    f"sparse interval LP failed on instance "
                    f"{instance.name!r}: {exc}"
                ) from exc
            # auto/lp: the dense formulation below is the last resort.
    try:
        lp = fractional_offline_opt(instance, seq)
    except SolverError as exc:
        raise SolverError(
            f"offline LP failed on instance {instance.name!r}: {exc}"
        ) from exc
    upper = None
    if with_upper:
        upper = threshold_round(solve_sparse_lp(instance, seq)).cost
    return OptBound(value=lp / divisor, method="dense-lp", lp_value=lp,
                    upper=upper)
