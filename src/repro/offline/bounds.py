"""Choosing the strongest available lower bound on the offline optimum.

Competitive ratios are measured against a *lower bound* on OPT so that the
reported ratio is an upper bound on the true one.  Two bounds are
available:

* the exact DP (:mod:`repro.offline.dp`) — equals OPT, but only feasible
  for small state spaces;
* the LP relaxation (:mod:`repro.offline.lp`) — always feasible, but its
  z-accounting over-charges integral solutions of multi-level instances
  by up to a factor 2 (geometric weights) or ``l`` (general), so the bound
  on the eviction-cost OPT is ``LP / divisor``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence
from repro.errors import StateSpaceTooLargeError
from repro.offline.dp import DEFAULT_MAX_STATES, offline_opt_multilevel
from repro.offline.lp import fractional_offline_opt

__all__ = ["OptBound", "lp_divisor", "best_opt_bound"]


@dataclass(frozen=True)
class OptBound:
    """A lower bound on the integral offline optimum (eviction cost)."""

    value: float
    method: str  # "dp" (exact) or "lp" (relaxation / divisor applied)

    @property
    def exact(self) -> bool:
        """True when the bound equals OPT."""
        return self.method == "dp"


def lp_divisor(instance: MultiLevelInstance) -> float:
    """Factor by which the LP's z-cost may exceed integral eviction cost."""
    if instance.n_levels == 1:
        return 1.0
    if instance.has_geometric_levels():
        return 2.0
    return float(instance.n_levels)


def best_opt_bound(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    prefer: str = "auto",
) -> OptBound:
    """Best available lower bound on the eviction-cost OPT of ``seq``.

    ``prefer`` may be ``"auto"`` (exact DP when the state space fits,
    else LP), ``"dp"`` (raise if infeasible) or ``"lp"``.
    """
    if prefer not in ("auto", "dp", "lp"):
        raise ValueError(f"unknown preference {prefer!r}")
    if prefer in ("auto", "dp"):
        try:
            return OptBound(
                value=offline_opt_multilevel(instance, seq, max_states=max_states),
                method="dp",
            )
        except StateSpaceTooLargeError:
            if prefer == "dp":
                raise
    lp = fractional_offline_opt(instance, seq)
    return OptBound(value=lp / lp_divisor(instance), method="lp")
