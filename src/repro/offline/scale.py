"""Offline OPT bounds at scale: sparse interval LP + threshold rounding.

The dense time-indexed LP (:mod:`repro.offline.lp`) has ``2 n l T``
variables — hopeless at the stream lengths the E-series benches run at.
This module builds the *interval* formulation for general multi-level
instances (the Bansal–Buchbinder–Naor LP of
:mod:`repro.offline.interval_lp` is the ``l = 1`` special case):

* Row ``i0`` of page ``p`` (the dense LP's ``u(p, i0, t)`` timeline)
  resets to 0 exactly at requests ``(p, i_t)`` with ``i_t <= i0 + 1``.
  Between consecutive resets an optimal ``u`` may be taken constant at
  its maximum (``z`` charges total increase >= the maximum, and raising
  ``u`` pointwise to that maximum only helps the covering rows), so one
  variable ``x(p, i0, s) in [0, 1]`` per *segment* suffices and the
  sparse optimum equals the dense LP optimum — asserted over random
  instances in the test suite.  The segment before a row's first reset
  starts at 1 (empty cache) and stays there for free: no variable.

* The covering row at time ``t`` sums the deepest-row value of every
  page over ~``n`` terms; materialised directly that is ``O(n T)``
  nonzeros.  Instead an auxiliary *running-sum* variable ``Z_t`` tracks
  ``sum_q x(q, l-1, open segment at t)`` through 4-nonzero equality
  rows (only the requested page's deep segment changes per step), so
  every covering row is 2 nonzeros and the whole matrix is ``O(T l)``.

* Prefix rows ``u(p, i0) <= u(p, i0 - 1)``: row ``i0 - 1`` resets on a
  subset of row ``i0``'s reset times, so the shallower open segment is
  constant across each deeper segment — one 2-nonzero row per opened
  segment (skipped while the shallower row is still pre-first-reset,
  where the constraint is ``<= 1``, vacuous).

:func:`threshold_round` turns the fractional solution into integral
schedules: for each threshold it replays the stream evicting, on
misses, the cached page whose deep-segment LP value clears the
threshold (LP-guided, next-use distance as tie-break), repairing to
feasibility when no page clears it.  Every schedule is feasible by
construction and charged with the DP's eviction-cost convention, so the
cheapest one is a true upper bound on OPT — together with
``LP / lp_divisor`` the pair *sandwiches* the integral optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence
from repro.errors import SolverError

__all__ = [
    "DEFAULT_THRESHOLDS",
    "SparseLPResult",
    "RoundedSchedule",
    "ThresholdRoundingResult",
    "OptSandwich",
    "solve_sparse_lp",
    "sparse_fractional_opt",
    "round_at",
    "threshold_round",
    "opt_sandwich",
]

#: The rounding sweep: solve fractional once, round at 0.1 .. 0.9.
DEFAULT_THRESHOLDS = tuple(round(0.1 * i, 1) for i in range(1, 10))


@dataclass(frozen=True)
class SparseLPResult:
    """Solution of the sparse multi-level interval LP.

    ``x`` maps ``(page, level_row, segment)`` to the evicted fraction of
    the prefix ``(page, levels 1..level_row+1)`` during that segment;
    segment ``s >= 1`` opens at the row's ``s``-th reset (segment 0 —
    before the first request touching the row — is identically 1 and
    carries no variable).  For ``l = 1`` the deep row's segments are the
    classic inter-request intervals.
    """

    value: float
    x: dict[tuple[int, int, int], float]
    n_variables: int
    n_constraints: int
    instance: MultiLevelInstance = field(repr=False)
    seq: RequestSequence = field(repr=False)


@dataclass(frozen=True)
class RoundedSchedule:
    """One feasible integral schedule from the threshold sweep."""

    threshold: float
    cost: float
    n_evictions: int


@dataclass(frozen=True)
class ThresholdRoundingResult:
    """The sweep's schedules and the cheapest one (a true OPT upper bound)."""

    best: RoundedSchedule
    schedules: tuple[RoundedSchedule, ...]

    @property
    def cost(self) -> float:
        return self.best.cost


@dataclass(frozen=True)
class OptSandwich:
    """``lower <= OPT <= upper`` from one fractional solve + rounding sweep."""

    lower: float
    upper: float
    lp_value: float
    divisor: float
    threshold: float  # the winning rounding threshold

    @property
    def width(self) -> float:
        """Multiplicative gap ``upper / lower`` (inf on a zero lower bound)."""
        if self.lower <= 0.0:
            return float("inf") if self.upper > 0.0 else 1.0
        return self.upper / self.lower


#: Above this variable count the interior-point HiGHS variant is used by
#: default — ~2x faster than simplex on the long chain structure here.
_IPM_THRESHOLD = 50_000


def solve_sparse_lp(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    *,
    method: str | None = None,
) -> SparseLPResult:
    """Solve the sparse interval LP (HiGHS); optimum equals the dense LP's.

    Scales to streams of hundreds of thousands of requests: ``O(T l)``
    variables, constraints, and nonzeros.  ``method`` is passed to scipy
    ``linprog``; by default simplex (``highs``) on small instances and
    interior point with crossover (``highs-ipm``) on large ones.
    """
    instance.validate_sequence(seq.pages, seq.levels)
    n, l, k = instance.n_pages, instance.n_levels, instance.cache_size
    T = len(seq)
    pages = seq.pages.tolist()
    req_levels = seq.levels.tolist()
    w = instance.weights
    deep = l - 1

    # Columns 0..T-1 are the running sums Z_t; segment variables follow.
    seg: dict[tuple[int, int], int] = {}  # (page, row) -> open segment
    var_index: dict[tuple[int, int, int], int] = {}
    seg_costs: list[float] = []

    ub_rows: list[int] = []
    ub_cols: list[int] = []
    ub_vals: list[float] = []
    b_ub: list[float] = []
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_vals: list[float] = []
    n_ub = 0
    n_eq = 0
    n_distinct = 0  # |D(t)|: pages requested strictly before t

    for t in range(T):
        p, lev = pages[t], req_levels[t]
        cur_deep = seg.get((p, deep), 0)
        in_d = cur_deep >= 1  # p itself requested before?
        # Covering row at t (2 nonzeros), only when it can bind:
        #   Z_t - [p's own open deep segment] >= |D(t) + p| - k.
        rhs = n_distinct - k if in_d else n_distinct + 1 - k
        if rhs > 0:
            ub_rows.append(n_ub)
            ub_cols.append(t)
            ub_vals.append(-1.0)
            if in_d:
                ub_rows.append(n_ub)
                ub_cols.append(var_index[(p, deep, cur_deep)])
                ub_vals.append(1.0)
            b_ub.append(-float(rhs))
            n_ub += 1
        # The request resets rows lev-1 .. l-1 of page p, opening new
        # segments (shallowest first so prefix rows see fresh partners).
        for i0 in range(lev - 1, l):
            s_new = seg.get((p, i0), 0) + 1
            seg[(p, i0)] = s_new
            col = T + len(seg_costs)
            var_index[(p, i0, s_new)] = col
            seg_costs.append(float(w[p, i0]))
            if i0 >= 1:
                s_sh = seg.get((p, i0 - 1), 0)
                if s_sh >= 1:  # pre-first-reset shallow segment == 1: vacuous
                    eq_like = var_index[(p, i0 - 1, s_sh)]
                    ub_rows.extend((n_ub, n_ub))
                    ub_cols.extend((col, eq_like))
                    ub_vals.extend((1.0, -1.0))
                    b_ub.append(0.0)
                    n_ub += 1
        # Running-sum chain: Z_{t+1} = Z_t - old deep segment + new one.
        if t + 1 < T:
            new_deep = var_index[(p, deep, seg[(p, deep)])]
            cols = [t + 1, t, new_deep]
            vals = [1.0, -1.0, -1.0]
            if in_d:
                cols.append(var_index[(p, deep, cur_deep)])
                vals.append(1.0)
            eq_rows.extend([n_eq] * len(cols))
            eq_cols.extend(cols)
            eq_vals.extend(vals)
            n_eq += 1
        if not in_d:
            n_distinct += 1

    n_vars = T + len(seg_costs)
    n_constraints = n_ub + n_eq
    if T == 0 or n_ub == 0 or not b_ub:
        # Cache never overflows: the all-zero solution is optimal.
        x = {key: 0.0 for key in var_index}
        return SparseLPResult(0.0, x, n_vars, n_constraints, instance, seq)

    c = np.concatenate([np.zeros(T), np.asarray(seg_costs)])
    bounds = np.empty((n_vars, 2))
    bounds[:T] = (0.0, float(n))
    bounds[0] = (0.0, 0.0)  # Z_0: nothing requested yet
    bounds[T:] = (0.0, 1.0)
    a_ub = csr_matrix((ub_vals, (ub_rows, ub_cols)), shape=(n_ub, n_vars))
    a_eq = None
    b_eq = None
    if n_eq:
        a_eq = csr_matrix((eq_vals, (eq_rows, eq_cols)), shape=(n_eq, n_vars))
        b_eq = np.zeros(n_eq)
    if method is None:
        method = "highs" if n_vars < _IPM_THRESHOLD else "highs-ipm"
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=np.asarray(b_ub),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method=method,
    )
    if not res.success:
        raise SolverError(
            f"sparse interval LP failed on {instance.name}: {res.message}"
        )
    x = {key: float(res.x[idx]) for key, idx in var_index.items()}
    return SparseLPResult(
        value=float(res.fun),
        x=x,
        n_variables=n_vars,
        n_constraints=n_constraints,
        instance=instance,
        seq=seq,
    )


def sparse_fractional_opt(
    instance: MultiLevelInstance, seq: RequestSequence
) -> float:
    """Value of the sparse interval LP (== the fractional offline optimum)."""
    return solve_sparse_lp(instance, seq).value


def round_at(solution: SparseLPResult, threshold: float) -> RoundedSchedule:
    """Round one threshold: replay the stream with LP-guided evictions.

    On a miss with a full cache the victim is the cached page whose open
    deep-segment LP value is ``>= threshold`` (largest value first,
    furthest next use as tie-break); when no page clears the threshold
    the same ordering over *all* cached pages repairs feasibility.  Cost
    follows the DP convention — a copy pays its (old) level's weight
    when its level changes or it leaves — so the result is the cost of a
    genuine feasible schedule: an upper bound on OPT.
    """
    inst, seq = solution.instance, solution.seq
    k = inst.cache_size
    deep = inst.n_levels - 1
    w = inst.weights
    x = solution.x
    pages = seq.pages.tolist()
    req_levels = seq.levels.tolist()
    T = len(pages)

    occurrences: dict[int, list[int]] = {}
    for t, p in enumerate(pages):
        occurrences.setdefault(p, []).append(t)
    ptr: dict[int, int] = {}

    def next_use(q: int, now: int) -> int:
        lst = occurrences[q]
        i = ptr.get(q, 0)
        while i < len(lst) and lst[i] <= now:
            i += 1
        ptr[q] = i
        return lst[i] if i < len(lst) else T + 1

    cache: dict[int, int] = {}  # page -> held level (1-based)
    seg_deep: dict[int, int] = {}  # page -> open deep segment
    cost = 0.0
    n_evictions = 0

    for t in range(T):
        p, lev = pages[t], req_levels[t]
        held = cache.get(p)
        if held is None or held > lev:
            if held is not None:
                # Level change: the old copy pays its weight (DP rule).
                cost += float(w[p, held - 1])
                n_evictions += 1
            elif len(cache) >= k:
                def score(q: int) -> float:
                    return x.get((q, deep, seg_deep[q]), 0.0)

                pool = [q for q in cache if score(q) >= threshold]
                if not pool:
                    pool = list(cache)
                victim = max(pool, key=lambda q: (score(q), next_use(q, t), q))
                cost += float(w[victim, cache[victim] - 1])
                n_evictions += 1
                del cache[victim]
            cache[p] = lev
        seg_deep[p] = seg_deep.get(p, 0) + 1
        if len(cache) > k:  # pragma: no cover - structural invariant
            raise SolverError("threshold rounding overfilled the cache")
    return RoundedSchedule(threshold=float(threshold), cost=cost,
                           n_evictions=n_evictions)


def threshold_round(
    solution: SparseLPResult,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
) -> ThresholdRoundingResult:
    """Round the fractional solution at each threshold; keep the cheapest.

    Every swept schedule is feasible (the repair path guarantees it), so
    ``result.cost`` upper-bounds OPT regardless of which threshold wins.
    """
    if not thresholds:
        raise ValueError("need at least one rounding threshold")
    schedules = tuple(round_at(solution, th) for th in thresholds)
    best = min(schedules, key=lambda s: s.cost)
    return ThresholdRoundingResult(best=best, schedules=schedules)


def opt_sandwich(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    *,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
) -> OptSandwich:
    """Certified two-sided bound: ``lp/divisor <= OPT <= best rounded cost``."""
    from repro.offline.bounds import lp_divisor

    solution = solve_sparse_lp(instance, seq)
    divisor = lp_divisor(instance)
    rounded = threshold_round(solution, thresholds)
    return OptSandwich(
        lower=solution.value / divisor,
        upper=rounded.cost,
        lp_value=solution.value,
        divisor=divisor,
        threshold=rounded.best.threshold,
    )
