"""Belady's MIN: the optimal offline policy for *unweighted* paging.

On each miss with a full cache, evict the cached page whose next request
is furthest in the future.  This is the textbook clairvoyant optimum for
unit weights and single-level requests; for weighted or multi-level
instances it is only a heuristic (the exact DP in
:mod:`repro.offline.dp` covers those).

The implementation precomputes next-use indices in one backward pass, so
the whole run is O(T log k)-ish with a lazy heap.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence
from repro.errors import InvalidInstanceError

__all__ = ["belady_cost", "next_use_indices"]

_NEVER = np.iinfo(np.int64).max


def next_use_indices(pages: np.ndarray, n_pages: int) -> np.ndarray:
    """``next_use[t]`` = index of the next request for ``pages[t]`` after ``t``.

    ``_NEVER`` (int64 max) marks "never requested again".
    """
    T = pages.size
    next_use = np.full(T, _NEVER, dtype=np.int64)
    last_seen = np.full(n_pages, _NEVER, dtype=np.int64)
    for t in range(T - 1, -1, -1):
        p = pages[t]
        next_use[t] = last_seen[p]
        last_seen[p] = t
    return next_use


def belady_cost(instance: MultiLevelInstance, seq: RequestSequence) -> float:
    """Eviction cost of Belady's MIN on a single-level unit-weight instance.

    Raises :class:`InvalidInstanceError` if the instance is weighted or
    multi-level — MIN is only optimal for the classical setting.
    """
    if instance.n_levels != 1:
        raise InvalidInstanceError("Belady's MIN requires a single-level instance")
    if not np.all(instance.weights == 1.0):
        raise InvalidInstanceError("Belady's MIN requires unit weights")
    instance.validate_sequence(seq.pages, seq.levels)

    pages = seq.pages
    next_use = next_use_indices(pages, instance.n_pages)
    k = instance.cache_size

    cached: dict[int, int] = {}  # page -> next use at the time it was keyed
    heap: list[tuple[int, int]] = []  # (-next_use, page), lazy entries
    evictions = 0
    for t in range(pages.size):
        p = int(pages[t])
        nu = int(next_use[t])
        if p in cached:
            cached[p] = nu
            heapq.heappush(heap, (-nu, p))
            continue
        if len(cached) >= k:
            while True:
                neg_nu, q = heapq.heappop(heap)
                if q in cached and cached[q] == -neg_nu:
                    break
            del cached[q]
            evictions += 1
        cached[p] = nu
        heapq.heappush(heap, (-nu, p))
    return float(evictions)
