"""Offline optima: LP relaxations, exact DP, Belady, bound selection."""

from repro.offline.belady import belady_cost, next_use_indices
from repro.offline.bounds import OptBound, best_opt_bound, lp_divisor
from repro.offline.dp import (
    DEFAULT_MAX_STATES,
    enumerate_states,
    offline_opt_multilevel,
    offline_opt_writeback,
)
from repro.offline.dp import offline_opt_multilevel_trace
from repro.offline.interval_lp import IntervalLPResult, solve_interval_lp
from repro.offline.lp import (
    OfflineLPResult,
    fractional_offline_opt,
    solve_offline_lp,
)
from repro.offline.scale import (
    DEFAULT_THRESHOLDS,
    OptSandwich,
    RoundedSchedule,
    SparseLPResult,
    ThresholdRoundingResult,
    opt_sandwich,
    round_at,
    solve_sparse_lp,
    sparse_fractional_opt,
    threshold_round,
)

__all__ = [
    "belady_cost",
    "next_use_indices",
    "OptBound",
    "best_opt_bound",
    "lp_divisor",
    "DEFAULT_MAX_STATES",
    "enumerate_states",
    "offline_opt_multilevel",
    "offline_opt_writeback",
    "OfflineLPResult",
    "fractional_offline_opt",
    "solve_offline_lp",
    "offline_opt_multilevel_trace",
    "IntervalLPResult",
    "solve_interval_lp",
    "DEFAULT_THRESHOLDS",
    "OptSandwich",
    "RoundedSchedule",
    "SparseLPResult",
    "ThresholdRoundingResult",
    "opt_sandwich",
    "round_at",
    "solve_sparse_lp",
    "sparse_fractional_opt",
    "threshold_round",
]
