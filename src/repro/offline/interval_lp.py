"""The interval LP for weighted paging (the primal-dual formulation).

The time-indexed LP of :mod:`repro.offline.lp` has a variable per (page,
time).  The classic *interval* formulation (Bansal-Buchbinder-Naor) is
much smaller: a page's timeline splits at its requests, and a single
variable ``x(p, j) in [0, 1]`` records the fraction of ``p`` evicted
during its ``j``-th inter-request interval (an optimal solution never
re-fetches mid-interval, so one number per interval suffices).

Covering rows, one per request time ``t``:

    sum_{p in S(t)} x(p, r(p, t))  >=  |S(t)| - (k - 1)

with ``S(t)`` = pages requested strictly before ``t`` other than ``p_t``
and ``r(p, t)`` = the interval of ``p`` open at time ``t`` — valid because
``p_t`` occupies one slot, leaving ``k - 1`` for ``S(t)``.  Objective
``sum w_p x(p, j)``.

Its optimum equals the time-indexed LP's (both equal the fractional
offline optimum) — asserted over random instances in the test suite,
which is a strong cross-validation of both builders.  The dual of *this*
LP is what :class:`repro.algorithms.primal_dual.PrimalDualWeightedPaging`
fits online.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.instance import WeightedPagingInstance
from repro.core.requests import RequestSequence
from repro.errors import InvalidInstanceError, SolverError

__all__ = ["IntervalLPResult", "solve_interval_lp"]


@dataclass(frozen=True)
class IntervalLPResult:
    """Solution of the interval LP.

    ``x`` maps ``(page, interval_index)`` to the evicted fraction;
    interval 0 of a page opens at its first request.
    """

    value: float
    x: dict[tuple[int, int], float]
    n_constraints: int


def solve_interval_lp(
    instance: WeightedPagingInstance, seq: RequestSequence
) -> IntervalLPResult:
    """Solve the interval LP exactly (HiGHS on a sparse matrix)."""
    if instance.n_levels != 1:
        raise InvalidInstanceError("the interval LP is for weighted paging (l = 1)")
    instance.validate_sequence(seq.pages, seq.levels)
    pages = seq.pages.tolist()
    k = instance.cache_size
    w = instance.weights[:, 0]

    # Assign interval indices: interval j of page p opens at p's j-th
    # request (0-based) and closes at its next request.
    current_interval: dict[int, int] = {}
    var_index: dict[tuple[int, int], int] = {}

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b_ub: list[float] = []
    costs: list[float] = []
    row = 0

    requested: list[int] = []  # pages seen so far, in first-seen order
    seen: set[int] = set()
    for t, p_t in enumerate(pages):
        # Covering row for time t (only when it can bind).
        s_pages = [q for q in requested if q != p_t]
        rhs = len(s_pages) - (k - 1)
        if rhs > 0:
            for q in s_pages:
                key = (q, current_interval[q])
                idx = var_index.setdefault(key, len(var_index))
                if idx == len(costs):
                    costs.append(float(w[q]))
                rows.append(row)
                cols.append(idx)
                vals.append(-1.0)
            b_ub.append(-float(rhs))
            row += 1
        # The request opens a new interval for p_t.
        if p_t in seen:
            current_interval[p_t] += 1
        else:
            seen.add(p_t)
            requested.append(p_t)
            current_interval[p_t] = 0

    n_vars = len(var_index)
    if n_vars == 0 or row == 0:
        return IntervalLPResult(0.0, {}, 0)

    A_ub = csr_matrix((vals, (rows, cols)), shape=(row, n_vars))
    res = linprog(
        np.asarray(costs),
        A_ub=A_ub,
        b_ub=np.asarray(b_ub),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not res.success:
        raise SolverError(f"interval LP failed: {res.message}")
    x = {key: float(res.x[idx]) for key, idx in var_index.items()}
    return IntervalLPResult(value=float(res.fun), x=x, n_constraints=row)
