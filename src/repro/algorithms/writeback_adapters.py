"""Writeback-aware policies, native and via the Lemma 2.1 reduction.

:class:`RWAdapterPolicy` turns *any* multi-level policy into a
writeback-aware policy: it runs the wrapped policy on the RW-paging image
of the instance (write copy = dirty cost, read copy = clean cost; writes
request level 1, reads level 2) and mirrors the RW cache's *page set* onto
the writeback cache.  By Lemma 2.1 the induced writeback solution never
costs more than the RW solution, so competitive guarantees transfer.

Native baselines:

* :class:`WBLRUPolicy` — dirty-oblivious LRU (what a conventional buffer
  pool does);
* :class:`WBLandlordPolicy` — Landlord run on the *current* eviction cost
  (``w1`` when dirty, ``w2`` when clean), a natural dirty-aware heuristic.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.algorithms.base import Policy, WritebackPolicy, register_policy
from repro.core.cache import MultiLevelCache
from repro.core.ledger import CostLedger
from repro.core.reductions import READ_LEVEL, WRITE_LEVEL, writeback_to_rw_instance

__all__ = ["RWAdapterPolicy", "WBLRUPolicy", "WBLandlordPolicy"]


class RWAdapterPolicy(WritebackPolicy):
    """Run a multi-level policy on the RW image; mirror pages writeback-side.

    Parameters
    ----------
    inner:
        Any multi-level :class:`~repro.algorithms.base.Policy`.  It sees an
        RW-paging instance (``l = 2``) and its own private cache; this
        adapter keeps the writeback cache's page set identical to the RW
        cache's page set after every request.

    The writeback-side cost (the returned metric) is at most the inner RW
    cost — Lemma 2.1's solution map S -> S'.  The inner RW cost is exposed
    through :meth:`extras` as ``rw_cost``.
    """

    def __init__(self, inner: Policy) -> None:
        super().__init__()
        self.inner = inner
        self.name = f"rw[{inner.name}]"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._rw_instance = writeback_to_rw_instance(instance)
        self._rw_ledger = CostLedger()
        self._rw_cache = MultiLevelCache(self._rw_instance, self._rw_ledger)
        self.inner.bind(self._rw_instance, self._rw_cache, rng)

    def serve(self, t: int, page: int, is_write: bool) -> None:
        level = WRITE_LEVEL if is_write else READ_LEVEL
        self._rw_ledger.set_time(t)
        self.inner.serve(t, page, level)
        # Mirror the RW page set onto the writeback cache.  Evict first so
        # capacity is available for the newly fetched pages.
        for p in list(self.cache.pages()):
            if p not in self._rw_cache:
                self.cache.evict(p, reason="mirror")
        for p in self._rw_cache.pages():
            if p not in self.cache:
                self.cache.fetch(p)

    def extras(self) -> dict[str, float]:
        extra = {f"inner_{k}": v for k, v in self.inner.extras().items()}
        extra["rw_cost"] = self._rw_ledger.eviction_cost
        return extra


@register_policy
class WBLRUPolicy(WritebackPolicy):
    """Dirty-oblivious LRU on a writeback cache."""

    name = "wb-lru"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._recency: OrderedDict[int, None] = OrderedDict()

    def serve(self, t: int, page: int, is_write: bool) -> None:
        cache = self.cache
        if page in cache:
            self._recency.pop(page, None)
            self._recency[page] = None
            return
        while cache.is_full:
            victim = next(iter(self._recency))
            cache.evict(victim, reason="capacity")
            del self._recency[victim]
        cache.fetch(page)
        self._recency[page] = None


@register_policy
class WBLandlordPolicy(WritebackPolicy):
    """Landlord with dirtiness-aware credit refresh.

    A cached page's credit is refreshed to its *current* eviction cost —
    ``w1`` once dirty, ``w2`` while clean — so dirty pages are stickier,
    mimicking what the paper's algorithms achieve in a principled way.
    """

    name = "wb-landlord"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._credit: dict[int, float] = {}

    def _current_cost(self, page: int) -> float:
        return self.instance.eviction_cost(page, self.cache.is_dirty(page))

    def serve(self, t: int, page: int, is_write: bool) -> None:
        cache = self.cache
        if page in cache:
            if is_write and not cache.is_dirty(page):
                # The page is about to become dirty: refresh to w1.
                self._credit[page] = float(self.instance.dirty_weights[page])
            else:
                self._credit[page] = max(
                    self._credit.get(page, 0.0), self._current_cost(page)
                )
            return
        while cache.is_full:
            delta = min(self._credit[q] for q in cache.pages())
            victim = None
            for q in cache.pages():
                self._credit[q] -= delta
                if victim is None and self._credit[q] <= 1e-12:
                    victim = q
            cache.evict(victim, reason="capacity")
            self._credit.pop(victim, None)
        cache.fetch(page)
        self._credit[page] = (
            float(self.instance.dirty_weights[page])
            if is_write
            else float(self.instance.clean_weights[page])
        )
