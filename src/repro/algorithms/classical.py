"""Classical paging baselines lifted to multi-level instances.

LRU, FIFO, random eviction, and (deterministic / randomized) marking.  All
ignore weights — they are the dirty/weight-oblivious comparators every
experiment measures the paper's algorithms against.

Lifting to multi-level: a request ``(p, i)`` that finds a cached copy of
``p`` at a *lower* level ``j > i`` upgrades the copy in place (paying the
eviction of ``(p, j)``, per the one-copy-per-page rule); a clean miss evicts
whole pages by the policy's usual rule and fetches ``(p, i)``.  With
``l = 1`` each policy is exactly its textbook self.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.algorithms.base import Policy, register_policy

__all__ = [
    "LRUPolicy",
    "FIFOPolicy",
    "RandomEvictionPolicy",
    "MarkingPolicy",
    "RandomizedMarkingPolicy",
]


class _EvictingPolicy(Policy):
    """Shared serve() skeleton: hit / upgrade / evict-then-fetch."""

    def serve(self, t: int, page: int, level: int) -> None:
        cache = self.cache
        current = cache.level_of(page)
        if current is not None:
            if current <= level:
                self._on_hit(t, page)
            else:
                cache.replace(page, level, reason="upgrade")
                self._on_fetch(t, page)
            return
        while cache.is_full:
            victim = self._choose_victim(t, page)
            cache.evict(victim, reason="capacity")
            self._on_evicted(victim)
        cache.fetch(page, level)
        self._on_fetch(t, page)

    # -- hooks ---------------------------------------------------------------
    def _on_hit(self, t: int, page: int) -> None:
        """Called when the cached copy already serves the request."""

    def _on_fetch(self, t: int, page: int) -> None:
        """Called after the requested copy enters (or upgrades in) the cache."""

    def _on_evicted(self, page: int) -> None:
        """Called after this policy's own eviction of ``page``."""

    def _choose_victim(self, t: int, page: int) -> int:
        """Return the cached page to evict (requested page is not cached)."""
        raise NotImplementedError


@register_policy
class LRUPolicy(_EvictingPolicy):
    """Least-recently-used eviction (k-competitive for unweighted paging)."""

    name = "lru"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._recency: OrderedDict[int, None] = OrderedDict()

    def _touch(self, page: int) -> None:
        self._recency.pop(page, None)
        self._recency[page] = None

    def _on_hit(self, t: int, page: int) -> None:
        self._touch(page)

    def _on_fetch(self, t: int, page: int) -> None:
        self._touch(page)

    def _on_evicted(self, page: int) -> None:
        self._recency.pop(page, None)

    def _choose_victim(self, t: int, page: int) -> int:
        return next(iter(self._recency))


@register_policy
class FIFOPolicy(_EvictingPolicy):
    """First-in-first-out eviction; upgrades do not refresh insertion age."""

    name = "fifo"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._queue: OrderedDict[int, None] = OrderedDict()

    def _on_fetch(self, t: int, page: int) -> None:
        if page not in self._queue:
            self._queue[page] = None

    def _on_evicted(self, page: int) -> None:
        self._queue.pop(page, None)

    def _choose_victim(self, t: int, page: int) -> int:
        return next(iter(self._queue))


@register_policy
class RandomEvictionPolicy(_EvictingPolicy):
    """Uniform random eviction — the memoryless baseline.

    Victim draws are O(1): an index-addressable mirror of the cached
    pages is kept in sync via the fetch/evict hooks, with swap-remove on
    eviction, so no per-eviction ``list(cache.pages())`` materialization
    (which made each eviction round O(k) in allocation alone).
    """

    name = "random"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._pages: list[int] = []  # index-addressable mirror of the cache
        self._index: dict[int, int] = {}  # page -> its slot in _pages

    def _on_fetch(self, t: int, page: int) -> None:
        if page not in self._index:  # upgrades keep their slot
            self._index[page] = len(self._pages)
            self._pages.append(page)

    def _on_evicted(self, page: int) -> None:
        slot = self._index.pop(page)
        last = self._pages.pop()
        if last != page:
            self._pages[slot] = last
            self._index[last] = slot

    def _choose_victim(self, t: int, page: int) -> int:
        return self._pages[int(self.rng.integers(0, len(self._pages)))]


class _BaseMarking(_EvictingPolicy):
    """Phase-based marking: evict only unmarked pages, new phase when none."""

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._marked: set[int] = set()

    def _on_hit(self, t: int, page: int) -> None:
        self._marked.add(page)

    def _on_fetch(self, t: int, page: int) -> None:
        self._marked.add(page)

    def _on_evicted(self, page: int) -> None:
        self._marked.discard(page)

    def _unmarked_cached(self) -> list[int]:
        return [p for p in self.cache.pages() if p not in self._marked]

    def _choose_victim(self, t: int, page: int) -> int:
        unmarked = self._unmarked_cached()
        if not unmarked:
            # Phase ends: every cached page is marked; unmark and restart.
            self._marked.clear()
            unmarked = list(self.cache.pages())
        return self._pick(unmarked)

    def _pick(self, unmarked: list[int]) -> int:
        raise NotImplementedError


@register_policy
class MarkingPolicy(_BaseMarking):
    """Deterministic marking (evicts the first unmarked page)."""

    name = "marking"

    def _pick(self, unmarked: list[int]) -> int:
        return unmarked[0]


@register_policy
class RandomizedMarkingPolicy(_BaseMarking):
    """Fiat et al.'s randomized marking: Theta(log k) for unweighted paging."""

    name = "randomized-marking"

    def _pick(self, unmarked: list[int]) -> int:
        return unmarked[int(self.rng.integers(0, len(unmarked)))]
