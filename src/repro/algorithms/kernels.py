"""Columnar (structure-of-arrays) batch kernels for the death-key policies.

Both water-filling and Landlord reduce, via the global-offset trick, to
the same eviction core: every cached copy carries a *death key*
``weight_at_set + offset_at_set`` and the victim is the exact minimum of
``(death, seq)``.  That core is pure array arithmetic, so this module
stores the policy state as preallocated numpy columns instead of dicts
and heaps:

========================  ====================================================
Column                    Meaning
========================  ====================================================
``_death   float64[k]``   death key per cache slot (``+inf`` for free slots,
                          which keeps ``argmin`` mask-free)
``_seqc    int64[k]``     credit-set sequence number per slot (tie-break)
``_slot_level_np i64[k]`` cached level per slot (0 for free slots)
``_page_slot_np  i64[n]`` page -> slot index (-1 when not cached)
========================  ====================================================

:meth:`serve_batch` serves a whole micro-batch:

1. one vectorized pass classifies every request against the current
   columns (``slot = page_slot[pages]; hit = cached & (level_of_slot <=
   level)``),
2. the leading run of pure hits is applied with two fancy-indexed
   column writes (Landlord's credit restores; water-filling hits are
   free),
3. the remainder runs a lean scalar loop that *trusts* the batch
   classification for any page not yet touched by a miss/upgrade in
   this batch (a "dirty" set), and re-derives state only for dirty
   pages.  Evictions are ``argmin`` over the death column with the seq
   column consulted only when the minimum is tied.

Exactness: the kernels perform the *same* double-precision additions in
the same order as the scalar policies (``weights[p, l-1] + offset`` on
the same read-only array), pick victims by the same exact ``(death,
seq)`` minimum, and charge the ledger with identical reasons in
identical order — so costs, eviction event streams, and final cache
contents are ``==``-equal to ``landlord``/``landlord-ref`` and
``waterfilling``/``waterfilling-heap``.  The test suite pins this
request-by-request (hypothesis suite in
``tests/algorithms/test_kernel_equivalence.py``).

The kernels write ``cache._contents`` directly (one dict store per
mutation) instead of going through :meth:`MultiLevelCache.fetch` /
``evict`` / ``replace``: the cache dict stays authoritative and in sync
after every request — invariant checks and ``serves()`` still work —
but the per-call validation layers are skipped on the hot path.  Run
with ``validate=True`` (scalar fallback + per-request invariant checks)
when auditing.

Checkpointing: the policies pickle their numpy columns and rebuild the
derived python-list mirrors and weight views in ``__setstate__``, so
supervisor restore, process workers, and cluster migration round-trip
them exactly like the scalar policies.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Policy, register_policy
from repro.errors import CacheInvariantError

__all__ = ["KernelLandlordPolicy", "KernelWaterFillingPolicy"]

#: Sequence sentinel for free slots (never compared against a live seq).
_EMPTY_SEQ = 2 ** 62
_INF = float("inf")


def _noop(_page) -> None:
    """Default dirty-marker for the single-request ``serve`` protocol."""


class _ColumnarPolicy(Policy):
    """Shared SoA state + batch dispatch for the death-key policy family.

    Subclasses provide the eviction reason, the hit behavior (Landlord
    restores credit, water-filling does nothing), and the vectorized
    hit-run kernel.
    """

    #: Ledger reason charged on capacity evictions.
    _evict_reason = "capacity"

    #: Whether a hit rewrites the copy's death key (Landlord restores
    #: credit; water-filling hits are free).
    _hit_restores = False

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        n, k = instance.n_pages, instance.cache_size
        self._n = n
        self._k = k
        self._L = instance.n_levels
        self._offset = 0.0
        self._counter = 0
        self._ncached = 0
        # Authoritative numpy columns (the eviction argmin runs on these).
        self._death = np.full(k, np.inf, dtype=np.float64)
        self._seqc = np.full(k, _EMPTY_SEQ, dtype=np.int64)
        self._page_slot_np = np.full(n, -1, dtype=np.int64)
        self._slot_level_np = np.zeros(k, dtype=np.int64)
        self._free = list(range(k - 1, -1, -1))
        self._slot_page = [-1] * k
        self._rebuild_derived()

    def _rebuild_derived(self) -> None:
        """(Re)derive the hot-loop mirrors from the pickled/bound state.

        Python-list mirrors of the index columns exist because scalar
        reads from a list are ~2x faster than numpy scalar indexing —
        the batch path still reads the numpy columns vectorized.
        """
        self._W = self.instance.weights
        self._wlist = self._W.ravel().tolist()
        self._page_slot = self._page_slot_np.tolist()
        self._slot_level = self._slot_level_np.tolist()
        self._contents = self.cache._contents
        self._ledger = self.cache.ledger

    def rebind_instance(self) -> None:
        """Re-derive weight views after the engine re-points ``instance``.

        :meth:`ShardEngine.restore_state` replaces the unpickled
        instance with its live (shared, read-only) twin; the weight
        values are equal, so behavior is unchanged — this just restores
        memory sharing.
        """
        self._W = self.instance.weights
        self._wlist = self._W.ravel().tolist()

    # -- pickling ----------------------------------------------------------
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        # Derived mirrors are rebuilt on unpickle; dropping them keeps
        # checkpoints small and avoids pickling the cache dict twice.
        for name in ("_W", "_wlist", "_page_slot", "_slot_level",
                     "_contents", "_ledger"):
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if state.get("instance") is not None and "_page_slot_np" in state:
            self._rebuild_derived()

    # -- subclass hooks ----------------------------------------------------
    def _scalar_hit(self, page: int, slot: int, current: int) -> None:
        """Serve a hit on ``page`` cached in ``slot`` at ``current``."""
        raise NotImplementedError

    def _apply_hit_run(self, run_pages, run_slots, run_levels) -> None:
        """Vectorized equivalent of ``_scalar_hit`` over a pure-hit run."""
        raise NotImplementedError

    def _serve_rest(self, i0, pages_l, levels_l, hit_l, slot_l, level_l) -> int:
        """Scalar loop over ``[i0, n)`` trusting the batch classification.

        One fused loop with every piece of state hoisted into locals: a
        page not yet touched by a miss/upgrade in this batch (the
        ``dirty`` set) keeps its classification-pass verdict, slot, and
        cached level; anything else re-derives from the live columns.
        The loop body is the inlined union of ``_scalar_hit`` /
        ``_serve_one`` / ``_evict_victim`` — kept semantically in
        lock-step with them (the protocol :meth:`serve` path runs those,
        and the equivalence suite pins both against the scalar
        policies).
        """
        death = self._death
        seqc = self._seqc
        wlist = self._wlist
        L = self._L
        page_slot = self._page_slot
        slot_page = self._slot_page
        slot_level = self._slot_level
        page_slot_np = self._page_slot_np
        slot_level_np = self._slot_level_np
        contents = self._contents
        ledger = self._ledger
        charge = ledger.charge_eviction
        count_fetch = ledger.count_fetch
        free = self._free
        k = self._k
        restores = self._hit_restores
        reason = self._evict_reason
        argmin = death.argmin
        inf = _INF
        offset = self._offset
        counter = self._counter
        ncached = self._ncached
        dirty: set[int] = set()
        dirty_add = dirty.add
        hits = 0
        try:
            for i in range(i0, len(pages_l)):
                page = pages_l[i]
                if hit_l[i] and page not in dirty:
                    # Trusted hit: slot and cached level come from the
                    # classification pass.
                    hits += 1
                    if restores:
                        slot = slot_l[i]
                        death[slot] = (
                            wlist[page * L + level_l[i] - 1] + offset
                        )
                        seqc[slot] = counter
                        counter += 1
                    continue
                level = levels_l[i]
                slot = page_slot[page]
                if slot >= 0:
                    current = slot_level[slot]
                    if current <= level:
                        hits += 1
                        if restores:
                            death[slot] = (
                                wlist[page * L + current - 1] + offset
                            )
                            seqc[slot] = counter
                            counter += 1
                        continue
                    # In-place level upgrade: charge the old copy.
                    charge(page, current,
                           wlist[page * L + current - 1], "upgrade")
                    contents[page] = level
                    count_fetch()
                    slot_level[slot] = level
                    slot_level_np[slot] = level
                    death[slot] = wlist[page * L + level - 1] + offset
                    seqc[slot] = counter
                    counter += 1
                    dirty_add(page)
                    continue
                # Miss: evict the (death, seq)-minimal copy if full.
                if ncached >= k:
                    victim = int(argmin())
                    key = death[victim]
                    if key == inf:
                        raise CacheInvariantError(
                            f"policy {self.name!r}: death-key column "
                            f"exhausted while the cache holds "
                            f"{len(contents)}/{k} copies — kernel state "
                            "is corrupt (e.g. a bad restore)"
                        )
                    # Tie probe: mask the winner, re-run argmin; a second
                    # slot at the same key means the seq column decides.
                    death[victim] = inf
                    if death[int(argmin())] == key:
                        death[victim] = key
                        ties = np.flatnonzero(death == key)
                        victim = int(ties[int(seqc[ties].argmin())])
                    offset = float(key)
                    vpage = slot_page[victim]
                    vlevel = slot_level[victim]
                    del contents[vpage]
                    charge(vpage, vlevel,
                           wlist[vpage * L + vlevel - 1], reason)
                    page_slot[vpage] = -1
                    page_slot_np[vpage] = -1
                    slot_page[victim] = -1
                    slot_level[victim] = 0
                    slot_level_np[victim] = 0
                    death[victim] = inf
                    seqc[victim] = _EMPTY_SEQ
                    free.append(victim)
                    ncached -= 1
                    dirty_add(vpage)
                slot = free.pop()
                contents[page] = level
                count_fetch()
                page_slot[page] = slot
                page_slot_np[page] = slot
                slot_page[slot] = page
                slot_level[slot] = level
                slot_level_np[slot] = level
                death[slot] = wlist[page * L + level - 1] + offset
                seqc[slot] = counter
                counter += 1
                ncached += 1
                dirty_add(page)
        finally:
            self._offset = offset
            self._counter = counter
            self._ncached = ncached
        return hits

    # -- credit/water bookkeeping ------------------------------------------
    def _insert(self, page: int, slot: int, level: int) -> None:
        """Set the death key for a freshly (re)fetched copy."""
        self._death[slot] = self._wlist[page * self._L + level - 1] + self._offset
        self._seqc[slot] = self._counter
        self._counter += 1

    def _evict_victim(self) -> int:
        """Evict the exact ``(death, seq)``-minimal copy; returns its page."""
        death = self._death
        victim = int(death.argmin())
        key = death[victim]
        if key == _INF:
            raise CacheInvariantError(
                f"policy {self.name!r}: death-key column exhausted while the "
                f"cache holds {len(self._contents)}/{self._k} copies — "
                "kernel state is corrupt (e.g. a bad restore)"
            )
        # Ties in the death key are broken by the credit-set sequence
        # number, exactly like the scalar policies; the seq column is
        # only consulted when a tie actually exists.
        if np.count_nonzero(death == key) > 1:
            ties = np.flatnonzero(death == key)
            victim = int(ties[int(self._seqc[ties].argmin())])
        self._offset = float(key)
        page = self._slot_page[victim]
        level = self._slot_level[victim]
        del self._contents[page]
        self._ledger.charge_eviction(
            page, level, self._wlist[page * self._L + level - 1],
            self._evict_reason,
        )
        self._page_slot[page] = -1
        self._page_slot_np[page] = -1
        self._slot_page[victim] = -1
        self._slot_level[victim] = 0
        self._slot_level_np[victim] = 0
        death[victim] = np.inf
        self._seqc[victim] = _EMPTY_SEQ
        self._free.append(victim)
        self._ncached -= 1
        return page

    def _serve_one(self, page: int, level: int, dirty_add=_noop) -> int:
        """Serve one request against the columns; returns 1 on a hit.

        ``dirty_add`` marks pages whose cached state changed during the
        current batch so the batch classification stops trusting them.
        """
        slot = self._page_slot[page]
        if slot >= 0:
            current = self._slot_level[slot]
            if current <= level:
                self._scalar_hit(page, slot, current)
                return 1
            # In-place level upgrade: charge the old copy, fetch is free.
            ledger = self._ledger
            ledger.charge_eviction(
                page, current,
                self._wlist[page * self._L + current - 1], "upgrade",
            )
            self._contents[page] = level
            ledger.count_fetch()
            self._slot_level[slot] = level
            self._slot_level_np[slot] = level
            self._insert(page, slot, level)
            dirty_add(page)
            return 0
        # Miss: make room if needed, then fetch into a free slot.
        if self._ncached >= self._k:
            dirty_add(self._evict_victim())
        slot = self._free.pop()
        self._contents[page] = level
        self._ledger.count_fetch()
        self._page_slot[page] = slot
        self._page_slot_np[page] = slot
        self._slot_page[slot] = page
        self._slot_level[slot] = level
        self._slot_level_np[slot] = level
        self._insert(page, slot, level)
        self._ncached += 1
        dirty_add(page)
        return 0

    # -- batch entry point -------------------------------------------------
    def serve_batch(self, t0: int, pages: np.ndarray, levels: np.ndarray) -> int:
        """Serve a whole micro-batch; returns the number of hits.

        Requests are served in order with semantics identical to calling
        :meth:`serve` per request; ``t0`` is the logical time of the
        first request (kept for protocol symmetry — the death-key
        policies are clock-free).
        """
        n = int(pages.size)
        if n == 0:
            return 0
        slots = self._page_slot_np[pages]
        # slots == -1 reads the last row of the level column; the value
        # is garbage but the `cached` mask below discards it.
        cached_levels = self._slot_level_np[slots]
        is_hit = (slots >= 0) & (cached_levels <= levels)
        first_miss = int(is_hit.argmin())
        if is_hit[first_miss]:
            first_miss = n  # argmin found no False: the batch is all hits
        if first_miss:
            self._apply_hit_run(pages[:first_miss], slots[:first_miss],
                                cached_levels[:first_miss])
        if first_miss == n:
            return n
        return first_miss + self._serve_rest(
            first_miss, pages.tolist(), levels.tolist(), is_hit.tolist(),
            slots.tolist(), cached_levels.tolist(),
        )

    def serve(self, t: int, page: int, level: int) -> None:
        self._serve_one(page, level)


@register_policy
class KernelLandlordPolicy(_ColumnarPolicy):
    """Landlord on columnar state; ``==``-equal to ``landlord-ref``.

    Hits restore the cached copy's credit (a death-key rewrite at the
    *current* level), so the hit-run kernel is two fancy-indexed writes:
    ``death[slots] = W[pages, levels-1] + offset`` and a fresh
    ``arange`` of sequence numbers.  Duplicate pages inside one run are
    resolved by numpy's in-order assignment (the last occurrence wins),
    which is exactly the scalar overwrite order.
    """

    name = "landlord-kernel"
    _evict_reason = "capacity"
    _hit_restores = True

    def _scalar_hit(self, page: int, slot: int, current: int) -> None:
        # Hit: restore credit to the cached copy's full weight.
        self._death[slot] = (
            self._wlist[page * self._L + current - 1] + self._offset
        )
        self._seqc[slot] = self._counter
        self._counter += 1

    def _apply_hit_run(self, run_pages, run_slots, run_levels) -> None:
        count = self._counter
        r = int(run_pages.size)
        self._death[run_slots] = (
            self._W[run_pages, run_levels - 1] + self._offset
        )
        self._seqc[run_slots] = np.arange(count, count + r, dtype=np.int64)
        self._counter = count + r


@register_policy
class KernelWaterFillingPolicy(_ColumnarPolicy):
    """Water-filling on columnar state; ``==``-equal to ``waterfilling``.

    Hits are free (no state change), so the batch path reduces to the
    classification pass plus scalar work on misses and upgrades only —
    the fastest policy in the registry on hit-heavy streams.
    """

    name = "waterfilling-kernel"
    _evict_reason = "waterfill"
    _hit_restores = False

    def _scalar_hit(self, page: int, slot: int, current: int) -> None:
        return  # step 1: already satisfied, water levels unchanged

    def _apply_hit_run(self, run_pages, run_slots, run_levels) -> None:
        return  # hits touch no columns
