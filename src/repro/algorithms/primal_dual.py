"""Online primal-dual fractional weighted paging, with a dual certificate.

The paper's randomized algorithms build on the primal-dual framework of
Bansal-Buchbinder-Naor (reference [5]; the paper's full version also gives
a primal-dual proof of the deterministic result).  This module implements
the framework explicitly for weighted paging (``l = 1``), because its key
practical payoff is a *certificate*: alongside the fractional primal
solution it maintains a feasible solution to the dual LP whose value
lower-bounds **every** solution's cost — so a run can prove its own
competitive ratio without ever computing OPT.

Primal (covering) LP, per Section 2 with ``l = 1``: ``x_p(t)`` = evicted
fraction, constraints ``sum_p x_p(t) >= n - k`` (the binding member of the
subset family) and ``x <= 1``, cost ``w_p`` per unit increase of ``x_p``.
In interval form, each page's lifetime splits at its requests; variable
``x_{p,j}`` is the evicted fraction during interval ``j``.

Dual: a variable ``y_t >= 0`` per request (the covering row raised at
time ``t``) and ``z_{p,j} >= 0`` per interval (the ``x <= 1`` cap), with

    maximize  sum_t (n - k) y_t  -  sum_{p,j} z_{p,j}
    s.t.      sum_{t in interval j of p} y_t  -  z_{p,j}  <=  w_p * C
                                                    for every (p, j)

where ``C = ln(1 + k * eta') / ...`` — concretely, the multiplicative
update ``x_p = eta * (exp(Y_p / w_p) - 1)`` (``Y_p`` = accumulated raise
during the current interval, ``eta = 1/k``) caps at ``x_p = 1`` exactly
when ``Y_p = w_p ln(1 + k)``, so dividing all duals by ``ln(1 + k)``
restores feasibility.  :meth:`PrimalDualWeightedPaging.dual_value`
returns the scaled (feasible) dual objective; weak duality then gives

    dual_value  <=  fractional OPT  <=  integral OPT,

and the classic analysis bounds ``primal <= 2 ln(1 + k) * dual + O(1)``
— both facts are asserted against the exact LP/DP in the test suite.

The primal trajectory coincides with the Section 4.2 solver at ``l = 1``
and ``eta = 1/k`` (same ODE ``dx/dY = (x + eta)/w_p``); this module's
value-add is the dual bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.core.instance import WeightedPagingInstance
from repro.core.requests import RequestSequence
from repro.errors import InfeasibleError, InvalidInstanceError

__all__ = ["PrimalDualState", "PrimalDualWeightedPaging"]

_TOL = 1e-10


@dataclass(frozen=True)
class PrimalDualState:
    """Summary of a primal-dual run."""

    primal_cost: float
    dual_value: float
    n_requests: int

    @property
    def certified_ratio(self) -> float:
        """``primal / dual`` — an *upper bound* on the run's competitive
        ratio that the run proved about itself (no OPT computation)."""
        return self.primal_cost / max(self.dual_value, 1e-12)


class PrimalDualWeightedPaging:
    """Event-driven online primal-dual solver for weighted paging.

    On request ``p_t``: reset ``x_{p_t}`` to 0 (new interval; fetching is
    free).  While ``sum_p x_p < n - k``, raise the dual ``y_t``; every
    page ``p != p_t`` with ``x_p < 1`` follows

        x_p(Y_p) = eta * (exp(Y_p / w_p) - 1),      eta = 1 / k,

    i.e. ``dx/dy = (x_p + eta) / w_p``.  A page whose ``x`` reaches 1 is
    fully evicted; further raise accumulated against its interval is
    absorbed by the cap dual ``z`` (it no longer helps the dual).
    """

    def __init__(self, instance: WeightedPagingInstance) -> None:
        if instance.n_levels != 1:
            raise InvalidInstanceError(
                "the primal-dual solver handles weighted paging (l = 1)"
            )
        self.instance = instance
        self.eta = 1.0 / instance.cache_size
        self._w = instance.weights[:, 0]
        self.reset()

    def reset(self) -> None:
        """Restart from the empty cache."""
        n = self.instance.n_pages
        self._x = np.ones(n, dtype=np.float64)  # evicted fraction
        self._Y = np.zeros(n, dtype=np.float64)  # raise in current interval
        self._requested = np.zeros(n, dtype=bool)
        self._primal = 0.0
        self._raw_dual = 0.0  # sum_t (|S_t| - k + 1) y_t, unscaled
        self._raw_caps = 0.0  # sum z_{p,j}, unscaled
        self._n_requests = 0

    # -- accounting ----------------------------------------------------------
    @property
    def x(self) -> np.ndarray:
        """Current evicted fractions (copy)."""
        return self._x.copy()

    @property
    def primal_cost(self) -> float:
        """Weighted eviction movement so far."""
        return self._primal

    def dual_value(self) -> float:
        """The *feasible* dual objective (scaled by ``1 / ln(1 + k)``)."""
        k = self.instance.cache_size
        return (self._raw_dual - self._raw_caps) / math.log(1.0 + k)

    def state(self) -> PrimalDualState:
        """Snapshot of primal cost, dual value and certified ratio."""
        return PrimalDualState(
            primal_cost=self._primal,
            dual_value=self.dual_value(),
            n_requests=self._n_requests,
        )

    # -- the online step -------------------------------------------------------
    def step(self, page: int) -> None:
        """Process a request for ``page``.

        The covering row raised at time ``t`` is the BBN one:
        ``sum_{p in S_t} x_p >= |S_t| - k + 1`` with
        ``S_t =`` pages requested so far except ``p_t`` — valid because
        ``p_t`` itself must occupy a cache slot, leaving ``k - 1`` for the
        rest.  Never-requested pages are constants (trivially evicted) and
        appear in neither the row nor the dual constraints.
        """
        self.instance.check_page(page)
        k = self.instance.cache_size
        eta = self.eta
        x, Y, w = self._x, self._Y, self._w
        self._n_requests += 1
        self._requested[page] = True

        # Serve: new interval for the requested page, fetch for free.
        x[page] = 0.0
        Y[page] = 0.0

        s_mask = self._requested.copy()
        s_mask[page] = False
        s_idx = np.flatnonzero(s_mask)
        target = float(s_idx.size - k + 1)
        if target <= 0:
            return
        gain = target  # dual coefficient |S_t| - k + 1
        cap = w * math.log(1.0 + k)

        total = float(x[s_idx].sum())
        while total < target - _TOL:
            active = s_mask & (x < 1.0 - _TOL)
            act = np.flatnonzero(active)
            if act.size == 0:
                raise InfeasibleError("no raisable page but constraint unmet")
            shifted = x[act] + eta
            w_act = w[act]
            # Raise until some x hits 1 or the covering row is tight.
            tau_cap = w_act * np.log((1.0 + eta) / shifted)
            tau_max = float(tau_cap.min())
            frozen = total - float(x[act].sum())

            def total_at(tau: float) -> float:
                return frozen + float(
                    (shifted * np.exp(tau / w_act)).sum()
                ) - eta * act.size

            f_max = total_at(tau_max)
            if total_at(0.0) >= target - _TOL:
                break
            if f_max > target:
                tau = float(
                    brentq(lambda s: total_at(s) - target, 0.0, tau_max,
                           xtol=1e-13, rtol=1e-15)
                )
                done = True
            elif f_max >= target - _TOL:
                tau, done = tau_max, True
            else:
                tau, done = tau_max, False

            x_new = np.minimum(shifted * np.exp(tau / w_act) - eta, 1.0)
            self._primal += float(((x_new - x[act]) * w_act).sum())
            x[act] = x_new
            # Every page of S_t accrues y_t against its current interval's
            # dual constraint — including fully-evicted (capped) pages,
            # whose excess is absorbed by the cap dual z to stay feasible.
            Y[s_idx] += tau
            over = Y[s_idx] - cap[s_idx]
            burn = np.minimum(np.maximum(over, 0.0), tau)
            self._raw_dual += gain * tau
            self._raw_caps += float(burn.sum())
            total = float(x[s_idx].sum())
            if done:
                break

    def solve(self, seq: RequestSequence) -> PrimalDualState:
        """Run over a whole sequence; returns the final summary."""
        self.instance.validate_sequence(seq.pages, seq.levels)
        self.reset()
        for p in seq.pages.tolist():
            self.step(p)
        return self.state()
