"""Distribution-free online rounding (Section 4.3, Algorithms 1 and 2).

The composed policies here run the deterministic fractional solver
(:mod:`repro.algorithms.fractional`), quantize its state to the Lemma 4.5
grid, and round online into an integral cache using only the current cache,
the previous and new fractional states, and fresh randomness — no
distribution over cache states is maintained, which is the paper's headline
"distribution-free" property.

**Algorithm 1** (weighted paging, ``l = 1``): scale the evicted fraction
``x_p`` to ``y_p = min(beta * x_p, 1)`` with ``beta = Theta(log k)``; on
each request evict every cached page ``p != p_t`` independently with the
conditional probability ``(y_p(t) - y_p(t-1)) / (1 - y_p(t-1))``; then run
*type-i resets*: for weight classes ``P_i = {w in (2^(i-1), 2^i]}`` from
heaviest to lightest, while the cache holds more than
``ceil(k_{>=i}(t))`` pages of class >= i (where
``k_{>=i} = sum_{p in P_{>=i}} (1 - x_p)`` is the fractional space used by
those classes), evict a page of class exactly ``i``.

**Algorithm 2** (multi-level): the cached copy of each page ``p != p_t``
walks down the level chain — a copy at level ``i`` moves to ``i + 1``
(eviction past ``l``) with probability
``(ubar(p,i,t) - ubar(p,i,t-1)) / (ubar(p,i-1,t) - ubar(p,i,t-1))`` where
``ubar = min(beta * u, 1)`` and ``ubar(p,0) = 1``; the probabilities
exactly simulate the threshold coupling of the paper's "almost product"
distribution ``D(t)``.  Resets generalize per weight class of *copies*,
with ``k_{>=i}(t) = sum_p (1 - u(p, j_p(i), t))`` over the per-page prefix
``j_p(i)`` of copies with weight ``> 2^(i-1)``.

Cost convention: when a copy chains down several levels within one request
the cache performs a single replacement, so the charge is the eviction of
the *original* copy — at most what the paper's per-move accounting pays.

With ``l = 1``, Algorithm 2 degenerates exactly to Algorithm 1 — given the
same random stream both make identical decisions (tested).
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import Policy, register_policy
from repro.algorithms.quantize import default_delta, quantize_state
from repro.errors import InvalidInstanceError

__all__ = [
    "default_beta",
    "RandomizedWeightedPagingPolicy",
    "RandomizedMultiLevelPolicy",
]

_TOL = 1e-12
_CEIL_SLACK = 1e-9


def default_beta(cache_size: int) -> float:
    """The paper's aggressiveness factor ``beta = 4 log k`` (floored at 4)."""
    return 4.0 * max(1.0, math.log(cache_size))


def _ceil_count(x: float) -> int:
    """``ceil`` with a little slack against floating-point drizzle."""
    return int(math.ceil(x - _CEIL_SLACK))


class _RoundingBase(Policy):
    """Shared plumbing: fractional source, quantizer, class tables, extras.

    ``source`` defaults to the paper's online fractional solver
    (:class:`~repro.algorithms.sources.SolverSource` with the given
    ``eta``); pass a :class:`~repro.algorithms.sources.TrajectorySource`
    to round any externally computed fractional solution — the rounding is
    source-agnostic (Section 4.3).
    """

    #: Reset victim rules: the paper allows an *arbitrary* class-i page;
    #: these are the obvious instantiations (E9 ablates them).
    VICTIM_RULES = ("max-u", "min-u", "random", "first")

    def __init__(
        self,
        *,
        beta: float | None = None,
        eta: float | None = None,
        delta: float | None = None,
        source=None,
        victim_rule: str = "max-u",
    ) -> None:
        super().__init__()
        if beta is not None and beta < 1.0:
            # The coupling needs the integral cache to evict at least as
            # aggressively as the fractional solution (ubar >= u); with
            # beta < 1 the class resets can no longer restore feasibility.
            raise ValueError(f"beta must be >= 1, got {beta}")
        if source is not None and eta is not None:
            raise ValueError("pass eta or a custom source, not both")
        if victim_rule not in self.VICTIM_RULES:
            raise ValueError(
                f"victim_rule must be one of {self.VICTIM_RULES}, got {victim_rule!r}"
            )
        self._beta_arg = beta
        self._eta_arg = eta
        self._delta_arg = delta
        self._source_arg = source
        self.victim_rule = victim_rule

    def _pick_victim(self, candidates: list, u_values: list[float]):
        """Choose among equally-legal reset victims per the configured rule."""
        if self.victim_rule == "first":
            return candidates[0]
        if self.victim_rule == "random":
            return candidates[int(self.rng.integers(0, len(candidates)))]
        paired = list(zip(u_values, candidates))
        if self.victim_rule == "max-u":
            return max(paired)[1]
        return min(paired)[1]

    def bind(self, instance, cache, rng) -> None:
        from repro.algorithms.sources import SolverSource

        super().bind(instance, cache, rng)
        self.beta = (
            self._beta_arg
            if self._beta_arg is not None
            else default_beta(instance.cache_size)
        )
        self.delta = (
            self._delta_arg if self._delta_arg is not None else default_delta(instance)
        )
        self.source = (
            self._source_arg
            if self._source_arg is not None
            else SolverSource(eta=self._eta_arg)
        )
        self.source.reset(instance)
        self._u_prev = self._snap(self.source.u)
        self._fractional_z = 0.0
        self._fractional_y = 0.0
        # Weight classes of every copy and the largest class present.
        self._classes = instance.weight_classes()  # (n, l)
        self._max_class = int(self._classes.max())
        # j_p(i): number of levels of page p with class >= i (a prefix,
        # since weights are non-increasing across levels).
        self._prefix_len = np.stack(
            [
                (self._classes >= i).sum(axis=1)
                for i in range(1, self._max_class + 1)
            ]
        )  # (max_class, n)

    def _snap(self, u: np.ndarray) -> np.ndarray:
        if self.delta == 0:
            return u
        return quantize_state(u, self.delta)

    def _advance_fraction(
        self, t: int, page: int, level: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance the fractional source; returns (u_prev, u_new) quantized."""
        z_cost, y_cost = self.source.step(t, page, level)
        self._fractional_z += z_cost
        self._fractional_y += y_cost
        u_prev = self._u_prev
        u_new = self._snap(self.source.u)
        self._u_prev = u_new
        return u_prev, u_new

    def _k_ge(self, u_new: np.ndarray) -> np.ndarray:
        """``k_{>=i}(t)`` for i = 1..max_class, from the quantized state.

        Entry ``i-1`` is the fractional in-cache mass of copies with weight
        class >= i: ``sum_p (1 - u(p, j_p(i)))`` over pages with a
        qualifying prefix.
        """
        out = np.empty(self._max_class, dtype=np.float64)
        pages = np.arange(u_new.shape[0])
        for i in range(1, self._max_class + 1):
            jp = self._prefix_len[i - 1]
            has = jp > 0
            out[i - 1] = (1.0 - u_new[pages[has], jp[has] - 1]).sum()
        return out

    def _fix_overflow(self, page: int) -> None:
        """Safety pass: guarantee a free slot for the incoming page.

        The class-exact reset sweep can strand a violation when the only
        copy of the violated class belongs to ``p_t`` (in the multi-level
        setting the requested page contributes *different* amounts to
        adjacent ``k_{>=i}`` prefixes, so Lemma 4.10's cascade argument —
        which is stated for weighted paging — does not transfer
        verbatim).  In that rare case we evict the cheapest non-requested
        copy, charged under the distinct reason ``reset-fix``.  At the
        paper's ``beta = 4 log k`` this never fires on measured runs
        (resets themselves are already exp(-beta/4)-rare); it exists so
        feasibility is unconditional for any ``beta >= 1``.
        """
        cache = self.cache
        k = self.instance.cache_size
        while page not in cache and len(cache) >= k:
            victims = [(p, j) for p, j in cache.items() if p != page]
            victim = min(
                victims, key=lambda pj: self.instance.weight(pj[0], pj[1])
            )
            cache.evict(victim[0], reason="reset-fix")

    def extras(self) -> dict[str, float]:
        return {
            "fractional_z_cost": self._fractional_z,
            "fractional_y_cost": self._fractional_y,
            "beta": self.beta,
        }


@register_policy
class RandomizedWeightedPagingPolicy(_RoundingBase):
    """Algorithm 1 composed with the fractional solver (``l = 1`` only).

    The paper's simple O(log^2 k) randomized algorithm for weighted paging:
    an O(log k) fractional solver rounded online at an O(log k) loss.
    """

    name = "randomized-weighted"

    def bind(self, instance, cache, rng) -> None:
        if instance.n_levels != 1:
            raise InvalidInstanceError(
                "RandomizedWeightedPagingPolicy requires a single-level "
                f"instance; got l = {instance.n_levels} "
                "(use RandomizedMultiLevelPolicy)"
            )
        super().bind(instance, cache, rng)

    def serve(self, t: int, page: int, level: int) -> None:
        cache = self.cache
        u_prev, u_new = self._advance_fraction(t, page, level)
        x_prev = u_prev[:, 0]
        x_new = u_new[:, 0]
        y_prev = np.minimum(self.beta * x_prev, 1.0)
        y_new = np.minimum(self.beta * x_new, 1.0)

        # Independent conditional evictions for cached pages other than p_t.
        for p in list(cache.pages()):
            if p == page:
                continue
            num = y_new[p] - y_prev[p]
            if num <= _TOL:
                continue
            denom = 1.0 - y_prev[p]
            prob = 1.0 if denom <= _TOL else min(1.0, num / denom)
            if self.rng.random() < prob:
                cache.evict(p, reason="local-rule")

        self._resets(page, u_new)
        self._fix_overflow(page)

        if page not in cache:
            cache.fetch(page, 1)

    def _resets(self, page: int, u_new: np.ndarray) -> None:
        """Type-i resets, heaviest class first (Algorithm 1 lines 9-13)."""
        cache = self.cache
        x_new = u_new[:, 0]
        classes = self._classes[:, 0]
        k_ge = self._k_ge(u_new)
        # Per-class cached counts, counting the incoming p_t virtually.
        counts = np.zeros(self._max_class + 2, dtype=np.int64)
        for p in cache.pages():
            counts[classes[p]] += 1
        if page not in cache:
            counts[classes[page]] += 1
        cum_ge = 0
        for i in range(self._max_class, 0, -1):
            cum_ge += int(counts[i])
            cap = _ceil_count(float(k_ge[i - 1]))
            while cum_ge > cap:
                victims = [
                    p for p in cache.pages() if p != page and classes[p] == i
                ]
                if not victims:
                    break
                victim = self._pick_victim(victims, [x_new[p] for p in victims])
                cache.evict(victim, reason="reset")
                counts[i] -= 1
                cum_ge -= 1


@register_policy
class RandomizedMultiLevelPolicy(_RoundingBase):
    """Algorithm 2 composed with the fractional solver (any ``l``).

    The paper's O(log^2 k) randomized algorithm for weighted multi-level
    paging (and, through the Lemma 2.1 reduction, for writeback-aware
    caching); Theorem 1.2 / 1.5.
    """

    name = "randomized-multilevel"

    @staticmethod
    def chain_walk(
        ubar_prev_row: np.ndarray,
        ubar_new_row: np.ndarray,
        start_level: int,
        rng: np.random.Generator,
    ) -> int:
        """Walk one cached copy down the level chain (Algorithm 2 line 9-12).

        A copy at level ``i`` moves to ``i + 1`` with probability
        ``(ubar_new(i) - ubar_prev(i)) / (ubar_new(i-1) - ubar_prev(i))``
        (``ubar(0) = 1``); a return value of ``l + 1`` means evicted.
        These sequential conditional probabilities exactly simulate the
        threshold coupling with the paper's product distribution ``D(t)``
        (Lemma 4.14) — tested statistically in the test suite.
        """
        l = int(ubar_prev_row.size)
        i = start_level
        while i <= l:
            num = ubar_new_row[i - 1] - ubar_prev_row[i - 1]
            if num <= _TOL:
                break
            upper = 1.0 if i == 1 else ubar_new_row[i - 2]
            denom = upper - ubar_prev_row[i - 1]
            prob = 1.0 if denom <= _TOL else min(1.0, num / denom)
            if rng.random() < prob:
                i += 1
            else:
                break
        return i

    def serve(self, t: int, page: int, level: int) -> None:
        cache = self.cache
        l = self.instance.n_levels
        u_prev, u_new = self._advance_fraction(t, page, level)
        ubar_prev = np.minimum(self.beta * u_prev, 1.0)
        ubar_new = np.minimum(self.beta * u_new, 1.0)

        # Walk every cached copy (p != p_t) down the level chain.
        for p, i0 in list(cache.items()):
            if p == page:
                continue
            i = self.chain_walk(ubar_prev[p], ubar_new[p], i0, self.rng)
            if i > l:
                cache.evict(p, reason="local-rule")
            elif i != i0:
                # One physical replacement for the whole chain: the cache
                # evicts the original copy once and fetches the final one.
                cache.replace(p, i, reason="local-rule")

        # The requested page: evict a lower copy, remember the target level.
        current = cache.level_of(page)
        if current is not None and current > level:
            cache.evict(page, reason="upgrade")
            current = None
        target_level = current if current is not None else level

        self._resets(page, target_level, u_new)
        self._fix_overflow(page)

        if page not in cache:
            cache.fetch(page, target_level)

    def _resets(self, page: int, page_level: int, u_new: np.ndarray) -> None:
        """Type-i resets over copy weight classes (Algorithm 2 lines 14-18)."""
        cache = self.cache
        classes = self._classes
        k_ge = self._k_ge(u_new)
        counts = np.zeros(self._max_class + 2, dtype=np.int64)
        for p, j in cache.items():
            counts[classes[p, j - 1]] += 1
        if page not in cache:
            counts[classes[page, page_level - 1]] += 1
        cum_ge = 0
        for i in range(self._max_class, 0, -1):
            cum_ge += int(counts[i])
            cap = _ceil_count(float(k_ge[i - 1]))
            while cum_ge > cap:
                victims = [
                    (p, j)
                    for p, j in cache.items()
                    if p != page and classes[p, j - 1] == i
                ]
                if not victims:
                    break
                victim_page, _ = self._pick_victim(
                    victims, [u_new[p, j - 1] for p, j in victims]
                )
                cache.evict(victim_page, reason="reset")
                counts[i] -= 1
                cum_ge -= 1
