"""Frequency- and recency-family baselines: LFU, CLOCK, GDSF.

These round out the comparator set to what an OSS cache library ships:

* :class:`LFUPolicy` — least-frequently-used (ties by recency of fetch),
  the classic frequency-based policy;
* :class:`ClockPolicy` — the second-chance/CLOCK approximation of LRU
  used by real VM subsystems (one reference bit, rotating hand);
* :class:`GDSFPolicy` — Greedy-Dual-Size-Frequency (size 1 here):
  priority ``L + frequency * weight`` with an inflation floor ``L`` set to
  each evicted victim's priority — the weighted+frequency hybrid deployed
  in Squid-style web caches.

All are lifted to multi-level instances with the same in-place upgrade
rule as :mod:`repro.algorithms.classical`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.algorithms.base import register_policy
from repro.algorithms.classical import _EvictingPolicy

__all__ = ["LFUPolicy", "ClockPolicy", "GDSFPolicy"]


@register_policy
class LFUPolicy(_EvictingPolicy):
    """Least-frequently-used eviction; frequency persists across upgrades."""

    name = "lfu"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._freq: dict[int, int] = {}
        self._tick = 0
        self._last_touch: dict[int, int] = {}

    def _touch(self, page: int) -> None:
        self._freq[page] = self._freq.get(page, 0) + 1
        self._last_touch[page] = self._tick
        self._tick += 1

    def _on_hit(self, t: int, page: int) -> None:
        self._touch(page)

    def _on_fetch(self, t: int, page: int) -> None:
        self._touch(page)

    def _on_evicted(self, page: int) -> None:
        self._freq.pop(page, None)
        self._last_touch.pop(page, None)

    def _choose_victim(self, t: int, page: int) -> int:
        return min(
            self.cache.pages(),
            key=lambda q: (self._freq.get(q, 0), self._last_touch.get(q, -1)),
        )


@register_policy
class ClockPolicy(_EvictingPolicy):
    """Second-chance CLOCK: a rotating hand clears reference bits."""

    name = "clock"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._ring: OrderedDict[int, bool] = OrderedDict()  # page -> ref bit

    def _on_hit(self, t: int, page: int) -> None:
        if page in self._ring:
            self._ring[page] = True

    def _on_fetch(self, t: int, page: int) -> None:
        if page not in self._ring:
            self._ring[page] = True

    def _on_evicted(self, page: int) -> None:
        self._ring.pop(page, None)

    def _choose_victim(self, t: int, page: int) -> int:
        # Sweep: give referenced pages a second chance (move to the back
        # with the bit cleared) until an unreferenced page comes up.
        while True:
            victim, referenced = next(iter(self._ring.items()))
            if referenced:
                del self._ring[victim]
                self._ring[victim] = False
            else:
                return victim


@register_policy
class GDSFPolicy(_EvictingPolicy):
    """Greedy-Dual-Size-Frequency with unit sizes.

    Priority ``H(p) = L + freq(p) * w(p)``; evict the minimum-priority
    page and raise the floor ``L`` to its priority.  Combines weight
    awareness (like Landlord) with frequency (like LFU).
    """

    name = "gdsf"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._L = 0.0
        self._freq: dict[int, int] = {}
        self._priority: dict[int, float] = {}

    def _weight(self, page: int) -> float:
        level = self.cache.level_of(page)
        return self.instance.weight(page, level if level is not None else 1)

    def _bump(self, page: int) -> None:
        self._freq[page] = self._freq.get(page, 0) + 1
        self._priority[page] = self._L + self._freq[page] * self._weight(page)

    def _on_hit(self, t: int, page: int) -> None:
        self._bump(page)

    def _on_fetch(self, t: int, page: int) -> None:
        self._bump(page)

    def _on_evicted(self, page: int) -> None:
        self._freq.pop(page, None)
        self._priority.pop(page, None)

    def _choose_victim(self, t: int, page: int) -> int:
        victim = min(self.cache.pages(), key=lambda q: self._priority[q])
        self._L = self._priority[victim]
        return victim
