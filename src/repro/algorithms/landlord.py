"""Landlord / greedy-dual: the classical k-competitive weighted baseline.

Landlord (Young; equivalently greedy-dual for unit sizes) maintains a
credit for each cached page, initialized to the page's weight.  On a miss
with a full cache it lowers all credits by the minimum credit and evicts a
zero-credit page; on a hit it restores the page's credit.  It is
k-competitive for weighted paging and is the natural open-source comparator
for the paper's algorithms (it is *not* writeback- or level-aware beyond
using the weight of the currently cached copy).

The uniform credit decrement is the same structure as water-filling's
uniform raise, so both implementations here use the global-offset trick
from :mod:`repro.algorithms.waterfilling`: instead of mutating every
credit per eviction round (O(k) float subtractions whose accumulated
drift used to require a ``credit <= 1e-12`` epsilon compare to find the
victim), each page stores the *death key* ``credit_at_set + offset`` —
the cumulative decrement at which its credit hits zero.  Victims are the
exact minimum ``(death, seq)``; no epsilon, no drift, and the choice is
bit-identical across platforms.

Two interchangeable implementations:

* :class:`LandlordRefPolicy` (``landlord-ref``) — the direct O(cache
  size)-per-eviction scan, kept as the request-by-request equivalence
  oracle;
* :class:`LandlordPolicy` (``landlord``) — O(log k) per eviction via a
  lazy-deletion heap keyed on ``(death, seq)``.

Both use the identical deterministic tie-break (credit-set sequence
number), so their behavior is *exactly* equal — a property the test
suite checks request-by-request.
"""

from __future__ import annotations

import heapq

from repro.algorithms.base import Policy, register_policy
from repro.errors import CacheInvariantError

__all__ = ["LandlordPolicy", "LandlordRefPolicy"]


@register_policy
class LandlordRefPolicy(Policy):
    """Reference Landlord: O(cache size) victim scan, exact arithmetic."""

    name = "landlord-ref"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        # Cumulative credit decrement applied (conceptually) to every
        # cached page; a page whose credit was set to w when the offset
        # was L dies when the offset reaches w + L.
        self._offset = 0.0
        self._death: dict[int, float] = {}
        self._seq: dict[int, int] = {}
        self._counter = 0

    def _set_credit(self, page: int, level: int) -> None:
        self._death[page] = self.instance.weight(page, level) + self._offset
        self._seq[page] = self._counter
        self._counter += 1

    def serve(self, t: int, page: int, level: int) -> None:
        cache = self.cache
        current = cache.level_of(page)
        if current is not None:
            if current <= level:
                # Hit: restore credit to the cached copy's full weight.
                self._set_credit(page, current)
            else:
                cache.replace(page, level, reason="upgrade")
                self._set_credit(page, level)
            return
        while cache.is_full:
            victim = min(
                cache.pages(), key=lambda q: (self._death[q], self._seq[q])
            )
            self._offset = self._death[victim]
            cache.evict(victim, reason="capacity")
            del self._death[victim]
            del self._seq[victim]
        cache.fetch(page, level)
        self._set_credit(page, level)


@register_policy
class LandlordPolicy(Policy):
    """Landlord with in-place level upgrades for multi-level instances.

    Heap-accelerated; behaviorally identical to :class:`LandlordRefPolicy`.
    """

    name = "landlord"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._offset = 0.0
        # Heap of (death key = credit + offset_at_set, seq, page); stale
        # entries (superseded by a later credit restore) are skipped via
        # the live-entry map.
        self._heap: list[tuple[float, int, int]] = []
        self._live: dict[int, int] = {}  # page -> live seq number
        self._counter = 0

    def _set_credit(self, page: int, level: int) -> None:
        key = self.instance.weight(page, level) + self._offset
        self._live[page] = self._counter
        heapq.heappush(self._heap, (key, self._counter, page))
        self._counter += 1
        # Every hit pushes a fresh entry, so on hit-heavy streams the
        # stale tail would otherwise grow O(total requests); compacting
        # at 2x live keeps the heap <= 2k+1 entries with O(1) amortized
        # work per push, and pops the exact same victims (stale entries
        # are never returned).
        if len(self._heap) > 2 * len(self._live):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live entries only (drop the stale tail)."""
        live = self._live
        self._heap = [e for e in self._heap if live.get(e[2]) == e[1]]
        heapq.heapify(self._heap)

    def _pop_victim(self) -> tuple[float, int]:
        heap = self._heap
        while heap:
            key, seq, page = heapq.heappop(heap)
            if self._live.get(page) == seq:
                del self._live[page]
                return key, page
        cache = self.cache
        raise CacheInvariantError(
            f"policy {self.name!r}: eviction heap exhausted while the cache "
            f"holds {len(cache)}/{cache.instance.cache_size} copies — "
            "policy state is corrupt (e.g. a bad restore)"
        )

    def serve(self, t: int, page: int, level: int) -> None:
        cache = self.cache
        current = cache.level_of(page)
        if current is not None:
            if current <= level:
                # Hit: restore credit to the cached copy's full weight.
                self._set_credit(page, current)
            else:
                cache.replace(page, level, reason="upgrade")
                self._set_credit(page, level)
            return
        while cache.is_full:
            key, victim = self._pop_victim()
            self._offset = key  # the cumulative decrement that zeroed it
            cache.evict(victim, reason="capacity")
        cache.fetch(page, level)
        self._set_credit(page, level)
