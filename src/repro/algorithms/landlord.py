"""Landlord / greedy-dual: the classical k-competitive weighted baseline.

Landlord (Young; equivalently greedy-dual for unit sizes) maintains a
credit for each cached page, initialized to the page's weight.  On a miss
with a full cache it lowers all credits by the minimum credit and evicts a
zero-credit page; on a hit it restores the page's credit.  It is
k-competitive for weighted paging and is the natural open-source comparator
for the paper's algorithms (it is *not* writeback- or level-aware beyond
using the weight of the currently cached copy).
"""

from __future__ import annotations

from repro.algorithms.base import Policy, register_policy

__all__ = ["LandlordPolicy"]


@register_policy
class LandlordPolicy(Policy):
    """Landlord with in-place level upgrades for multi-level instances."""

    name = "landlord"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        self._credit: dict[int, float] = {}

    def serve(self, t: int, page: int, level: int) -> None:
        cache = self.cache
        current = cache.level_of(page)
        if current is not None:
            if current <= level:
                # Hit: restore credit to the cached copy's full weight.
                self._credit[page] = self.instance.weight(page, current)
            else:
                cache.replace(page, level, reason="upgrade")
                self._credit[page] = self.instance.weight(page, level)
            return
        while cache.is_full:
            delta = min(self._credit[q] for q in cache.pages())
            victim = None
            for q in cache.pages():
                self._credit[q] -= delta
                if victim is None and self._credit[q] <= 1e-12:
                    victim = q
            cache.evict(victim, reason="capacity")
            self._credit.pop(victim, None)
        cache.fetch(page, level)
        self._credit[page] = self.instance.weight(page, level)
