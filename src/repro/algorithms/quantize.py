"""Fractional-state quantization (Lemma 4.5).

The rounding analysis needs the fractional solution to move on a grid:
every ``x_p(t)`` (here: every prefix value ``u(p, i, t)``) is an integer
multiple of ``delta = 1 / (4k)``, losing at most a factor of two in cost.

Rounding *up* to the grid preserves every property the rounding algorithm
relies on:

* covering — ``sum_p u(p, l) >= n - k`` (each term only grows);
* monotone prefixes — ``u(p, i-1) >= u(p, i)`` (ceiling is monotone);
* served requests — exact zeros stay zero;
* the box — values are capped at 1 (which is itself a grid point since
  ``4k * delta = 1``).
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import MultiLevelInstance

__all__ = ["default_delta", "quantize_state", "movement_cost"]

_FP_SLACK = 1e-9


def default_delta(instance: MultiLevelInstance) -> float:
    """The paper's grid pitch ``delta = 1 / (4k)``."""
    return 1.0 / (4.0 * instance.cache_size)


def quantize_state(u: np.ndarray, delta: float) -> np.ndarray:
    """Snap a prefix state ``u`` up to multiples of ``delta``, capped at 1.

    ``delta`` must divide 1 (``1 / delta`` integral) so that the cap stays
    on the grid.
    """
    if delta <= 0 or delta > 1:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    inv = 1.0 / delta
    if abs(inv - round(inv)) > 1e-6:
        raise ValueError(f"1/delta must be integral, got 1/{delta} = {inv}")
    q = np.ceil(u / delta - _FP_SLACK) * delta
    return np.minimum(np.maximum(q, 0.0), 1.0)


def movement_cost(
    u_prev: np.ndarray, u_new: np.ndarray, weights: np.ndarray
) -> float:
    """LP-objective (z) cost of moving from ``u_prev`` to ``u_new``.

    Charges ``w(p, i)`` per unit *increase* of ``u(p, i)`` — decreases
    (fetching) are free, matching the paper's LP.
    """
    return float((np.maximum(u_new - u_prev, 0.0) * weights).sum())
