"""Fractional-solution sources for the online rounding.

The paper emphasizes that its rounding "is independent of the way the
fractional solution is generated" (Section 4.3).  This module makes that
pluggable: the rounding policies consume a :class:`FractionalSource`,
which is either

* :class:`SolverSource` — the paper's online fractional algorithm
  (Section 4.2), the default; or
* :class:`TrajectorySource` — any precomputed fractional trajectory, e.g.
  the *offline LP optimum*, replayed step by step.  Rounding the offline
  optimum online demonstrates the Theorem 1.4 discussion: the rounding
  layer alone determines the loss over the fractional cost.

Trajectories produced by arbitrary LPs may *prefetch* (decrease ``u`` of
pages other than the requested one), which the local rounding rule cannot
consume — the paper's WLOG assumes fractional fetches happen only for the
requested page.  :func:`lazify_trajectory` enforces that WLOG explicitly:
fetches of non-requested pages are deferred to their next request, which
never increases the movement cost (fetching is free and deferring an
eviction's reversal only removes movement).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence
from repro.errors import InfeasibleError, InvalidRequestError

__all__ = [
    "FractionalSource",
    "SolverSource",
    "TrajectorySource",
    "lazify_trajectory",
]


class FractionalSource(ABC):
    """A step-by-step supplier of fractional prefix states ``u``."""

    @abstractmethod
    def reset(self, instance: MultiLevelInstance) -> None:
        """Prepare for a fresh run on ``instance``."""

    @abstractmethod
    def step(self, t: int, page: int, level: int) -> tuple[float, float]:
        """Advance past request ``t``; returns ``(z_cost, y_cost)``."""

    @property
    @abstractmethod
    def u(self) -> np.ndarray:
        """Current ``(n, l)`` prefix state (a copy)."""


class SolverSource(FractionalSource):
    """The Section 4.2 online fractional solver as a source (default)."""

    def __init__(self, *, eta: float | None = None) -> None:
        self._eta = eta
        self._solver = None

    def reset(self, instance: MultiLevelInstance) -> None:
        from repro.algorithms.fractional import FractionalMultiLevelSolver

        self._solver = FractionalMultiLevelSolver(instance, eta=self._eta)

    def step(self, t: int, page: int, level: int) -> tuple[float, float]:
        step = self._solver.step(page, level)
        return step.z_cost, step.y_cost

    @property
    def u(self) -> np.ndarray:
        return self._solver.u


class TrajectorySource(FractionalSource):
    """Replay a precomputed fractional trajectory ``u[(T+1), n, l]``.

    ``u[0]`` must be the initial all-ones state; ``u[t + 1]`` the state
    after request ``t``.  Each step verifies that the state actually
    serves the request (``u[t+1, p_t, i_t - 1] == 0``) and reports the
    z / y movement costs of the transition.
    """

    def __init__(self, trajectory: np.ndarray, *, lazy: bool = False,
                 seq: RequestSequence | None = None) -> None:
        traj = np.asarray(trajectory, dtype=np.float64)
        if traj.ndim != 3:
            raise InvalidRequestError(
                f"trajectory must be (T+1, n, l), got shape {traj.shape}"
            )
        if lazy:
            if seq is None:
                raise InvalidRequestError("lazy=True requires the request sequence")
            traj = lazify_trajectory(traj, seq)
        self._traj = traj
        self._t = 0
        self._weights: np.ndarray | None = None

    def reset(self, instance: MultiLevelInstance) -> None:
        n, l = instance.n_pages, instance.n_levels
        if self._traj.shape[1:] != (n, l):
            raise InvalidRequestError(
                f"trajectory shape {self._traj.shape[1:]} does not match "
                f"instance (n={n}, l={l})"
            )
        self._weights = instance.weights
        self._t = 0

    def step(self, t: int, page: int, level: int) -> tuple[float, float]:
        if self._t + 1 >= self._traj.shape[0]:
            raise InfeasibleError("trajectory exhausted before the sequence ended")
        prev = self._traj[self._t]
        new = self._traj[self._t + 1]
        self._t += 1
        if new[page, level - 1] > 1e-6:
            raise InfeasibleError(
                f"trajectory does not serve request t={t} "
                f"(u[{page},{level}] = {new[page, level - 1]:.4f})"
            )
        delta = new - prev
        z_cost = float((np.maximum(delta, 0.0) * self._weights).sum())
        # y movement: y(p, i) = u(p, i-1) - u(p, i); eviction side only.
        y_prev = np.concatenate([np.ones((prev.shape[0], 1)), prev[:, :-1]], axis=1) - prev
        y_new = np.concatenate([np.ones((new.shape[0], 1)), new[:, :-1]], axis=1) - new
        y_cost = float((np.maximum(y_prev - y_new, 0.0) * self._weights).sum())
        return z_cost, y_cost

    @property
    def u(self) -> np.ndarray:
        return self._traj[self._t].copy()


def lazify_trajectory(u: np.ndarray, seq: RequestSequence) -> np.ndarray:
    """Defer non-requested pages' fetches to their next request.

    Returns a trajectory ``L`` with, for every ``t``:

    * ``L[t+1, q] = max(L[t, q], u[t+1, q])`` element-wise for ``q != p_t``
      (evictions applied immediately, fetches deferred),
    * ``L[t+1, p_t, j] = u[t+1, p_t, j]`` (the requested page follows the
      original solution, in particular serving the request).

    ``L`` stays feasible (it dominates ``u`` outside the requested page,
    so covering and monotonicity carry over) and its total ``z``-cost
    never exceeds the original's.
    """
    if u.ndim != 3 or u.shape[0] != len(seq) + 1:
        raise InvalidRequestError(
            f"trajectory shape {u.shape} inconsistent with sequence length {len(seq)}"
        )
    L = u.copy()
    for t, req in enumerate(seq):
        prev = L[t]
        new = np.maximum(prev, u[t + 1])
        new[req.page] = u[t + 1, req.page]
        L[t + 1] = new
    return L
