"""Online algorithms: the paper's, plus classical baselines.

========================  =====================================================
Policy                    What it is
========================  =====================================================
``waterfilling``          Section 4.1 deterministic O(k) (reference impl)
``waterfilling-heap``     same algorithm, O(log k)-per-miss heap variant
``waterfilling-kernel``   same algorithm, columnar numpy batch kernel
``randomized-weighted``   Algorithm 1 + fractional solver (weighted paging)
``randomized-multilevel`` Algorithm 2 + fractional solver (Theorem 1.2/1.5)
``lru`` / ``fifo`` /
``random`` / ``marking``
/ ``randomized-marking``  classical weight-oblivious baselines
``landlord``              k-competitive weighted baseline (O(log k) heap)
``landlord-ref``          same algorithm, O(k)-scan reference oracle
``landlord-kernel``       same algorithm, columnar numpy batch kernel
``wb-lru``                dirty-oblivious LRU on a writeback cache
``wb-landlord``           dirty-aware Landlord heuristic
``rw[<inner>]``           any multi-level policy lifted to writeback caching
                          via the Lemma 2.1 reduction
========================  =====================================================
"""

from repro.algorithms.base import (
    Policy,
    WritebackPolicy,
    policy_registry,
    register_policy,
)
from repro.algorithms.classical import (
    FIFOPolicy,
    LRUPolicy,
    MarkingPolicy,
    RandomEvictionPolicy,
    RandomizedMarkingPolicy,
)
from repro.algorithms.frequency import ClockPolicy, GDSFPolicy, LFUPolicy
from repro.algorithms.fractional import (
    FractionalMultiLevelSolver,
    FractionalStep,
    FractionalTrajectory,
)
from repro.algorithms.kernels import (
    KernelLandlordPolicy,
    KernelWaterFillingPolicy,
)
from repro.algorithms.landlord import LandlordPolicy, LandlordRefPolicy
from repro.algorithms.primal_dual import (
    PrimalDualState,
    PrimalDualWeightedPaging,
)
from repro.algorithms.quantize import default_delta, movement_cost, quantize_state
from repro.algorithms.rounding import (
    RandomizedMultiLevelPolicy,
    RandomizedWeightedPagingPolicy,
    default_beta,
)
from repro.algorithms.sources import (
    FractionalSource,
    SolverSource,
    TrajectorySource,
    lazify_trajectory,
)
from repro.algorithms.waterfilling import HeapWaterFillingPolicy, WaterFillingPolicy
from repro.algorithms.writeback_adapters import (
    RWAdapterPolicy,
    WBLandlordPolicy,
    WBLRUPolicy,
)

__all__ = [
    "Policy",
    "WritebackPolicy",
    "policy_registry",
    "register_policy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomEvictionPolicy",
    "MarkingPolicy",
    "RandomizedMarkingPolicy",
    "LandlordPolicy",
    "LandlordRefPolicy",
    "KernelLandlordPolicy",
    "KernelWaterFillingPolicy",
    "LFUPolicy",
    "ClockPolicy",
    "GDSFPolicy",
    "WaterFillingPolicy",
    "HeapWaterFillingPolicy",
    "FractionalMultiLevelSolver",
    "FractionalStep",
    "FractionalTrajectory",
    "PrimalDualState",
    "PrimalDualWeightedPaging",
    "default_delta",
    "movement_cost",
    "quantize_state",
    "default_beta",
    "RandomizedWeightedPagingPolicy",
    "RandomizedMultiLevelPolicy",
    "FractionalSource",
    "SolverSource",
    "TrajectorySource",
    "lazify_trajectory",
    "RWAdapterPolicy",
    "WBLRUPolicy",
    "WBLandlordPolicy",
]
