"""The paper's deterministic fractional O(log k)-competitive algorithm.

Section 4.2, in the prefix variables ``u(p, i) = 1 - sum_{j<=i} y(p, j)``
(``y(p, i)`` = cached fraction of copy ``(p, i)``; ``u(p, 0) = 1``):

on request ``(p_t, i_t)``:

1. set ``u(p_t, j) = 0`` for ``j >= i_t`` (serve the request: evict lower
   copies, fetch enough of ``(p_t, i_t)``), leaving ``u(p_t, j)`` for
   ``j < i_t`` unchanged;
2. while the cache is fractionally over-full (``sum_q u(q, l) < n - k``),
   for every page ``q != p_t`` with some cached mass, decrease its lowest
   positive copy ``y(q, i_q)`` at rate ``(u(q, i_q) + eta) / w(q, i_q)``,
   with ``eta = 1/k``.

The continuous dynamics have the closed form
``u(tau) = (u0 + eta) * exp(tau / w) - eta`` for the rising tail of each
page, so this implementation integrates the process *exactly* by
event-driven simulation: between events (a ``y`` hitting zero, i.e. the
tail absorbing the next level up, or the total mass reaching ``n - k``)
every tail follows its exponential, and the stopping time is found by
``scipy.optimize.brentq`` on the monotone total-mass function.

Costs are tracked in both accountings used in the paper:

* ``z_cost`` — the LP objective: each *increase* of ``u(p, i)`` costs
  ``w(p, i)`` per unit (Section 2's linear program);
* ``y_cost`` — weighted movement of the ``y`` variables (evictions),
  including the free-in-LP evictions of lower copies in step 1.

Under the geometric-weights normalization the two agree within a factor 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.core.instance import MultiLevelInstance
from repro.core.requests import RequestSequence
from repro.errors import InfeasibleError

__all__ = ["FractionalStep", "FractionalTrajectory", "FractionalMultiLevelSolver"]

_TOL = 1e-10


@dataclass(frozen=True)
class FractionalStep:
    """Per-request outcome of the fractional solver.

    ``serve_y_cost`` is the step-1 component of ``y_cost`` (mass of lower
    copies displaced while serving the request) — charged nothing by the
    LP and excluded from the Section 4.2 potential argument (Lemma 4.3);
    ``y_cost - serve_y_cost`` is the step-2 eviction movement the analysis
    bounds.
    """

    z_cost: float
    y_cost: float
    serve_y_cost: float = 0.0

    @property
    def evict_y_cost(self) -> float:
        """Step-2 weighted eviction movement (the Lemma 4.4 quantity)."""
        return self.y_cost - self.serve_y_cost


@dataclass(frozen=True)
class FractionalTrajectory:
    """A full fractional run: ``u[t]`` is the state after request ``t``.

    ``u`` has shape ``(T + 1, n, l)``; ``u[0]`` is the initial (empty
    cache) state where every entry is 1.
    """

    u: np.ndarray
    z_costs: np.ndarray
    y_costs: np.ndarray

    @property
    def total_z_cost(self) -> float:
        """Total LP-objective cost of the run."""
        return float(self.z_costs.sum())

    @property
    def total_y_cost(self) -> float:
        """Total weighted y-movement (eviction) cost of the run."""
        return float(self.y_costs.sum())

    def __len__(self) -> int:
        return int(self.z_costs.size)


class FractionalMultiLevelSolver:
    """Online deterministic fractional solver (Section 4.2).

    Parameters
    ----------
    instance:
        The multi-level instance.  The analysis assumes geometric level
        weights; the algorithm itself runs on any valid instance.
    eta:
        The additive term in the eviction rate; defaults to the paper's
        ``1 / k``.
    """

    def __init__(self, instance: MultiLevelInstance, *, eta: float | None = None) -> None:
        if eta is not None and eta <= 0:
            raise ValueError(f"eta must be positive, got {eta}")
        self.instance = instance
        self.eta = float(eta) if eta is not None else 1.0 / instance.cache_size
        self._w = instance.weights  # (n, l)
        # Suffix weight sums: _wsuf[:, i] = sum_{j >= i} w[:, j] (0-based).
        self._wsuf = np.cumsum(self._w[:, ::-1], axis=1)[:, ::-1].copy()
        self.reset()

    def reset(self) -> None:
        """Restart from the empty cache (every ``u = 1``)."""
        n, l = self.instance.n_pages, self.instance.n_levels
        self._u = np.ones((n, l), dtype=np.float64)

    # -- state access --------------------------------------------------------
    @property
    def u(self) -> np.ndarray:
        """A copy of the current ``(n, l)`` prefix state."""
        return self._u.copy()

    def total_mass(self) -> float:
        """Current ``sum_q u(q, l)`` (must be >= n - k when feasible)."""
        return float(self._u[:, -1].sum())

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleError` if the state violates the LP."""
        n, k = self.instance.n_pages, self.instance.cache_size
        if self.total_mass() < n - k - 1e-6:
            raise InfeasibleError(
                f"total mass {self.total_mass():.6f} < n - k = {n - k}"
            )
        if np.any(self._u < -1e-9) or np.any(self._u > 1 + 1e-9):
            raise InfeasibleError("u out of [0, 1]")
        if np.any(np.diff(self._u, axis=1) > 1e-9):
            raise InfeasibleError("u not non-increasing across levels")

    # -- the online step -------------------------------------------------------
    def step(self, page: int, level: int) -> FractionalStep:
        """Process request ``(page, level)``; returns the step's costs."""
        self.instance.check_copy(page, level)
        n, l, k = self.instance.n_pages, self.instance.n_levels, self.instance.cache_size
        u, eta = self._u, self.eta
        z_cost = 0.0
        y_cost = 0.0
        serve_y_cost = 0.0

        # Step 1 — serve: u(p_t, j) = 0 for j >= i_t.  The y-accounting
        # charges the eviction of the lower copies' mass (free in the LP).
        lo = level - 1  # first 0-based column to clear
        if u[page, lo] > _TOL:
            prev_col = u[page, lo:].copy()
            # y(p, j) for j > i_t (0-based columns lo+1..l-1):
            # y = u(p, j-1) - u(p, j).
            if lo + 1 < l:
                y_lower = prev_col[:-1] - prev_col[1:]
                serve_y_cost = float((y_lower * self._w[page, lo + 1:]).sum())
                y_cost += serve_y_cost
            u[page, lo:] = 0.0

        # Step 2 — fractionally evict until the cache constraint holds.
        target_total = float(n - k)
        total = float(u[:, -1].sum())
        while total < target_total - _TOL:
            a = u[:, -1]
            active = a < 1.0 - _TOL
            active[page] = False
            act = np.flatnonzero(active)
            if act.size == 0:  # cannot happen on valid instances (k >= 1)
                raise InfeasibleError("no evictable mass but cache over-full")

            # Active index i_q (1-based): the lowest level with positive y,
            # i.e. one past the last prefix entry strictly above the tail.
            ua = u[act]  # (m, l)
            aa = a[act]  # (m,)
            ext = np.concatenate([np.ones((act.size, 1)), ua[:, :-1]], axis=1)
            gt = ext > (aa[:, None] + _TOL)
            iq0 = (l - 1) - np.argmax(gt[:, ::-1], axis=1)  # 0-based column
            barrier = ext[np.arange(act.size), iq0]
            w_act = self._w[act, iq0]

            # Each tail follows (a0 + eta) * exp(tau / w) - eta until it
            # meets its barrier; the earliest event bounds this round.
            shifted = aa + eta
            tau_barrier = w_act * np.log((barrier + eta) / shifted)
            tau_max = float(tau_barrier.min())
            frozen = total - float(aa.sum())  # mass of inactive pages

            def total_at(tau: float) -> float:
                return frozen + float(
                    (shifted * np.exp(tau / w_act)).sum()
                ) - eta * act.size

            f0 = total_at(0.0)
            f_max = total_at(tau_max)
            if f0 >= target_total - _TOL:
                tau_stop, done = 0.0, True
            elif f_max > target_total:
                # The stopping event strictly precedes every barrier.
                tau_stop = float(
                    brentq(
                        lambda tau: total_at(tau) - target_total,
                        0.0,
                        tau_max,
                        xtol=1e-13,
                        rtol=1e-15,
                    )
                )
                done = True
            elif f_max >= target_total - _TOL:
                # Grazing: the barrier event and the stop coincide.
                tau_stop, done = tau_max, True
            else:
                tau_stop, done = tau_max, False

            a_new = np.minimum(shifted * np.exp(tau_stop / w_act) - eta, barrier)
            delta = a_new - aa
            z_cost += float((delta * self._wsuf[act, iq0]).sum())
            y_cost += float((delta * w_act).sum())

            # Raise the whole flat tail of each active page to its new level.
            cols = np.arange(l)
            mask = cols[None, :] >= iq0[:, None]
            u[act] = np.where(mask, a_new[:, None], ua)
            total = float(u[:, -1].sum())
            if done:
                break

        return FractionalStep(
            z_cost=z_cost, y_cost=y_cost, serve_y_cost=serve_y_cost
        )

    # -- batch driver ----------------------------------------------------------
    def solve(self, seq: RequestSequence, *, check: bool = False) -> FractionalTrajectory:
        """Run the solver over a whole sequence, recording every state."""
        self.instance.validate_sequence(seq.pages, seq.levels)
        self.reset()
        T = len(seq)
        n, l = self.instance.n_pages, self.instance.n_levels
        traj = np.empty((T + 1, n, l), dtype=np.float64)
        traj[0] = self._u
        z_costs = np.empty(T, dtype=np.float64)
        y_costs = np.empty(T, dtype=np.float64)
        for t, (p, i) in enumerate(zip(seq.pages.tolist(), seq.levels.tolist())):
            step = self.step(p, i)
            traj[t + 1] = self._u
            z_costs[t] = step.z_cost
            y_costs[t] = step.y_cost
            if check:
                self.check_feasible()
        return FractionalTrajectory(u=traj, z_costs=z_costs, y_costs=y_costs)
