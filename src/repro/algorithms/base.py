"""Policy protocol and registry.

A :class:`Policy` is an online algorithm for multi-level paging (weighted
paging and RW-paging are the ``l = 1`` / ``l = 2`` cases).  The simulator
owns the authoritative :class:`~repro.core.cache.MultiLevelCache` and calls
:meth:`Policy.serve` on **every** request — including hits — because
fractional-state policies (the paper's randomized algorithm) move even when
the integral cache already serves the request.  After ``serve`` returns, the
simulator verifies that the request is served and that all cache invariants
hold.

:class:`WritebackPolicy` is the analogous protocol for writeback-aware
caching; the simulator marks the page dirty after a served write.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.cache import MultiLevelCache, WritebackCache
from repro.core.instance import MultiLevelInstance, WritebackInstance

__all__ = ["Policy", "WritebackPolicy", "register_policy", "policy_registry"]


class Policy(ABC):
    """Base class for online multi-level paging policies."""

    #: Short name used in reports and tables.
    name: str = "policy"

    #: Optional :class:`repro.obs.DecisionTracer`, attached by the simulator
    #: or shard engine for the duration of a traced run.  Policies that can
    #: enumerate their eviction candidates cheaply should guard on
    #: ``self.tracer is not None and self.tracer.sampled`` and call
    #: ``self.tracer.candidates(t, [(page, level, score), ...])`` before
    #: choosing a victim.
    tracer = None

    def __init__(self) -> None:
        self.instance: MultiLevelInstance | None = None
        self.cache: MultiLevelCache | None = None
        self.rng: np.random.Generator | None = None

    def bind(
        self,
        instance: MultiLevelInstance,
        cache: MultiLevelCache,
        rng: np.random.Generator,
    ) -> None:
        """Attach the policy to a fresh simulation run.

        Subclasses overriding this must call ``super().bind(...)`` and then
        (re)initialize all per-run state — ``bind`` is the reset point.
        """
        self.instance = instance
        self.cache = cache
        self.rng = rng

    @abstractmethod
    def serve(self, t: int, page: int, level: int) -> None:
        """Handle the request ``(page, level)`` arriving at time ``t``.

        Called on every request.  On return the cache must serve the
        request: some copy ``(page, j)`` with ``j <= level`` is cached.
        """

    def extras(self) -> dict[str, float]:
        """Per-run extra metrics merged into ``RunResult.extra``.

        Composed policies report internal quantities here (e.g. the
        fractional solver's cost alongside the rounded integral cost).
        """
        return {}

    def __getstate__(self) -> dict:
        """Instance dict minus the tracer (an open-file handle).

        Checkpoints pickle the bound policy graph; the tracer is re-attached
        by the restoring engine, so the pickled copy falls back to the
        class-level ``tracer = None``.
        """
        state = self.__dict__.copy()
        state.pop("tracer", None)
        return state

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class WritebackPolicy(ABC):
    """Base class for online writeback-aware caching policies."""

    #: Short name used in reports and tables.
    name: str = "wb-policy"

    def __init__(self) -> None:
        self.instance: WritebackInstance | None = None
        self.cache: WritebackCache | None = None
        self.rng: np.random.Generator | None = None

    def bind(
        self,
        instance: WritebackInstance,
        cache: WritebackCache,
        rng: np.random.Generator,
    ) -> None:
        """Attach the policy to a fresh simulation run (the reset point)."""
        self.instance = instance
        self.cache = cache
        self.rng = rng

    @abstractmethod
    def serve(self, t: int, page: int, is_write: bool) -> None:
        """Handle the request arriving at time ``t``.

        Called on every request.  On return ``page`` must be cached; the
        simulator marks it dirty afterwards when ``is_write``.
        """

    def extras(self) -> dict[str, float]:
        """Per-run extra metrics merged into ``RunResult.extra``."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


#: Global name -> factory registry for benchmark/CLI lookups.
policy_registry: dict[str, type] = {}


def register_policy(cls):
    """Class decorator adding a policy class to :data:`policy_registry`."""
    policy_registry[cls.name] = cls
    return cls
