"""The paper's deterministic O(k)-competitive water-filling algorithm.

Section 4.1: every cached copy ``(q, i_q)`` carries a water level
``f(q, i_q) in [0, w(q, i_q)]``, reset to 0 on fetch.  On a request
``(p_t, i_t)``:

1. if some cached ``(p_t, j)`` with ``j <= i_t`` serves it — do nothing;
2. otherwise fetch ``(p_t, i_t)`` with ``f = 0``;
   (a) if a lower copy ``(p_t, j)``, ``j > i_t``, is cached, evict it
   (an in-place upgrade — the cache size is unchanged);
   (b) otherwise, if the cache is full, raise the water level of every
   cached copy at rate 1 until some ``f(q, i_q)`` reaches ``w(q, i_q)``
   and evict that copy.

Theorem 4.1 proves 2k-competitiveness under the geometric-weights
normalization (4k in general).

Two interchangeable implementations are provided:

* :class:`WaterFillingPolicy` — the direct transcription, O(cache size)
  work per miss;
* :class:`HeapWaterFillingPolicy` — O(log k) per miss via the classic
  global-offset trick: raises apply uniformly to all cached copies, so a
  copy inserted when the cumulative raise was ``L`` dies when the
  cumulative raise reaches ``w + L``; a lazy-deletion heap keyed on
  ``w + L`` pops the same victims in the same order.

Both use the identical deterministic tie-break (insertion sequence
number), so their behavior is *exactly* equal — a property the test suite
checks request-by-request.
"""

from __future__ import annotations

import heapq

from repro.algorithms.base import Policy, register_policy
from repro.errors import CacheInvariantError

__all__ = ["WaterFillingPolicy", "HeapWaterFillingPolicy"]


@register_policy
class WaterFillingPolicy(Policy):
    """Reference water-filling (Section 4.1), O(cache size) per miss."""

    name = "waterfilling"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        # Water is raised uniformly across the whole cache, so we track the
        # cumulative raise ("offset") once and, per copy, the offset value
        # at which it drowns: death(q) = w(q, i_q) + offset_at_insert(q)
        # (equivalently f(q) = offset - offset_at_insert(q); the copy dies
        # when f reaches its weight).  Storing death keys instead of f
        # avoids accumulating per-page floating-point drift and makes this
        # reference bit-identical to the heap variant.
        self._offset = 0.0
        self._death: dict[int, float] = {}
        self._seq: dict[int, int] = {}
        self._counter = 0

    def _insert(self, page: int, level: int) -> None:
        self._death[page] = self.instance.weight(page, level) + self._offset
        self._seq[page] = self._counter
        self._counter += 1

    def serve(self, t: int, page: int, level: int) -> None:
        cache = self.cache
        current = cache.level_of(page)
        if current is not None and current <= level:
            return  # step 1: already satisfied
        if current is not None:
            # step 2a: upgrade in place, resetting the water level.
            cache.replace(page, level, reason="upgrade")
            self._insert(page, level)
            return
        # step 2b: make room if needed, raising water levels uniformly
        # until the copy with the smallest remaining headroom drowns.
        while cache.is_full:
            tracer = self.tracer
            if tracer is not None and tracer.sampled:
                # Candidate set with remaining headroom f-distance-to-death;
                # only materialized for sampled requests, so the untraced
                # path pays a single attribute load per eviction round.
                tracer.candidates(t, [
                    (q, lv, self._death[q] - self._offset)
                    for q, lv in cache.items()
                ])
            victim = min(
                cache.pages(), key=lambda q: (self._death[q], self._seq[q])
            )
            self._offset = self._death[victim]
            cache.evict(victim, reason="waterfill")
            del self._death[victim]
            del self._seq[victim]
        cache.fetch(page, level)
        self._insert(page, level)


@register_policy
class HeapWaterFillingPolicy(Policy):
    """Heap-accelerated water-filling; behaviorally identical to the reference."""

    name = "waterfilling-heap"

    def bind(self, instance, cache, rng) -> None:
        super().bind(instance, cache, rng)
        # Cumulative raise applied to every copy cached since time zero.
        self._offset = 0.0
        # Heap of (death key = w + offset_at_insert, seq, page); stale
        # entries are skipped via the live-entry map.
        self._heap: list[tuple[float, int, int]] = []
        self._live: dict[int, int] = {}  # page -> live seq number
        self._counter = 0

    def _insert(self, page: int, level: int) -> None:
        key = self.instance.weight(page, level) + self._offset
        self._live[page] = self._counter
        heapq.heappush(self._heap, (key, self._counter, page))
        self._counter += 1
        # Upgrades push fresh entries for already-live pages, so the
        # stale tail would otherwise grow with the request count;
        # compacting at 2x live bounds the heap at <= 2k+1 entries with
        # O(1) amortized work per push and identical pop order.
        if len(self._heap) > 2 * len(self._live):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live entries only (drop the stale tail)."""
        live = self._live
        self._heap = [e for e in self._heap if live.get(e[2]) == e[1]]
        heapq.heapify(self._heap)

    def _pop_victim(self) -> tuple[float, int]:
        heap = self._heap
        while heap:
            key, seq, page = heapq.heappop(heap)
            if self._live.get(page) == seq:
                del self._live[page]
                return key, page
        cache = self.cache
        raise CacheInvariantError(
            f"policy {self.name!r}: eviction heap exhausted while the cache "
            f"holds {len(cache)}/{cache.instance.cache_size} copies — "
            "policy state is corrupt (e.g. a bad restore)"
        )

    def serve(self, t: int, page: int, level: int) -> None:
        cache = self.cache
        current = cache.level_of(page)
        if current is not None and current <= level:
            return
        if current is not None:
            cache.replace(page, level, reason="upgrade")
            self._insert(page, level)
            return
        while cache.is_full:
            key, victim = self._pop_victim()
            self._offset = key  # the uniform raise that drowned the victim
            cache.evict(victim, reason="waterfill")
        cache.fetch(page, level)
        self._insert(page, level)
