"""The paper's potential-function analyses, executable.

Competitive proofs in the paper argue that for every event,

    Delta(ON) + Delta(Phi) <= c * Delta(OFF)                       (*)

for a potential ``Phi`` coupling the online state with an (unknown to the
algorithm) optimal offline solution.  This module implements both
potentials and *verifies* (*) per request along concrete runs, using the
exact offline trace from :func:`repro.offline.dp.offline_opt_multilevel_trace`
as OFF.  A failed inequality raises, so the test suite machine-checks the
analyses on real executions — the closest a simulation can get to
re-proving the theorems.

* :func:`waterfilling_potential` / :func:`verify_waterfilling_potential` —
  Theorem 4.1:
  ``Phi = sum_{p in ON} [ k * v(p, i_p) * (w(p, i_p) - f(p, i_p)) + f(p, i_p) ]``
  with the paper's cost convention (online eviction costs ``w``, online
  fetch *earns* ``w/2``; offline pays evictions only), giving
  ``c = k`` and hence 2k-competitiveness.

* :func:`fractional_potential` / :func:`verify_fractional_potential` —
  Section 4.2:
  ``Phi = 2 sum_q sum_j w(q, j) * v(q, j) * ln((1 + eta) / (u(q, j) + eta))``
  with online cost = the step-2 eviction movement (Lemma 4.3 makes step 1
  free), giving ``c = 4 ln(1 + 1/eta)`` (= Theta(log k) at the paper's
  ``eta = 1/k``).

Both require the paper's WLOG geometric weight separation
(``w(p, i) >= 2 w(p, i+1)``); apply
:func:`repro.core.normalize.normalize_instance` first if needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.fractional import FractionalMultiLevelSolver
from repro.algorithms.waterfilling import WaterFillingPolicy
from repro.core.cache import MultiLevelCache
from repro.core.instance import MultiLevelInstance
from repro.core.ledger import CostLedger
from repro.core.requests import RequestSequence
from repro.errors import InvalidInstanceError
from repro.offline.dp import offline_opt_multilevel_trace

__all__ = [
    "PotentialReport",
    "waterfilling_potential",
    "verify_waterfilling_potential",
    "fractional_potential",
    "verify_fractional_potential",
]

_TOL = 1e-7


@dataclass(frozen=True)
class PotentialReport:
    """Per-request record of the drift inequality (*) along a run."""

    online_costs: np.ndarray
    offline_costs: np.ndarray
    potential: np.ndarray  # Phi after each request (index 0 = initial)
    c: float

    @property
    def slacks(self) -> np.ndarray:
        """``c * dOFF - dON - dPhi`` per request; all >= 0 when (*) holds."""
        dphi = np.diff(self.potential)
        return self.c * self.offline_costs - self.online_costs - dphi

    @property
    def holds(self) -> bool:
        """True if the inequality held at every request."""
        return bool((self.slacks >= -_TOL * np.maximum(1.0, self.c)).all())

    def worst_slack(self) -> float:
        """The tightest (most negative) per-request slack."""
        return float(self.slacks.min())


def _offline_step_cost(
    instance: MultiLevelInstance,
    prev: dict[int, int],
    new: dict[int, int],
) -> float:
    """Eviction cost OFF pays moving between consecutive trace states."""
    cost = 0.0
    for p, lvl in prev.items():
        if new.get(p) != lvl:
            cost += instance.weight(p, lvl)
    return cost


def _check_geometric(instance: MultiLevelInstance) -> None:
    if not instance.has_geometric_levels():
        raise InvalidInstanceError(
            "the potential arguments assume w(p,i) >= 2 w(p,i+1); "
            "normalize the instance first (repro.core.normalize)"
        )


# ---------------------------------------------------------------------------
# Theorem 4.1 — water-filling
# ---------------------------------------------------------------------------

def waterfilling_potential(
    instance: MultiLevelInstance,
    on_cache: dict[int, int],
    water: dict[int, float],
    off_cache: dict[int, int],
) -> float:
    """Theorem 4.1's potential for given online/offline configurations.

    ``v(p, i_p) = 1`` iff OFF holds no copy of ``p`` at level ``<= i_p``
    (the offline prefix variable of the online copy).
    """
    k = instance.cache_size
    phi = 0.0
    for p, i_p in on_cache.items():
        w = instance.weight(p, i_p)
        f = water[p]
        off_level = off_cache.get(p)
        v = 0.0 if (off_level is not None and off_level <= i_p) else 1.0
        phi += k * v * (w - f) + f
    return phi


def verify_waterfilling_potential(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    *,
    max_states: int = 20_000,
) -> PotentialReport:
    """Run water-filling against the exact OFF trace and check (*).

    Online cost convention (paper, proof of Theorem 4.1): evicting
    ``(p, i)`` costs ``w(p, i)``, fetching earns ``w(p, i) / 2``; OFF pays
    evictions only; ``c = k``.
    """
    _check_geometric(instance)
    _, off_trace = offline_opt_multilevel_trace(
        instance, seq, max_states=max_states
    )
    k = instance.cache_size

    ledger = CostLedger(record_events=True)
    cache = MultiLevelCache(instance, ledger)
    policy = WaterFillingPolicy()
    policy.bind(instance, cache, np.random.default_rng(0))

    T = len(seq)
    online_costs = np.zeros(T)
    offline_costs = np.zeros(T)
    potential = np.zeros(T + 1)
    prev_off: dict[int, int] = {}
    potential[0] = 0.0  # both caches empty

    for t, req in enumerate(seq):
        offline_costs[t] = _offline_step_cost(instance, prev_off, off_trace[t])
        prev_off = off_trace[t]

        evict_before = ledger.eviction_cost
        fetches_before = len(ledger.events), ledger.n_fetches
        cache_before = cache.contents()
        policy.serve(t, req.page, req.level)
        evict_cost = ledger.eviction_cost - evict_before
        # Fetch profit: every copy present now but not before, at w/2.
        fetch_profit = 0.0
        for p, lvl in cache.contents().items():
            if cache_before.get(p) != lvl:
                fetch_profit += instance.weight(p, lvl) / 2.0
        online_costs[t] = evict_cost - fetch_profit

        water = {
            p: instance.weight(p, cache.level_of(p))
            - (policy._death[p] - policy._offset)
            for p in cache.pages()
        }
        potential[t + 1] = waterfilling_potential(
            instance, cache.contents(), water, off_trace[t]
        )

    return PotentialReport(
        online_costs=online_costs,
        offline_costs=offline_costs,
        potential=potential,
        c=float(k),
    )


# ---------------------------------------------------------------------------
# Section 4.2 — fractional solver
# ---------------------------------------------------------------------------

def fractional_potential(
    instance: MultiLevelInstance,
    u: np.ndarray,
    off_cache: dict[int, int],
    eta: float,
) -> float:
    """Section 4.2's potential for a fractional state ``u`` vs OFF.

    ``v(q, j) = 1`` iff OFF holds no copy of ``q`` at level ``<= j``.
    """
    n, l = instance.n_pages, instance.n_levels
    v = np.ones((n, l))
    for p, lvl in off_cache.items():
        v[p, lvl - 1:] = 0.0
    logs = np.log((1.0 + eta) / (np.clip(u, 0.0, 1.0) + eta))
    return float(2.0 * (instance.weights * v * logs).sum())


def verify_fractional_potential(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    *,
    eta: float | None = None,
    max_states: int = 20_000,
) -> PotentialReport:
    """Run the fractional solver against the exact OFF trace and check (*).

    Online cost = the step-2 eviction movement (Lemma 4.3/4.4);
    ``c = 4 ln(1 + 1/eta)``.  Lemma 4.4's cancellation requires
    ``eta <= 1/k`` (it uses ``eta |S| <= |S| - (k - 1)`` for ``|S| >= k``)
    — larger eta genuinely breaks the drift inequality, so it is rejected
    here.
    """
    _check_geometric(instance)
    if eta is not None and eta > 1.0 / instance.cache_size + 1e-12:
        raise ValueError(
            f"the potential argument needs eta <= 1/k = "
            f"{1.0 / instance.cache_size:g}, got {eta}"
        )
    _, off_trace = offline_opt_multilevel_trace(
        instance, seq, max_states=max_states
    )
    solver = FractionalMultiLevelSolver(instance, eta=eta)
    eta_val = solver.eta
    c = 4.0 * math.log(1.0 + 1.0 / eta_val)

    T = len(seq)
    online_costs = np.zeros(T)
    offline_costs = np.zeros(T)
    potential = np.zeros(T + 1)
    prev_off: dict[int, int] = {}
    potential[0] = fractional_potential(instance, solver.u, {}, eta_val)

    for t, req in enumerate(seq):
        offline_costs[t] = _offline_step_cost(instance, prev_off, off_trace[t])
        prev_off = off_trace[t]
        step = solver.step(req.page, req.level)
        online_costs[t] = step.evict_y_cost
        potential[t + 1] = fractional_potential(
            instance, solver.u, off_trace[t], eta_val
        )

    return PotentialReport(
        online_costs=online_costs,
        offline_costs=offline_costs,
        potential=potential,
        c=c,
    )
