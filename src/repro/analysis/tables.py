"""Fixed-width table and CSV emission for the benchmark harness.

Every bench prints its results through :class:`Table`, so all experiments
report in the same paper-style row format and can be diffed run-to-run.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Sequence

__all__ = ["Table"]


class Table:
    """A small column-typed table with aligned text and CSV rendering."""

    def __init__(self, columns: Sequence[str], *, title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}"
        return str(value)

    def add_row(self, *values) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([self._fmt(v) for v in values])

    def extend(self, rows: Iterable[Sequence]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """Aligned fixed-width text rendering."""
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        out = io.StringIO()
        if self.title:
            out.write(f"== {self.title} ==\n")
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in self.rows:
            out.write("  ".join(v.ljust(w) for v, w in zip(row, widths)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Comma-separated rendering (no quoting; values are simple)."""
        lines = [",".join(self.columns)]
        lines.extend(",".join(row) for row in self.rows)
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.render()
