"""Analysis: competitive ratios, growth fits, potentials, report tables."""

from repro.analysis.ascii_plot import bar_chart, line_chart
from repro.analysis.potentials import (
    PotentialReport,
    fractional_potential,
    verify_fractional_potential,
    verify_waterfilling_potential,
    waterfilling_potential,
)
from repro.analysis.ratios import GrowthFit, competitive_ratio, fit_growth
from repro.analysis.tables import Table

__all__ = [
    "bar_chart",
    "line_chart",
    "GrowthFit",
    "competitive_ratio",
    "fit_growth",
    "Table",
    "PotentialReport",
    "fractional_potential",
    "verify_fractional_potential",
    "verify_waterfilling_potential",
    "waterfilling_potential",
]
