"""Consolidating benchmark artifacts into one report.

Every bench persists its table under ``benchmarks/results/<name>.txt``
(via ``benchmarks/_util.emit``).  :func:`consolidate_results` gathers
those artifacts into a single markdown document — the raw material
EXPERIMENTS.md quotes — and :func:`parse_table` converts an emitted table
back into structured rows for programmatic post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["ParsedTable", "parse_table", "consolidate_results"]


@dataclass(frozen=True)
class ParsedTable:
    """A structurally parsed ``repro.analysis.Table`` rendering."""

    title: str
    columns: list[str]
    rows: list[list[str]]

    def column(self, name: str) -> list[str]:
        """All values of one column, by header name."""
        try:
            idx = self.columns.index(name)
        except ValueError as exc:
            raise KeyError(f"no column {name!r} in {self.columns}") from exc
        return [row[idx] for row in self.rows]

    def floats(self, name: str) -> list[float]:
        """A column parsed as floats."""
        return [float(v) for v in self.column(name)]


def parse_table(text: str) -> ParsedTable:
    """Parse a table rendered by :class:`repro.analysis.Table`.

    Column boundaries are recovered from the header's two-space runs, so
    values containing single spaces survive.
    """
    lines = [ln.rstrip("\n") for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty table text")
    title = ""
    if lines[0].startswith("== ") and lines[0].endswith(" =="):
        title = lines[0][3:-3]
        lines = lines[1:]
    if len(lines) < 2:
        raise ValueError("table missing header or separator")
    header = lines[0]
    body = [ln for ln in lines[2:]]  # skip the dashed separator

    # Column start offsets: positions where a header word begins after a
    # run of at least two spaces (or position 0).
    starts = [0]
    i = 0
    while i < len(header) - 1:
        if header[i] == " " and header[i + 1] == " ":
            j = i
            while j < len(header) and header[j] == " ":
                j += 1
            if j < len(header):
                starts.append(j)
            i = j
        else:
            i += 1
    spans = list(zip(starts, starts[1:] + [None]))
    columns = [header[a:b].strip() for a, b in spans]
    rows = [[ln[a:b].strip() if a < len(ln) else "" for a, b in spans]
            for ln in body]
    return ParsedTable(title=title, columns=columns, rows=rows)


def consolidate_results(results_dir: str | Path) -> str:
    """Concatenate all ``*.txt`` artifacts into one markdown document."""
    root = Path(results_dir)
    if not root.is_dir():
        raise FileNotFoundError(f"no results directory at {root}")
    files = sorted(root.glob("*.txt"))
    if not files:
        raise FileNotFoundError(f"no result artifacts under {root}")
    parts = ["# Benchmark results\n"]
    for path in files:
        text = path.read_text(encoding="utf-8")
        try:
            parsed = parse_table(text)
            heading = parsed.title or path.stem
        except ValueError:
            heading = path.stem
        parts.append(f"## {heading}\n")
        parts.append("```")
        parts.append(text.rstrip("\n"))
        parts.append("```\n")
    return "\n".join(parts) + "\n"
