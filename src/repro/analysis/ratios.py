"""Competitive-ratio measurement and growth-rate estimation.

The experiments report *empirical competitive ratios*: online cost divided
by a lower bound on the offline optimum (:mod:`repro.offline.bounds`), so
reported ratios upper-bound the true ones.  To compare measured growth
against the theory's O(k), O(log k), O(log^2 k) shapes,
:func:`fit_growth` regresses the measured ratio against each candidate
shape and reports the best-fitting one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["competitive_ratio", "GrowthFit", "fit_growth"]


def competitive_ratio(online_cost: float, opt_bound: float,
                      *, additive_slack: float = 0.0) -> float:
    """``online / opt`` with an optional additive allowance.

    Competitive analysis permits an additive constant; passing the
    instance's largest weight as ``additive_slack`` removes start-up
    artifacts on short sequences.

    A zero OPT bound is a *signal*, not a denominator: dividing by an
    epsilon would silently report an astronomically large "ratio" that
    plots and gates then treat as data.  Instead a zero bound yields
    ``math.inf`` when the (slack-adjusted) online cost is positive, and
    ``1.0`` when it is also zero (both sides did nothing).
    """
    if online_cost < 0 or opt_bound < 0:
        raise ValueError("costs must be non-negative")
    numerator = max(online_cost - additive_slack, 0.0)
    if opt_bound == 0.0:
        return math.inf if numerator > 0.0 else 1.0
    return numerator / opt_bound


_SHAPES = {
    "constant": lambda k: np.ones_like(k, dtype=float),
    "log k": lambda k: np.log(np.maximum(k, 2.0)),
    "log^2 k": lambda k: np.log(np.maximum(k, 2.0)) ** 2,
    "k": lambda k: k.astype(float),
}


@dataclass(frozen=True)
class GrowthFit:
    """Result of fitting ratio-vs-k data to the candidate growth shapes."""

    best_shape: str
    coefficients: dict[str, float]
    residuals: dict[str, float]

    def coefficient(self, shape: str) -> float:
        """Least-squares scale for ``ratio ~ coef * shape(k)``."""
        return self.coefficients[shape]

    @property
    def best_residual(self) -> float:
        """Relative RMS residual of the winning shape."""
        return self.residuals[self.best_shape]

    def summary(self) -> str:
        """One-line fit report the benchmarks and examples print.

        Shows the winning shape *with its residual* so a sloppy fit is
        visible wherever the shape claim is, e.g.
        ``log k (coef 1.70, rel. residual 0.031)``.
        """
        return (f"{self.best_shape} (coef "
                f"{self.coefficient(self.best_shape):.3g}, rel. residual "
                f"{self.best_residual:.3g})")


def fit_growth(ks, ratios) -> GrowthFit:
    """Fit ``ratio ~ c * f(k)`` for each candidate ``f``; pick the best.

    Uses simple one-parameter least squares per shape and compares
    relative residuals.  Requires at least 3 points: with 1 every shape
    fits exactly and with 2 the "winner" is an artifact of the candidate
    set, so a "best shape" from fewer points is meaningless and raises.
    Even at 3+ this is indicative, not a statistical test — the
    benchmarks print the full table (and residuals) alongside.
    """
    k = np.asarray(ks, dtype=np.float64)
    r = np.asarray(ratios, dtype=np.float64)
    if k.shape != r.shape or k.ndim != 1:
        raise ValueError("need matching 1-d arrays")
    if k.size < 3:
        raise ValueError(
            f"growth fitting needs at least 3 points, got {k.size}: a best "
            "shape chosen from fewer is an artifact of the candidate set"
        )
    coefficients: dict[str, float] = {}
    residuals: dict[str, float] = {}
    for name, f in _SHAPES.items():
        x = f(k)
        coef = float((x * r).sum() / (x * x).sum())
        pred = coef * x
        residuals[name] = float(np.sqrt(((r - pred) ** 2).mean()) / max(r.mean(), 1e-12))
        coefficients[name] = coef
    best = min(residuals, key=residuals.get)
    return GrowthFit(best_shape=best, coefficients=coefficients,
                     residuals=residuals)
