"""Competitive-ratio measurement and growth-rate estimation.

The experiments report *empirical competitive ratios*: online cost divided
by a lower bound on the offline optimum (:mod:`repro.offline.bounds`), so
reported ratios upper-bound the true ones.  To compare measured growth
against the theory's O(k), O(log k), O(log^2 k) shapes,
:func:`fit_growth` regresses the measured ratio against each candidate
shape and reports the best-fitting one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["competitive_ratio", "GrowthFit", "fit_growth"]


def competitive_ratio(online_cost: float, opt_bound: float,
                      *, additive_slack: float = 0.0) -> float:
    """``online / max(opt, eps)`` with an optional additive allowance.

    Competitive analysis permits an additive constant; passing the
    instance's largest weight as ``additive_slack`` removes start-up
    artifacts on short sequences.
    """
    if online_cost < 0 or opt_bound < 0:
        raise ValueError("costs must be non-negative")
    denom = max(opt_bound, 1e-12)
    return max(online_cost - additive_slack, 0.0) / denom


_SHAPES = {
    "constant": lambda k: np.ones_like(k, dtype=float),
    "log k": lambda k: np.log(np.maximum(k, 2.0)),
    "log^2 k": lambda k: np.log(np.maximum(k, 2.0)) ** 2,
    "k": lambda k: k.astype(float),
}


@dataclass(frozen=True)
class GrowthFit:
    """Result of fitting ratio-vs-k data to the candidate growth shapes."""

    best_shape: str
    coefficients: dict[str, float]
    residuals: dict[str, float]

    def coefficient(self, shape: str) -> float:
        """Least-squares scale for ``ratio ~ coef * shape(k)``."""
        return self.coefficients[shape]


def fit_growth(ks, ratios) -> GrowthFit:
    """Fit ``ratio ~ c * f(k)`` for each candidate ``f``; pick the best.

    Uses simple one-parameter least squares per shape and compares
    relative residuals.  With few points this is indicative, not a
    statistical test — the benchmarks print the full table alongside.
    """
    k = np.asarray(ks, dtype=np.float64)
    r = np.asarray(ratios, dtype=np.float64)
    if k.shape != r.shape or k.ndim != 1 or k.size < 2:
        raise ValueError("need matching 1-d arrays with at least 2 points")
    coefficients: dict[str, float] = {}
    residuals: dict[str, float] = {}
    for name, f in _SHAPES.items():
        x = f(k)
        coef = float((x * r).sum() / (x * x).sum())
        pred = coef * x
        residuals[name] = float(np.sqrt(((r - pred) ** 2).mean()) / max(r.mean(), 1e-12))
        coefficients[name] = coef
    best = min(residuals, key=residuals.get)
    return GrowthFit(best_shape=best, coefficients=coefficients,
                     residuals=residuals)
