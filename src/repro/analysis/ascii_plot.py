"""Dependency-free ASCII charts for terminal reports.

The benchmark harness runs in environments without plotting libraries;
these renderers cover the two shapes the experiments need — a multi-series
line chart (ratio vs k) and a horizontal bar chart (policy comparison) —
as plain text that survives logs and diffs.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    logx: bool = False,
) -> str:
    """Render one or more y-series over shared x values.

    Each series gets a marker from ``o x + * ...``; axes are annotated
    with min/max.  ``logx`` spaces points by log2(x) — natural for
    cache-size sweeps.
    """
    if not series:
        raise ValueError("need at least one series")
    xs = list(map(float, x))
    if len(xs) < 2:
        raise ValueError("need at least two x values")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length != x length")
    if width < 16 or height < 4:
        raise ValueError("chart too small")

    fx = (lambda v: math.log2(v)) if logx else (lambda v: v)
    x_lo, x_hi = fx(min(xs)), fx(max(xs))
    all_y = [float(v) for ys in series.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for xv, yv in zip(xs, ys):
            col = round((fx(xv) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((float(yv) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:10.3g} +" + "-" * width + "+")
    x_label_lo = f"{min(xs):g}"
    x_label_hi = f"{max(xs):g}"
    pad = width - len(x_label_lo) - len(x_label_hi)
    lines.append(" " * 12 + x_label_lo + " " * max(pad, 1) + x_label_hi)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines) + "\n"


def bar_chart(
    values: dict[str, float],
    *,
    width: int = 50,
    title: str = "",
) -> str:
    """Render labeled horizontal bars scaled to the maximum value."""
    if not values:
        raise ValueError("need at least one bar")
    if width < 8:
        raise ValueError("chart too small")
    vmax = max(values.values())
    if vmax <= 0:
        raise ValueError("values must include a positive maximum")
    label_w = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
    for name, v in values.items():
        n = round(v / vmax * width)
        lines.append(f"{name.ljust(label_w)} |{'#' * n}{' ' * (width - n)}| {v:g}")
    return "\n".join(lines) + "\n"
