"""Typed exceptions for the :mod:`repro` package.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch the package's failures with a single ``except`` clause
while still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidInstanceError(ReproError, ValueError):
    """An instance definition violates the model's preconditions.

    Examples: non-monotone level weights, weights below 1, a cache larger
    than the page universe, or a non-positive cache size.
    """


class InvalidRequestError(ReproError, ValueError):
    """A request refers to a page or level outside the instance."""


class CacheOverflowError(ReproError, RuntimeError):
    """A fetch was attempted into a cache that is already at capacity."""


class CacheInvariantError(ReproError, RuntimeError):
    """An internal cache invariant was violated.

    Raised by the simulator's post-request verification (request not served,
    more than one copy of a page, capacity exceeded) and by cache mutators
    that are asked to do something inconsistent (evict an absent page,
    fetch a second copy of a cached page).
    """


class InfeasibleError(ReproError, RuntimeError):
    """A fractional state or LP turned out to be infeasible."""


class SolverError(ReproError, RuntimeError):
    """An underlying numerical solver failed to converge or errored."""


class TraceFormatError(ReproError, ValueError):
    """A serialized trace file could not be parsed."""


class FrameError(ReproError, ValueError):
    """A :mod:`repro.net` wire frame could not be decoded.

    The codec never lets a malformed byte stream escape as anything else:
    every decode failure is this class or a subclass, each carrying a
    stable ``code`` the server echoes back in a typed ``Error`` response.
    """

    code = "decode"


class FrameTooLargeError(FrameError):
    """A frame header announced a payload over the configured cap."""

    code = "frame_too_large"


class ProtocolVersionError(FrameError):
    """A frame header carried an unsupported protocol version."""

    code = "bad_version"


class ServiceConfigError(ReproError, ValueError):
    """A :mod:`repro.service` configuration is inconsistent.

    Examples: more shards than cache slots, a shard capacity reaching the
    page universe size, or a non-positive batch size / queue depth.
    """


class ServiceStateError(ReproError, RuntimeError):
    """A :mod:`repro.service` operation was attempted in the wrong state.

    Examples: submitting to a stopped service or starting it twice.
    """


class WorkerDiedError(ReproError, RuntimeError):
    """A shard worker process died mid-conversation.

    Raised by the process backend's parent-side engine handle when the
    pipe to its child breaks (the child was killed, crashed, or exited).
    Travels the same worker-death path as any other engine error: with
    recovery armed the supervisor respawns the process from the last
    checkpoint; without it the shard fails.
    """


class InjectedFault(ReproError, RuntimeError):
    """A deliberate failure raised by the fault-injection layer.

    Raised inside a shard worker when a :class:`repro.faults.FaultPlan`
    spec fires (``kill`` or ``drop``).  Never raised by production paths;
    its presence in a traceback unambiguously marks a chaos-test failure
    as injected rather than organic.
    """


class MigrationError(ReproError, RuntimeError):
    """A live shard migration could not complete.

    Raised by :func:`repro.cluster.migrate_shard` when the shard never
    quiesced, a backend refused the capture/install, or the transfer
    failed mid-flight.  Routing is only flipped *after* a successful
    install, so a raised migration leaves the cluster serving from the
    original owner with no tickets lost.
    """


class SweepWorkerError(ReproError, RuntimeError):
    """A sweep spec failed inside :func:`repro.sim.runner.run_sweep`.

    The message carries the failing spec's label so parallel failures are
    attributable without decoding a pickled worker traceback.
    """


class StateSpaceTooLargeError(ReproError, ValueError):
    """An exact offline computation was requested on too large an instance.

    The exact dynamic program enumerates all feasible cache states; callers
    must keep ``(n_levels + 1) ** n_pages`` within the configured budget or
    fall back to the LP lower bound (:mod:`repro.offline.bounds`).
    """
