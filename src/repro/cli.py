"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      simulate one or more policies on a generated workload and
             print a comparison table (optionally against the offline
             optimum bound).
``policies`` list every registered policy.
``verify``   run the potential-function verifiers on a small instance —
             machine-checks the paper's Theorem 4.1 / Section 4.2 drift
             inequalities on a live run.
``serve``    run a workload through the sharded paging service
             (:mod:`repro.service`) and print live metric snapshots —
             or, with ``--listen``, expose the service over TCP
             (:mod:`repro.net`) until SIGINT/SIGTERM.
``loadgen``  replay a workload against the service at a target request
             rate and report achieved throughput + tail latency; with
             ``--connect`` the load travels over the wire protocol to a
             running ``serve --listen`` process.
``trace``    replay or validate a JSONL decision trace produced by
             ``run --trace`` / ``serve --trace-dir`` (:mod:`repro.obs`),
             or ``stitch`` request-span JSONL files (``--span-dir``)
             into per-trace waterfalls.
``cluster``  multi-node mode (:mod:`repro.cluster`): ``proxy`` fronts N
             running ``serve --listen`` backends behind one
             consistent-hash endpoint (optionally federating their
             ``/metrics`` pages on ``--federate-port``); ``status`` /
             ``migrate`` / ``rebalance`` drive the live cluster map over
             the wire.
``top``      live cluster status polled from a (federated) ``/metrics``
             endpoint: per-backend request rates, tail latency, queue
             depth, map epoch and in-flight migrations.
``opt``      offline OPT bounds (:mod:`repro.offline.scale`): ``bound``
             computes the certified sandwich ``LP/divisor <= OPT <=
             rounded cost`` (exact DP when the state space fits) for a
             generated workload or a recorded experience file, and can
             turn an online cost into a competitive ratio.
``replay``   re-serve an experience file recorded with
             ``serve/loadgen --record`` (:mod:`repro.control`): ``run``
             reproduces the live cost ``==``-exactly (or replays an
             alternative policy / cache size), ``compare`` tabulates
             several policies against the live run, ``stats``
             summarizes the recorded traffic.

Examples
--------
::

    python -m repro policies
    python -m repro run --policies lru,landlord,waterfilling \
        --n-pages 32 --cache-size 8 --requests 5000 --workload zipf --opt
    python -m repro run --policies randomized-multilevel --levels 3 \
        --n-pages 24 --cache-size 6 --workload multilevel --seeds 5
    python -m repro run --policies waterfilling --requests 2000 \
        --trace run.jsonl --trace-sample 0.25
    python -m repro trace replay run.jsonl --top 15
    python -m repro verify --n-pages 5 --cache-size 2 --levels 2
    python -m repro serve --policy waterfilling --k 64 --shards 4 \
        --metrics-port 9100 --trace-dir traces/
    python -m repro serve --faults kill:0@600 --checkpoint-interval 500
    python -m repro loadgen --rate 100000 --shards 4 --retry 5 \
        --on-overload retry
    python -m repro serve --listen 127.0.0.1:7411 --shards 4
    python -m repro loadgen --connect 127.0.0.1:7411 --connections 4 \
        --window 8 --rate 50000
    python -m repro cluster proxy --listen 127.0.0.1:7500 \
        --backends 127.0.0.1:7411,127.0.0.1:7412
    python -m repro cluster proxy --listen 127.0.0.1:7500 \
        --backends 127.0.0.1:7411,127.0.0.1:7412 --federate-port 9200 \
        --backend-metrics 127.0.0.1:7411=http://127.0.0.1:9101/metrics,\
127.0.0.1:7412=http://127.0.0.1:9102/metrics
    python -m repro top --url http://127.0.0.1:9200/metrics --once
    python -m repro serve --listen 127.0.0.1:7411 --span-dir spans/
    python -m repro loadgen --connect 127.0.0.1:7500 --span-dir spans/ \
        --trace-sample 0.01
    python -m repro trace stitch spans/*.spans.jsonl --limit 3
    python -m repro cluster status --proxy 127.0.0.1:7500
    python -m repro cluster migrate --proxy 127.0.0.1:7500 \
        --shard 2 --to 127.0.0.1:7412
    python -m repro cluster rebalance --proxy 127.0.0.1:7500
    python -m repro cluster drain 127.0.0.1:7412 --proxy 127.0.0.1:7500
    python -m repro serve --listen 127.0.0.1:7411 --controller \
        --metrics-port 9100
    python -m repro loadgen --connect 127.0.0.1:7411 --profile diurnal \
        --profile-period 5 --rate 80000 --on-overload shed
    python -m repro loadgen --record run.npz --rate 50000
    python -m repro replay run run.npz
    python -m repro replay compare run.npz --policies lru,landlord
    python -m repro opt bound --n-pages 8 --cache-size 3 --requests 400 \
        --check
    python -m repro opt bound run.npz --prefer sparse-lp --cost 1234.5
"""

from __future__ import annotations

import argparse
import sys

from repro.algorithms import policy_registry
from repro.analysis import Table, competitive_ratio
from repro.analysis.potentials import (
    verify_fractional_potential,
    verify_waterfilling_potential,
)
from repro.core.instance import MultiLevelInstance, WeightedPagingInstance
from repro.offline import best_opt_bound
from repro.sim import RunSpec, run_sweep
from repro.workloads import (
    geometric_instance,
    multilevel_stream,
    sample_weights,
    scan_stream,
    uniform_stream,
    working_set_stream,
    zipf_stream,
)

__all__ = ["main"]

_WORKLOADS = ("zipf", "uniform", "scan", "working-set", "multilevel")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient Online Weighted Multi-Level Paging (SPAA'21) "
        "reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate policies on a workload")
    run.add_argument("--policies", default="lru,landlord,waterfilling",
                     help="comma-separated policy names (see `policies`)")
    run.add_argument("--n-pages", type=int, default=32)
    run.add_argument("--cache-size", type=int, default=8)
    run.add_argument("--levels", type=int, default=1)
    run.add_argument("--requests", type=int, default=2000)
    run.add_argument("--workload", choices=_WORKLOADS, default="zipf")
    run.add_argument("--alpha", type=float, default=0.9,
                     help="Zipf skew (zipf/multilevel workloads)")
    run.add_argument("--weight-high", type=float, default=32.0,
                     help="max page weight (log-uniform in [1, high])")
    run.add_argument("--seeds", type=int, default=1,
                     help="independent seeds per policy")
    run.add_argument("--master-seed", type=int, default=0)
    run.add_argument("--opt", action="store_true",
                     help="also compute an offline OPT bound and ratios")
    run.add_argument("--parallel", action="store_true",
                     help="run the sweep across worker processes")
    run.add_argument("--csv", action="store_true", help="emit CSV")
    run.add_argument("--trace", metavar="PATH",
                     help="write a JSONL decision trace (single policy, "
                          "single seed)")
    run.add_argument("--trace-sample", type=float, default=1.0,
                     help="fraction of requests to trace (deterministic "
                          "in the master seed)")

    sub.add_parser("policies", help="list registered policies")

    verify = sub.add_parser(
        "verify", help="check the paper's potential drift inequalities"
    )
    verify.add_argument("--n-pages", type=int, default=5)
    verify.add_argument("--cache-size", type=int, default=2)
    verify.add_argument("--levels", type=int, default=2)
    verify.add_argument("--requests", type=int, default=80)
    verify.add_argument("--seed", type=int, default=0)

    mrc = sub.add_parser(
        "mrc", help="miss-ratio curves (LRU stack distances + Belady MIN)"
    )
    mrc.add_argument("--n-pages", type=int, default=64)
    mrc.add_argument("--requests", type=int, default=20000)
    mrc.add_argument("--max-k", type=int, default=16)
    mrc.add_argument("--workload", choices=("zipf", "loop"), default="zipf")
    mrc.add_argument("--alpha", type=float, default=0.9)
    mrc.add_argument("--loop-size", type=int, default=10)
    mrc.add_argument("--seed", type=int, default=0)
    mrc.add_argument("--chart", action="store_true",
                     help="render an ASCII chart of the curves")

    lb = sub.add_parser(
        "lower-bound", help="run the Section 3 set-cover reduction"
    )
    lb.add_argument("--elements", type=int, default=20)
    lb.add_argument("--sets", type=int, default=8)
    lb.add_argument("--cover-size", type=int, default=3)
    lb.add_argument("--phases", type=int, default=3)
    lb.add_argument("--w", type=float, default=5.0)
    lb.add_argument("--repetitions", type=int, default=4)
    lb.add_argument("--policy", default="landlord")
    lb.add_argument("--seed", type=int, default=0)

    opt = sub.add_parser(
        "opt", help="offline OPT bounds: DP / sparse-LP / rounding sandwich"
    )
    opt_sub = opt.add_subparsers(dest="opt_command", required=True)
    ob = opt_sub.add_parser(
        "bound",
        help="certified lower/upper bounds on the offline optimum",
    )
    ob.add_argument("experience", nargs="?", default=None,
                    help="experience file (.npz/.jsonl recorded with "
                         "serve/loadgen --record); omitted: generate a "
                         "workload from the flags below")
    ob.add_argument("--n-pages", type=int, default=32)
    ob.add_argument("--cache-size", type=int, default=8)
    ob.add_argument("--levels", type=int, default=1)
    ob.add_argument("--requests", type=int, default=2000)
    ob.add_argument("--workload", choices=_WORKLOADS, default="zipf")
    ob.add_argument("--alpha", type=float, default=0.9,
                    help="Zipf skew (zipf/multilevel workloads)")
    ob.add_argument("--weight-high", type=float, default=32.0,
                    help="max page weight (log-uniform in [1, high])")
    ob.add_argument("--master-seed", type=int, default=0)
    ob.add_argument("--prefer",
                    choices=("auto", "dp", "lp", "sparse-lp", "dense-lp"),
                    default="auto",
                    help="bound method (auto: DP when feasible, else "
                         "sparse LP)")
    ob.add_argument("--max-states", type=int, default=20_000,
                    help="exact-DP state budget before the LP takes over")
    ob.add_argument("--thresholds", default=None, metavar="T1,T2,...",
                    help="rounding thresholds (default 0.1..0.9)")
    ob.add_argument("--no-round", action="store_true",
                    help="skip the threshold-rounding upper bound")
    ob.add_argument("--cost", type=float, default=None,
                    help="an online cost to report as a competitive "
                         "ratio against the lower bound")
    ob.add_argument("--check", action="store_true",
                    help="exit non-zero unless the computed bounds "
                         "sandwich consistently (DP within divisor of "
                         "the LP bound, rounded cost above both)")
    ob.add_argument("--csv", action="store_true", help="emit CSV")

    report = sub.add_parser(
        "report", help="consolidate benchmark artifacts into markdown"
    )
    report.add_argument("--results-dir", default="benchmarks/results")

    trace = sub.add_parser(
        "trace", help="replay or validate a JSONL decision trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    replay = trace_sub.add_parser(
        "replay", help="re-render a trace into per-page/per-level summaries"
    )
    replay.add_argument("path", help="JSONL trace file")
    replay.add_argument("--top", type=int, default=10,
                        help="pages to show in the cost ranking")
    validate = trace_sub.add_parser(
        "validate", help="check a trace file against the trace schema"
    )
    validate.add_argument("path", help="JSONL trace file")
    stitch = trace_sub.add_parser(
        "stitch", help="stitch request-span JSONL files into per-trace "
                       "waterfalls"
    )
    stitch.add_argument("paths", nargs="+",
                        help="span JSONL files (svc/shard/net/proxy/client)")
    stitch.add_argument("--trace", default=None, metavar="HEX",
                        help="render only this trace id")
    stitch.add_argument("--limit", type=int, default=10,
                        help="max waterfalls to render")
    stitch.add_argument("--min-spans", type=int, default=1,
                        help="skip traces with fewer stitched spans")

    serve = sub.add_parser(
        "serve", help="run a workload through the sharded paging service"
    )
    _add_service_args(serve)
    serve.add_argument("--snapshot-every", type=int, default=0, metavar="N",
                       help="print a metrics snapshot every N batches")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve the repro.net wire protocol instead of "
                            "streaming the workload (port 0 picks a free "
                            "port; runs until SIGINT/SIGTERM)")
    serve.add_argument("--max-connections", type=int, default=64, metavar="N",
                       help="connection cap before new sockets are refused")
    serve.add_argument("--inflight", type=int, default=32, metavar="N",
                       help="per-connection in-flight submits before the "
                            "oldest is shed")
    serve.add_argument("--deadline", type=float, default=30.0, metavar="S",
                       help="server-side seconds before an unresolved "
                            "submit is answered 'deadline'")
    serve.add_argument("--net-faults", default=None, metavar="SPEC",
                       help="inject faults at the network boundary "
                            "(kind:conn@req[:delay_s], kinds "
                            "kill/delay/drop; conn = connection index, "
                            "req = per-connection submit index)")
    serve.add_argument("--stop-timeout", type=float, default=10.0,
                       metavar="S",
                       help="single shared deadline for the shutdown drain")
    serve.add_argument("--controller", action="store_true",
                       help="close the admission loop (--listen only): "
                            "live-adjust the in-flight window and the soft "
                            "queue limit from the pressure signals")
    serve.add_argument("--ctl-interval", type=float, default=0.25,
                       metavar="S", help="controller poll interval")
    serve.add_argument("--ctl-high", type=float, default=0.75,
                       metavar="FRAC",
                       help="pressure above this tightens admission")
    serve.add_argument("--ctl-low", type=float, default=0.30,
                       metavar="FRAC",
                       help="pressure below this relaxes admission")
    serve.add_argument("--ctl-dwell", type=float, default=2.0, metavar="S",
                       help="min seconds between direction reversals "
                            "(hysteresis; prevents flapping)")

    loadgen = sub.add_parser(
        "loadgen", help="rate-paced load generation against the service"
    )
    _add_service_args(loadgen)
    loadgen.add_argument("--rate", type=float, default=100_000.0,
                         help="target request rate (req/s)")
    loadgen.add_argument("--profile",
                         choices=("constant", "diurnal", "burst", "step"),
                         default="constant",
                         help="rate shape over time: constant, a smooth "
                              "diurnal cosine, seeded bursts, or a square "
                              "step wave (--rate is the peak)")
    loadgen.add_argument("--profile-period", type=float, default=10.0,
                         metavar="S", help="profile period in seconds")
    loadgen.add_argument("--profile-low", type=float, default=0.1,
                         metavar="FRAC",
                         help="trough rate as a fraction of --rate")
    loadgen.add_argument("--profile-duty", type=float, default=0.25,
                         metavar="FRAC",
                         help="high-rate fraction of each period "
                              "(burst/step profiles)")
    loadgen.add_argument("--max-retries", "--retry", dest="max_retries",
                         type=int, default=3, metavar="N",
                         help="retries before an overloaded batch is dropped")
    loadgen.add_argument("--retry-backoff", type=float, default=0.001,
                         metavar="S",
                         help="base backoff seconds (doubles per retry)")
    loadgen.add_argument("--on-overload", choices=("retry", "shed"),
                         default="retry",
                         help="client policy for Overloaded rejections: "
                              "retry with backoff, or shed immediately")
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="drive a remote `serve --listen` server over "
                              "TCP instead of an in-process service")
    loadgen.add_argument("--connections", type=int, default=1, metavar="N",
                         help="client connections to open (--connect only)")
    loadgen.add_argument("--window", type=int, default=1, metavar="N",
                         help="pipelined submits per connection "
                              "(--connect only; 1 = strict round-trips)")
    loadgen.add_argument("--timeout", type=float, default=10.0, metavar="S",
                         help="client-side reply timeout (--connect only)")

    cluster = sub.add_parser(
        "cluster", help="multi-node proxy + live shard migration"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    cproxy = cluster_sub.add_parser(
        "proxy", help="front running `serve --listen` backends behind one "
                      "consistent-hash endpoint"
    )
    cproxy.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="front address (port 0 picks a free port)")
    cproxy.add_argument("--backends", required=True, metavar="ADDR,ADDR,...",
                        help="comma-separated backend host:port list; each "
                             "must be a running `repro serve --listen` "
                             "started with the cluster's total --shards")
    cproxy.add_argument("--shards", type=int, default=None, metavar="N",
                        help="total cluster shard count (default: ask the "
                             "first backend for its shard count)")
    cproxy.add_argument("--window", type=int, default=16, metavar="N",
                        help="pipelined submits per backend channel")
    cproxy.add_argument("--retries", type=int, default=8, metavar="N",
                        help="proxy-side retries of Overloaded backend parts")
    cproxy.add_argument("--retry-backoff", type=float, default=0.002,
                        metavar="S", help="base backoff seconds per retry")
    cproxy.add_argument("--timeout", type=float, default=30.0, metavar="S",
                        help="backend reply timeout")
    cproxy.add_argument("--hold-timeout", type=float, default=60.0,
                        metavar="S",
                        help="max seconds a submit waits on a held "
                             "(migrating) shard before Overloaded")
    cproxy.add_argument("--migration-timeout", type=float, default=60.0,
                        metavar="S", help="per-migration deadline")
    cproxy.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="expose proxy /metrics on this port "
                             "(0 picks a free port)")
    cproxy.add_argument("--federate-port", type=int, default=None,
                        metavar="PORT",
                        help="serve the cluster-wide federated /metrics "
                             "(every backend page re-labeled by backend id "
                             "plus the proxy's own counters) on this port "
                             "(0 picks a free port)")
    cproxy.add_argument("--backend-metrics", default=None,
                        metavar="ID=URL,ID=URL,...",
                        help="backend metrics pages to federate, as "
                             "comma-separated id=url pairs (e.g. "
                             "127.0.0.1:7411=http://127.0.0.1:9101/metrics); "
                             "ids become the federated 'backend' label")
    cproxy.add_argument("--span-dir", default=None, metavar="DIR",
                        help="write proxy-tier request spans "
                             "(proxy.spans.jsonl) here")
    cproxy.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="arm the flight recorder to dump span rings "
                             "here on migration failure / SIGUSR1")
    for name, extra in (
        ("status", "print the live cluster map"),
        ("migrate", "live-migrate one shard to a named backend"),
        ("rebalance", "migrate shards until every backend is within one "
                      "shard of even"),
        ("drain", "live-migrate every shard off one backend so it can be "
                  "retired"),
    ):
        sub_parser = cluster_sub.add_parser(name, help=extra)
        sub_parser.add_argument("--proxy", required=True, metavar="HOST:PORT",
                                help="a running `repro cluster proxy` front "
                                     "address")
        sub_parser.add_argument("--timeout", type=float, default=60.0,
                                metavar="S", help="reply timeout")
        if name == "migrate":
            sub_parser.add_argument("--shard", type=int, required=True)
            sub_parser.add_argument("--to", required=True, metavar="ADDR",
                                    help="target backend host:port (must be "
                                         "in the cluster)")
        if name == "rebalance":
            sub_parser.add_argument("--backends", default=None,
                                    metavar="ADDR,ADDR,...",
                                    help="plan toward this backend set "
                                         "(default: the backends already in "
                                         "the map)")
        if name == "drain":
            sub_parser.add_argument("backend", metavar="ADDR",
                                    help="backend host:port to empty (the "
                                         "shards spread over the remaining "
                                         "backends)")

    replay_cmd = sub.add_parser(
        "replay", help="re-serve a recorded experience file "
                       "(`serve/loadgen --record`) under alternative "
                       "policies or configurations"
    )
    replay_sub = replay_cmd.add_subparsers(dest="replay_command",
                                           required=True)
    rrun = replay_sub.add_parser(
        "run", help="replay once; with no overrides the cost must "
                    "==-match the recorded live run"
    )
    rrun.add_argument("path", help="experience file (.npz or .jsonl)")
    rrun.add_argument("--policy", default=None,
                      help="alternative policy (default: the recorded one)")
    rrun.add_argument("--k", "--cache-size", dest="cache_size", type=int,
                      default=None, help="alternative total cache capacity")
    rrun.add_argument("--rate", type=float, default=None,
                      help="also pace the replay through a full threaded "
                           "service at this req/s (reports latency/shed)")
    rrun.add_argument("--on-overload", choices=("retry", "shed"),
                      default="retry", help="paced-mode overload policy")
    rcompare = replay_sub.add_parser(
        "compare", help="replay under several policies and tabulate "
                        "against the live run"
    )
    rcompare.add_argument("path", help="experience file (.npz or .jsonl)")
    rcompare.add_argument("--policies", required=True,
                          metavar="NAME,NAME,...",
                          help="comma-separated policy names to replay")
    rcompare.add_argument("--k", "--cache-size", dest="cache_size", type=int,
                          default=None,
                          help="alternative total cache capacity")
    rcompare.add_argument("--rate", type=float, default=None,
                          help="pace each replay at this req/s")
    rcompare.add_argument("--on-overload", choices=("retry", "shed"),
                          default="retry", help="paced-mode overload policy")
    rstats = replay_sub.add_parser(
        "stats", help="summarize a recorded experience file"
    )
    rstats.add_argument("path", help="experience file (.npz or .jsonl)")

    top = sub.add_parser(
        "top", help="live cluster status from a (federated) /metrics page"
    )
    top.add_argument("--url", required=True, metavar="URL",
                     help="a /metrics page — the proxy's --federate-port "
                          "endpoint for the cluster view, or any single "
                          "backend's --metrics-port page")
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="stop after N refreshes (0 = until SIGINT)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot (no rate deltas) and exit")
    return parser


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``serve`` and ``loadgen`` (workload + service shape)."""
    parser.add_argument("--policy", default="waterfilling",
                        help="registered policy name (see `policies`)")
    parser.add_argument("--k", "--cache-size", dest="cache_size", type=int,
                        default=64, help="total cache capacity, split across shards")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--n-pages", type=int, default=512)
    parser.add_argument("--levels", type=int, default=1)
    parser.add_argument("--requests", type=int, default=100_000)
    parser.add_argument("--workload", choices=_WORKLOADS, default="zipf")
    parser.add_argument("--alpha", type=float, default=0.9,
                        help="Zipf skew (zipf/multilevel workloads)")
    parser.add_argument("--weight-high", type=float, default=32.0,
                        help="max page weight (log-uniform in [1, high])")
    parser.add_argument("--seed", dest="master_seed", type=int, default=0)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--backend", choices=("inline", "thread", "process"),
                        default="thread",
                        help="shard execution backend: inline (submitting "
                             "thread), thread (one worker thread per shard), "
                             "or process (one worker process per shard)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="max pending batches per shard before Overloaded")
    parser.add_argument("--validate", action="store_true",
                        help="verify cache invariants after every request")
    parser.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                        help="expose Prometheus-style /metrics on this port "
                             "(0 picks a free port)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write per-shard JSONL decision traces here")
    parser.add_argument("--trace-sample", type=float, default=1.0,
                        help="fraction of requests to trace (decision "
                             "traces and request spans alike)")
    parser.add_argument("--span-dir", default=None, metavar="DIR",
                        help="write causal request spans here (svc + "
                             "per-shard JSONL; with --listen also the "
                             "net tier, with --connect the client tier), "
                             "sampled at --trace-sample")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="arm the flight recorder to dump its span "
                             "rings here on shard death / SIGUSR1")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject faults: comma-separated "
                             "kind:shard@t[:delay_s] with kind in "
                             "kill/delay/drop (e.g. kill:0@1000)")
    parser.add_argument("--checkpoint-interval", type=int, default=0,
                        metavar="N",
                        help="checkpoint each shard every N requests and "
                             "recover dead workers (0 disables recovery)")
    parser.add_argument("--max-restarts", type=int, default=3, metavar="N",
                        help="per-shard worker restart budget before the "
                             "shard is marked failed")
    parser.add_argument("--record", default=None, metavar="PATH",
                        help="record every served request (per shard, in "
                             "serve order) plus the exact config and final "
                             "ledger to PATH (.npz or .jsonl) for "
                             "`repro replay`")


def _make_workload(args) -> tuple[MultiLevelInstance, object]:
    n, k, l = args.n_pages, args.cache_size, args.levels
    if args.workload == "multilevel" or l > 1:
        inst = geometric_instance(n, k, max(l, 2))
        seq = multilevel_stream(n, inst.n_levels, args.requests,
                                alpha=args.alpha, rng=args.master_seed)
        return inst, seq
    weights = sample_weights(n, rng=args.master_seed, high=args.weight_high)
    inst = WeightedPagingInstance(k, weights)
    if args.workload == "zipf":
        seq = zipf_stream(n, args.requests, alpha=args.alpha, rng=args.master_seed)
    elif args.workload == "uniform":
        seq = uniform_stream(n, args.requests, rng=args.master_seed)
    elif args.workload == "scan":
        seq = scan_stream(min(k + 1, n), args.requests)
    else:  # working-set
        seq = working_set_stream(
            n, args.requests, set_size=max(2, k // 2),
            phase_length=max(50, args.requests // 10), rng=args.master_seed,
        )
    return inst, seq


def _cmd_run(args) -> int:
    names = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = [p for p in names if p not in policy_registry]
    if unknown:
        print(f"unknown policies: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(policy_registry))}", file=sys.stderr)
        return 2
    inst, seq = _make_workload(args)
    if args.trace:
        return _run_traced(args, names, inst, seq)
    opt_value = None
    if args.opt:
        opt = best_opt_bound(inst, seq)
        opt_value = opt.value
        print(f"offline OPT bound ({opt.method}): {opt_value:.2f}\n")
    specs = [
        RunSpec(inst, seq, policy_registry[name], n_seeds=args.seeds,
                master_seed=args.master_seed, label=name)
        for name in names
    ]
    results = run_sweep(specs, parallel=args.parallel)
    columns = ["policy", "mean cost", "stderr", "hit rate"]
    if opt_value is not None:
        columns.append("ratio vs OPT")
    table = Table(columns, title=f"{inst.name} / {args.workload}")
    for res in results:
        agg = res.aggregate
        row = [res.spec_label, agg.mean_cost, agg.stderr_cost, agg.mean_hit_rate]
        if opt_value is not None:
            row.append(competitive_ratio(agg.mean_cost, opt_value))
        table.add_row(*row)
    print(table.to_csv() if args.csv else table.render())
    return 0


def _run_traced(args, names, inst, seq) -> int:
    """``run --trace``: one traced simulate, summary table + trace file."""
    from repro.obs import DecisionTracer
    from repro.sim import simulate

    if len(names) != 1 or args.seeds != 1:
        print("--trace records one decision stream: use a single policy "
              "and --seeds 1", file=sys.stderr)
        return 2
    name = names[0]
    with DecisionTracer(args.trace, sample=args.trace_sample,
                        seed=args.master_seed, source=name) as tracer:
        result = simulate(inst, seq, policy_registry[name](),
                          seed=args.master_seed, tracer=tracer)
    table = Table(["policy", "cost", "hit rate", "evictions",
                   "traced reqs", "traced events"],
                  title=f"{inst.name} / {args.workload} (traced)")
    table.add_row(name, result.cost, result.hit_rate, result.n_evictions,
                  tracer.n_requests, tracer.n_written)
    print(table.to_csv() if args.csv else table.render())
    print(f"trace written to {args.trace} "
          f"({tracer.n_written} events, {tracer.n_dropped} dropped, "
          f"sample={args.trace_sample:g})")
    return 0


def _cmd_trace(args) -> int:
    """``trace replay`` / ``validate`` / ``stitch`` over JSONL traces."""
    from repro.obs import replay_trace, validate_trace

    try:
        if args.trace_command == "stitch":
            return _cmd_trace_stitch(args)
        if args.trace_command == "validate":
            report = validate_trace(args.path)
            print(report.render())
            return 0 if report.ok else 1
        print(replay_trace(args.path).render(top=args.top))
        return 0
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_trace_stitch(args) -> int:
    """``trace stitch``: span files -> per-trace causal waterfalls."""
    from repro.obs import read_spans, render_waterfall, stitch_spans

    traces = stitch_spans(read_spans(*args.paths))
    if args.trace is not None:
        records = traces.get(args.trace)
        if records is None:
            print(f"trace {args.trace} not found in "
                  f"{len(args.paths)} file(s)", file=sys.stderr)
            return 1
        print(render_waterfall(args.trace, records))
        return 0
    shown = 0
    for trace_id, records in traces.items():
        if len(records) < args.min_spans:
            continue
        if shown >= args.limit:
            break
        if shown:
            print()
        print(render_waterfall(trace_id, records))
        shown += 1
    n_spans = sum(len(r) for r in traces.values())
    print(f"\n{len(traces)} trace(s), {n_spans} span(s) from "
          f"{len(args.paths)} file(s); rendered {shown}")
    return 0


def _cmd_policies() -> int:
    table = Table(["name", "class"], title="registered policies")
    for name in sorted(policy_registry):
        table.add_row(name, policy_registry[name].__name__)
    print(table.render())
    return 0


def _cmd_verify(args) -> int:
    inst = geometric_instance(args.n_pages, args.cache_size, args.levels)
    seq = multilevel_stream(args.n_pages, args.levels, args.requests,
                            rng=args.seed)
    print(f"instance: {inst}; {len(seq)} requests\n")
    ok = True
    for name, verifier in [
        ("Theorem 4.1 (water-filling, c = k)", verify_waterfilling_potential),
        ("Section 4.2 (fractional, c = 4 ln(1 + 1/eta))",
         verify_fractional_potential),
    ]:
        report = verifier(inst, seq)
        status = "HOLDS" if report.holds else "VIOLATED"
        ok &= report.holds
        print(f"{name}: {status}  "
              f"(worst per-request slack {report.worst_slack():+.4f}, "
              f"c = {report.c:.2f})")
    return 0 if ok else 1


def _cmd_mrc(args) -> int:
    from repro.analysis import line_chart
    from repro.sim import lru_miss_curve, opt_miss_curve
    from repro.workloads import loop_stream

    if args.workload == "zipf":
        seq = zipf_stream(args.n_pages, args.requests, alpha=args.alpha,
                          rng=args.seed)
        name = f"zipf({args.alpha:g})"
    else:
        seq = loop_stream(args.n_pages, args.requests,
                          loop_size=args.loop_size, jitter=0.05,
                          rng=args.seed)
        name = f"loop({args.loop_size})"
    lru = lru_miss_curve(seq, args.max_k)
    opt = opt_miss_curve(seq, args.max_k)
    table = Table(["k", "LRU miss %", "MIN miss %", "LRU/MIN"],
                  title=f"miss-ratio curves, {name}, n={args.n_pages}")
    for k in range(1, args.max_k + 1):
        table.add_row(k, 100.0 * lru[k - 1] / len(seq),
                      100.0 * opt[k - 1] / len(seq),
                      lru[k - 1] / max(opt[k - 1], 1))
    print(table.render())
    if args.chart:
        ks = list(range(1, args.max_k + 1))
        print(line_chart(
            ks,
            {"LRU": (100.0 * lru / len(seq)).tolist(),
             "MIN": (100.0 * opt / len(seq)).tolist()},
            title="miss % vs cache size",
        ))
    return 0


def _cmd_lower_bound(args) -> int:
    from repro.setcover import (
        greedy_cover,
        hard_instance_family,
        phase_covers,
        phased_reduction,
    )
    from repro.sim import simulate

    if args.policy not in policy_registry:
        print(f"unknown policy {args.policy!r}", file=sys.stderr)
        return 2
    family = hard_instance_family(
        args.elements, args.sets, args.cover_size, rng=args.seed
    )
    phased = phased_reduction(family, args.phases, w=args.w,
                              repetitions=args.repetitions, rng=args.seed)
    print(
        f"set system: {family.system}; planted cover {args.cover_size}; "
        f"{phased.n_phases} phases, {len(phased.sequence)} paging requests, "
        f"k = {phased.instance.cache_size}\n"
    )
    run = simulate(phased.instance, phased.sequence,
                   policy_registry[args.policy](), seed=args.seed,
                   record_events=True)
    covers = phase_covers(phased, run.events)
    table = Table(["phase", "offline cover", "committed |D|", "valid"],
                  title=f"{args.policy} on the Theorem 3.6 stream")
    for i, (elems, cover) in enumerate(zip(phased.phase_elements, covers)):
        offline = len(greedy_cover(family.system, elems))
        table.add_row(i, offline, len(cover),
                      family.system.is_cover(cover, elems))
    print(table.render())
    print(f"total paging cost: {run.cost:.1f}")
    return 0


def _cmd_opt_bound(args) -> int:
    """``opt bound``: the certified OPT sandwich for a workload/recording."""
    from repro.errors import StateSpaceTooLargeError
    from repro.offline import (
        DEFAULT_THRESHOLDS,
        fractional_offline_opt,
        lp_divisor,
        offline_opt_multilevel,
        solve_sparse_lp,
        threshold_round,
    )

    if args.experience:
        from repro.control.experience import Experience
        from repro.core.requests import RequestSequence

        try:
            exp = Experience.load(args.experience)
        except (FileNotFoundError, OSError, KeyError, ValueError) as exc:
            print(f"cannot load experience {args.experience!r}: {exc}",
                  file=sys.stderr)
            return 2
        inst = exp.instance()
        pages, levels = exp.merged()
        seq = RequestSequence(pages, levels)
        source = args.experience
    else:
        inst, seq = _make_workload(args)
        source = f"{args.workload} workload"
    thresholds = DEFAULT_THRESHOLDS
    if args.thresholds:
        try:
            thresholds = tuple(
                float(v) for v in args.thresholds.split(",") if v.strip()
            )
        except ValueError:
            print(f"--thresholds must be comma-separated floats in (0, 1], "
                  f"got {args.thresholds!r}", file=sys.stderr)
            return 2
        if not thresholds or any(not 0 < t <= 1 for t in thresholds):
            print(f"--thresholds must be comma-separated floats in (0, 1], "
                  f"got {args.thresholds!r}", file=sys.stderr)
            return 2
    divisor = lp_divisor(inst)

    dp_value = None
    if args.prefer in ("auto", "dp"):
        try:
            dp_value = offline_opt_multilevel(inst, seq,
                                              max_states=args.max_states)
        except StateSpaceTooLargeError as exc:
            if args.prefer == "dp":
                print(f"exact DP infeasible: {exc}", file=sys.stderr)
                return 2
    lp_value = None
    lp_method = None
    solution = None
    if args.prefer == "dense-lp":
        lp_value, lp_method = fractional_offline_opt(inst, seq), "dense-lp"
    elif args.prefer != "dp":
        solution = solve_sparse_lp(inst, seq)
        lp_value, lp_method = solution.value, "sparse-lp"
    sweep = None
    if solution is not None and not args.no_round:
        sweep = threshold_round(solution, thresholds)

    lower = dp_value if dp_value is not None else lp_value / divisor
    lower_method = "dp" if dp_value is not None else lp_method
    upper = dp_value if dp_value is not None else (
        sweep.cost if sweep is not None else None)

    table = Table(["quantity", "value", "method"],
                  title=f"OPT bounds: {inst.name} / {source} "
                        f"(T={len(seq)})")
    table.add_row("lower bound", lower, lower_method)
    if dp_value is not None:
        table.add_row("exact OPT (DP)", dp_value, "dp")
    if lp_value is not None:
        table.add_row("LP value", lp_value, lp_method)
        table.add_row("LP divisor", divisor, "-")
        table.add_row("LP lower bound", lp_value / divisor, lp_method)
    if sweep is not None:
        table.add_row("rounded upper bound", sweep.cost,
                      f"threshold {sweep.best.threshold:g}")
    if upper is not None:
        table.add_row("sandwich width", upper / lower if lower > 0 else 1.0,
                      "upper / lower")
    if args.cost is not None:
        table.add_row("competitive ratio", competitive_ratio(args.cost, lower),
                      f"cost {args.cost:g} / lower bound")
    print(table.to_csv() if args.csv else table.render())
    if sweep is not None and not args.csv:
        sweep_table = Table(["threshold", "rounded cost", "evictions"],
                            title="rounding sweep")
        for schedule in sweep.schedules:
            sweep_table.add_row(schedule.threshold, schedule.cost,
                                schedule.n_evictions)
        print()
        print(sweep_table.render())
    if upper is not None:
        print(f"\nsandwich: {lower:.3f} <= OPT <= {upper:.3f}")
    if args.check:
        tol = 1e-6 + 1e-9 * max(lower, 1.0)
        failures = []
        if dp_value is not None and lp_value is not None:
            if lp_value / divisor > dp_value + tol:
                failures.append("LP/divisor exceeds the exact DP")
            if dp_value > lp_value * (1 + 1e-9) + tol:
                failures.append("DP exceeds the raw LP value")
        if sweep is not None:
            if lp_value / divisor > sweep.cost + tol:
                failures.append("rounded cost undercuts the LP bound")
            if dp_value is not None and dp_value > sweep.cost + tol:
                failures.append("rounded cost undercuts the exact DP")
        if failures:
            for failure in failures:
                print(f"sandwich check FAILED: {failure}", file=sys.stderr)
            return 1
        print("sandwich check: OK")
    return 0


def _make_service(args):
    """Build (service, sequence) from the shared serve/loadgen flags.

    ``--metrics-port`` backs the service with a real registry (otherwise
    all metric calls hit the no-op sink); ``--trace-dir`` attaches one
    decision tracer per shard before any traffic.
    """
    from repro.errors import ServiceConfigError
    from repro.obs import MetricsRegistry
    from repro.service import PagingService, ServiceConfig

    inst, seq = _make_workload(args)
    # --controller needs live signals even without an exposed /metrics
    # port, so it forces a real registry too.
    registry = (MetricsRegistry()
                if (args.metrics_port is not None
                    or getattr(args, "controller", False))
                else None)
    try:
        fault_plan = None
        if args.faults is not None:
            from repro.faults import FaultPlan

            fault_plan = FaultPlan.parse(args.faults)
        config = ServiceConfig.from_policy_name(
            args.policy, inst,
            n_shards=args.shards,
            batch_size=args.batch_size,
            queue_depth=args.queue_depth,
            seed=args.master_seed,
            validate=args.validate,
            metrics_registry=registry,
            fault_plan=fault_plan,
            checkpoint_interval=args.checkpoint_interval,
            max_restarts=args.max_restarts,
            backend=args.backend,
        )
    except ServiceConfigError as exc:
        print(str(exc), file=sys.stderr)
        return None, None
    if fault_plan is not None:
        print(f"fault plan: {fault_plan} "
              f"(checkpoint_interval={args.checkpoint_interval}, "
              f"max_restarts={args.max_restarts})")
    service = PagingService(config)
    if args.trace_dir is not None:
        paths = service.enable_tracing(args.trace_dir,
                                       sample=args.trace_sample,
                                       seed=args.master_seed)
        print(f"tracing {len(paths)} shard(s) into {args.trace_dir} "
              f"(sample={args.trace_sample:g})")
    if args.span_dir is not None:
        paths = service.enable_request_tracing(args.span_dir,
                                               sample=args.trace_sample,
                                               seed=args.master_seed)
        print(f"request spans: {len(paths)} file(s) into {args.span_dir} "
              f"(sample={args.trace_sample:g})")
    if args.flight_dir is not None:
        from repro.obs import set_flight_dump_dir

        set_flight_dump_dir(args.flight_dir)
        print(f"flight recorder armed: dumps into {args.flight_dir}")
    return service, seq


def _start_metrics_server(args, service):
    """Start the /metrics HTTP thread when ``--metrics-port`` was given."""
    if args.metrics_port is None:
        return None
    from repro.obs import MetricsServer

    server = MetricsServer(service.registry, port=args.metrics_port).start()
    print(f"metrics exposed at {server.url}")
    return server


def _make_profile(args):
    """Build the loadgen :class:`~repro.service.RateProfile` (or None)."""
    if getattr(args, "profile", "constant") == "constant":
        return None
    from repro.service import RateProfile

    return RateProfile(kind=args.profile, rate=args.rate,
                       period_s=args.profile_period,
                       low_frac=args.profile_low, duty=args.profile_duty,
                       seed=args.master_seed)


def _attach_recorder(args, service):
    """``--record``: attach an experience recorder before any traffic."""
    if getattr(args, "record", None) is None:
        return None
    from repro.control import ExperienceRecorder

    recorder = ExperienceRecorder(service.config.n_shards)
    service.attach_recorder(recorder)
    print(f"recording served traffic into {args.record}")
    return recorder


def _save_experience(args, recorder, service) -> None:
    """Freeze + write the recording (call after the final drain)."""
    if recorder is None:
        return
    path = recorder.save(args.record, service)
    print(f"experience written to {path} "
          f"({recorder.n_requests} requests, "
          f"{service.config.n_shards} shard(s))")


def _start_controller(args, service, net):
    """``serve --listen --controller``: close the admission loop."""
    from repro.control import Actuator, AdmissionController, ControllerConfig
    from repro.obs import SignalReader

    config = ControllerConfig(interval_s=args.ctl_interval,
                              high_water=args.ctl_high,
                              low_water=args.ctl_low,
                              dwell_s=args.ctl_dwell)
    actuators = [
        Actuator("inflight", lo=max(1, args.inflight // 8),
                 hi=args.inflight, apply=net.set_max_inflight),
        Actuator("queue", lo=max(1, args.queue_depth // 8),
                 hi=args.queue_depth, apply=service.set_queue_limit),
    ]
    controller = AdmissionController(
        SignalReader(service.registry), actuators, config=config,
        registry=service.registry).start()
    print(f"controller: polling every {config.interval_s:g}s, "
          f"band [{config.low_water:g}, {config.high_water:g}], "
          f"dwell {config.dwell_s:g}s, actuators "
          f"{controller.setpoints()}", flush=True)
    return controller


def _install_flight_dump_signal() -> None:
    """SIGUSR1 -> dump the flight recorder's span rings to disk.

    A no-op where the platform lacks SIGUSR1 or we are off the main
    thread; the dump itself is a no-op until ``--flight-dir`` armed a
    dump directory, so installing unconditionally is safe.
    """
    import signal

    if not hasattr(signal, "SIGUSR1"):  # pragma: no cover - non-POSIX
        return
    from repro.obs import flight_recorder

    try:
        signal.signal(signal.SIGUSR1,
                      lambda signum, frame: flight_recorder().dump("sigusr1"))
    except ValueError:  # pragma: no cover - non-main thread
        pass


class _SignalStop:
    """Installs SIGINT/SIGTERM handlers that flip one event.

    Both serve modes share the contract: the first signal requests a
    graceful stop (finish in-flight work, drain within ``--stop-timeout``,
    print the final snapshot, exit 0) instead of dying mid-batch with a
    traceback.  Previous handlers are restored on exit so tests can
    install and tear down repeatedly in one process.
    """

    def __init__(self) -> None:
        import threading

        self.event = threading.Event()
        self._previous: dict[int, object] = {}

    def __enter__(self) -> "_SignalStop":
        import signal

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[sig] = signal.signal(
                    sig, lambda signum, frame: self.event.set())
            except ValueError:  # pragma: no cover - non-main thread
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        import signal

        for sig, handler in self._previous.items():
            signal.signal(sig, handler)

    @property
    def requested(self) -> bool:
        return self.event.is_set()


def _cmd_serve(args) -> int:
    from time import perf_counter

    if args.listen is not None:
        return _cmd_serve_net(args)
    service, seq = _make_service(args)
    if service is None:
        return 2
    metrics_server = _start_metrics_server(args, service)
    recorder = _attach_recorder(args, service)
    b = args.batch_size
    print(f"serving {len(seq)} requests through {service!r}\n")
    started = perf_counter()
    try:
        with _SignalStop() as stop, service:
            n_failed_batches = 0
            for i, lo in enumerate(range(0, len(seq), b)):
                if stop.requested:
                    print("signal received: draining and stopping")
                    break
                result = service.submit_batch(seq.pages[lo:lo + b],
                                              seq.levels[lo:lo + b])
                while (not result.accepted
                       and getattr(result, "retryable", True)
                       and not stop.requested):
                    service.drain(0.01)
                    result = service.submit_batch(seq.pages[lo:lo + b],
                                                  seq.levels[lo:lo + b])
                if not result.accepted and not getattr(result, "retryable", True):
                    # Terminal (Failed): the target shard is gone; keep
                    # serving the rest of the stream and count the loss.
                    # (A retryable Overloaded abandoned because a stop
                    # signal arrived is drained below, not a loss.)
                    n_failed_batches += 1
                if args.snapshot_every and (i + 1) % args.snapshot_every == 0:
                    print(service.snapshot().render())
            service.drain(args.stop_timeout if stop.requested else None)
            elapsed = perf_counter() - started
            snap = service.snapshot()
            _save_experience(args, recorder, service)
    finally:
        if metrics_server is not None:
            metrics_server.stop()
    print(snap.render())
    rate = snap.n_requests / elapsed if elapsed > 0 else 0.0
    print(f"served {snap.n_requests} requests in {elapsed:.3f}s "
          f"({rate:,.0f} req/s), total eviction cost {snap.eviction_cost:.1f}")
    if n_failed_batches:
        print(f"failed batches (shard permanently down): {n_failed_batches}")
    return 0


def _cmd_serve_net(args) -> int:
    """``serve --listen``: expose the service over TCP until signaled.

    Shutdown order is the graceful-drain contract pinned by the tests:
    close the listening socket first (no new connections or requests),
    then stop the service under one shared ``--stop-timeout`` deadline,
    then print the final snapshot and exit 0.
    """
    from repro.errors import ServiceConfigError
    from repro.net import AdmissionPolicy, NetServer, parse_address

    service, _ = _make_service(args)
    if service is None:
        return 2
    try:
        host, port = parse_address(args.listen)
        admission = AdmissionPolicy(
            max_connections=args.max_connections,
            max_inflight=args.inflight,
            request_deadline_s=args.deadline,
        )
    except (ValueError, ServiceConfigError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    net_faults = None
    if args.net_faults is not None:
        from repro.faults import FaultPlan

        net_faults = FaultPlan.parse(args.net_faults)
        print(f"net fault plan: {net_faults} "
              "(shard = connection index, t = submit index)")
    metrics_server = _start_metrics_server(args, service)
    net_spans = None
    if args.span_dir is not None:
        from pathlib import Path

        from repro.obs import SpanExporter

        net_spans = SpanExporter(Path(args.span_dir) / "net.spans.jsonl",
                                 wall=True)
    net = None
    controller = None
    recorder = _attach_recorder(args, service)
    try:
        with _SignalStop() as stop:
            _install_flight_dump_signal()
            service.start()
            net = NetServer(service, host=host, port=port,
                            admission=admission, fault_plan=net_faults,
                            span_exporter=net_spans)
            try:
                net.start()
            except OSError as exc:
                print(f"cannot listen on {args.listen}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"listening on {net.host}:{net.port}", flush=True)
            print(f"admission: {admission.max_connections} connections, "
                  f"{admission.max_inflight} in-flight each, "
                  f"{admission.request_deadline_s:g}s deadline", flush=True)
            if args.controller:
                controller = _start_controller(args, service, net)
            stop.event.wait()
        print(f"signal received: closing listener, draining service "
              f"(timeout {args.stop_timeout:g}s)")
    finally:
        if controller is not None:
            controller.stop()
        if net is not None:
            net.stop()
        service.stop(args.stop_timeout)
        if net_spans is not None:
            net_spans.close()
        if metrics_server is not None:
            metrics_server.stop()
    if controller is not None:
        print(f"controller: {controller.n_moves} move(s), final setpoints "
              f"{controller.setpoints()}")
    _save_experience(args, recorder, service)
    print(service.snapshot().render())
    return 0


def _cmd_loadgen_net(args) -> int:
    """``loadgen --connect``: drive a remote server over the wire protocol."""
    from repro.net import RemoteError, parse_address, run_network_load

    try:
        parse_address(args.connect)
    except ValueError as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2
    _, seq = _make_workload(args)
    profile = _make_profile(args)
    print(f"load: {len(seq)} requests at {args.rate:,.0f} req/s over "
          f"{args.connections} connection(s) to {args.connect} "
          f"(window {args.window}, on_overload={args.on_overload}"
          + (f", profile {profile}" if profile is not None else "") + ")\n")
    if args.span_dir is not None:
        print(f"request spans: client.spans.jsonl into {args.span_dir} "
              f"(sample={args.trace_sample:g})")
    try:
        report = run_network_load(
            args.connect, seq,
            rate=args.rate,
            batch_size=args.batch_size,
            connections=args.connections,
            window=args.window,
            timeout=args.timeout,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            on_overload=args.on_overload,
            trace_sample=args.trace_sample if args.span_dir else 0.0,
            trace_seed=args.master_seed,
            span_dir=args.span_dir,
            profile=profile,
        )
    except (OSError, RemoteError) as exc:
        print(f"network load failed: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.n_served else 1


def _cmd_loadgen(args) -> int:
    from repro.service import run_load

    if args.connect is not None:
        return _cmd_loadgen_net(args)
    service, seq = _make_service(args)
    if service is None:
        return 2
    metrics_server = _start_metrics_server(args, service)
    recorder = _attach_recorder(args, service)
    profile = _make_profile(args)
    print(f"load: {len(seq)} requests at {args.rate:,.0f} req/s "
          f"against {service!r}"
          + (f" (profile {profile})" if profile is not None else "")
          + "\n")
    try:
        with service:
            report = run_load(service, seq, rate=args.rate,
                              batch_size=args.batch_size,
                              max_retries=args.max_retries,
                              retry_backoff=args.retry_backoff,
                              on_overload=args.on_overload,
                              profile=profile)
            snap = service.snapshot()
            _save_experience(args, recorder, service)
    finally:
        if metrics_server is not None:
            metrics_server.stop()
    print(report.render())
    print(snap.render())
    return 0 if report.n_served else 1


def _cmd_cluster_proxy(args) -> int:
    """``cluster proxy``: front the backends until SIGINT/SIGTERM."""
    from repro.cluster import ClusterMap, ClusterProxy
    from repro.errors import ServiceConfigError
    from repro.net import PagingClient, RemoteError, parse_address

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    try:
        host, port = parse_address(args.listen)
        for backend in backends:
            parse_address(backend)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not backends:
        print("--backends must name at least one host:port", file=sys.stderr)
        return 2
    # Validate flags before any network dial, so a typo fails fast.
    federation_targets: dict[str, str] = {}
    if args.backend_metrics is not None:
        for pair in args.backend_metrics.split(","):
            pair = pair.strip()
            if not pair:
                continue
            backend_id, sep, url = pair.partition("=")
            if not sep or not backend_id or not url:
                print(f"--backend-metrics entries must be id=url, "
                      f"got {pair!r}", file=sys.stderr)
                return 2
            federation_targets[backend_id] = url
    if args.federate_port is None and federation_targets:
        print("--backend-metrics requires --federate-port", file=sys.stderr)
        return 2
    n_shards = args.shards
    try:
        if n_shards is None:
            with PagingClient(backends[0], timeout=args.timeout) as probe:
                n_shards = len(probe.snapshot()["shards"])
            print(f"shard count from {backends[0]}: {n_shards}")
        cmap = ClusterMap.balanced(backends, n_shards)
    except (OSError, RemoteError) as exc:
        print(f"cannot reach backend {backends[0]}: {exc}", file=sys.stderr)
        return 2
    except ServiceConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    registry = None
    metrics_server = None
    federation_server = None
    if args.metrics_port is not None or args.federate_port is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    span_exporter = None
    if args.span_dir is not None:
        from pathlib import Path

        from repro.obs import SpanExporter

        span_dir = Path(args.span_dir)
        span_dir.mkdir(parents=True, exist_ok=True)
        span_exporter = SpanExporter(span_dir / "proxy.spans.jsonl",
                                     wall=True)
        print(f"proxy request spans into {span_dir / 'proxy.spans.jsonl'}")
    if args.flight_dir is not None:
        from repro.obs import set_flight_dump_dir

        set_flight_dump_dir(args.flight_dir)
        print(f"flight recorder armed: dumps into {args.flight_dir}")
    proxy = ClusterProxy(
        cmap, host=host, port=port,
        window=args.window, retries=args.retries,
        retry_backoff=args.retry_backoff, timeout=args.timeout,
        hold_timeout=args.hold_timeout,
        migration_timeout=args.migration_timeout,
        registry=registry,
        span_exporter=span_exporter,
    )
    try:
        with _SignalStop() as stop:
            _install_flight_dump_signal()
            try:
                proxy.start(check_backends=True)
            except (OSError, RemoteError) as exc:
                print(f"cluster proxy failed to start: {exc}", file=sys.stderr)
                return 2
            if args.metrics_port is not None:
                from repro.obs import MetricsServer

                metrics_server = MetricsServer(
                    registry, port=args.metrics_port).start()
                print(f"metrics exposed at {metrics_server.url}")
            if args.federate_port is not None:
                from repro.obs import FederationServer, Federator

                federation_server = FederationServer(
                    Federator(federation_targets, local_registry=registry),
                    port=args.federate_port).start()
                print(f"federated metrics at {federation_server.url} "
                      f"({len(federation_targets)} backend target(s))",
                      flush=True)
            print(f"listening on {proxy.host}:{proxy.port}", flush=True)
            print(f"cluster map: {proxy.table.map!r}", flush=True)
            stop.event.wait()
        print("signal received: closing proxy")
    finally:
        proxy.stop()
        if span_exporter is not None:
            span_exporter.close()
        if metrics_server is not None:
            metrics_server.stop()
        if federation_server is not None:
            federation_server.stop()
    status = proxy.status()
    print(f"final map: {proxy.table.map!r} "
          f"({status['n_migrations']} migration(s))")
    return 0


def _render_cluster_status(status: dict) -> str:
    table = Table(["shard", "backend"],
                  title=f"cluster map @ epoch {status['epoch']} "
                        f"({status['n_migrations']} migration(s))")
    for shard, address in enumerate(status["assignment"]):
        table.add_row(shard, address)
    spread = ", ".join(f"{b}:{n}" for b, n in status["counts"].items())
    return f"{table.render()}\nspread: {spread}"


def _cmd_cluster_control(args) -> int:
    """``cluster status`` / ``migrate`` / ``rebalance`` against a proxy."""
    from repro.cluster import ClusterMap
    from repro.net import PagingClient, RemoteError, parse_address

    try:
        parse_address(args.proxy)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        with PagingClient(args.proxy, timeout=args.timeout) as client:
            if args.cluster_command == "status":
                print(_render_cluster_status(client.cluster_status()))
                return 0
            if args.cluster_command == "migrate":
                reply = client.move_shard(args.shard, args.to,
                                          timeout=args.timeout)
                print(reply.detail)
                if reply.ok:
                    print(f"epoch now {reply.epoch}")
                return 0 if reply.ok else 1
            if args.cluster_command == "drain":
                # Same deterministic plan drain_backend() follows: the
                # shrunk pool's rebalance moves, restricted to the
                # drained backend's shards.
                cmap = ClusterMap.from_dict(client.cluster_status())
                if args.backend not in cmap.backends:
                    print(f"backend {args.backend!r} not in cluster "
                          f"{list(cmap.backends)}", file=sys.stderr)
                    return 2
                remaining = [b for b in cmap.backends if b != args.backend]
                if not remaining:
                    print(f"cannot drain {args.backend!r}: it is the last "
                          f"backend", file=sys.stderr)
                    return 2
                moves = [(s, src, t)
                         for s, src, t in cmap.rebalance_moves(remaining)
                         if src == args.backend]
                for shard, _source, target in moves:
                    reply = client.move_shard(shard, target,
                                              timeout=args.timeout)
                    print(reply.detail)
                    if not reply.ok:
                        return 1
                print(f"drained {len(moves)} shard(s) off {args.backend}")
                print(_render_cluster_status(client.cluster_status()))
                return 0
            # rebalance: plan locally from the live map, apply move by move.
            status = client.cluster_status()
            cmap = ClusterMap.from_dict(status)
            pool = None
            if args.backends is not None:
                pool = [b.strip() for b in args.backends.split(",")
                        if b.strip()]
            moves = cmap.rebalance_moves(pool)
            if not moves:
                print(f"already balanced: {cmap!r}")
                return 0
            for shard, source, target in moves:
                reply = client.move_shard(shard, target, timeout=args.timeout)
                print(reply.detail)
                if not reply.ok:
                    return 1
            print(_render_cluster_status(client.cluster_status()))
            return 0
    except (OSError, RemoteError) as exc:
        print(f"cluster {args.cluster_command} failed: {exc}", file=sys.stderr)
        return 1


def _cmd_cluster(args) -> int:
    if args.cluster_command == "proxy":
        return _cmd_cluster_proxy(args)
    return _cmd_cluster_control(args)


def _cmd_replay(args) -> int:
    """``replay run|compare|stats`` over an experience file."""
    from repro.control import Experience, ReplayEngine
    from repro.errors import ServiceConfigError

    try:
        experience = Experience.load(args.path)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    engine = ReplayEngine(experience)
    live = experience.meta.get("live", {})
    if args.replay_command == "stats":
        stats = experience.stats()
        table = Table(["shard", "requests"],
                      title=f"experience: {args.path}")
        for shard, count in enumerate(stats["per_shard"]):
            table.add_row(shard, count)
        print(table.render())
        levels = ", ".join(f"L{lv}:{n}"
                           for lv, n in stats["level_counts"].items())
        print(f"{stats['n_requests']} requests, "
              f"{stats['unique_pages']} unique pages, levels {levels}")
        meta = experience.meta
        print(f"recorded: policy={meta['policy']} k={meta['cache_size']} "
              f"shards={meta['n_shards']} seed={meta['seed']} "
              f"live cost={live.get('eviction_cost', 0.0):.1f}")
        return 0
    try:
        if args.replay_command == "compare":
            names = [p.strip() for p in args.policies.split(",")
                     if p.strip()]
            print(engine.compare(names, cache_size=args.cache_size,
                                 rate=args.rate,
                                 on_overload=args.on_overload).render())
            return 0
        result = engine.run(policy=args.policy, cache_size=args.cache_size,
                            rate=args.rate, on_overload=args.on_overload)
    except ServiceConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    table = Table(["config", "cost", "hits", "misses", "evictions"],
                  title=f"replay of {args.path}")
    table.add_row(f"live ({experience.meta['policy']})",
                  live.get("eviction_cost", 0.0),
                  live.get("n_hits", 0), live.get("n_misses", 0),
                  live.get("n_evictions", 0))
    table.add_row(f"{result.policy} (k={result.cache_size})",
                  result.eviction_cost, result.n_hits, result.n_misses,
                  result.n_evictions)
    print(table.render())
    if result.report is not None:
        print(result.report.render())
    baseline = args.policy is None and args.cache_size is None
    if baseline:
        if engine.matches_live(result):
            print("replay cost == live cost (exact)")
            return 0
        print("REPLAY MISMATCH: replayed "
              f"{result.eviction_cost!r} != live "
              f"{live.get('eviction_cost')!r}", file=sys.stderr)
        return 1
    delta = result.eviction_cost - float(live.get("eviction_cost", 0.0))
    print(f"cost vs live: {delta:+.1f}")
    return 0


def _top_value(families: dict, family: str, **labels) -> float:
    """Sum of a family's samples whose labels include ``labels``."""
    fam = families.get(family)
    if fam is None:
        return 0.0
    want = set(labels.items())
    return sum(value for sample_name, sample_labels, value in fam.samples
               if sample_name == family and want <= set(sample_labels))


def _top_histogram_quantile(families: dict, family: str, q: float,
                            **labels) -> float:
    """``q``-quantile (ms) from cumulative ``<family>_bucket`` samples.

    Linear interpolation within the winning bucket, the standard
    Prometheus ``histogram_quantile`` estimate; +Inf-bucket hits clamp
    to the largest finite edge.
    """
    fam = families.get(family)
    if fam is None:
        return 0.0
    want = set(labels.items())
    buckets: dict[float, float] = {}
    for sample_name, sample_labels, value in fam.samples:
        if sample_name != f"{family}_bucket":
            continue
        label_map = dict(sample_labels)
        le = label_map.pop("le", None)
        if le is None or not want <= set(label_map.items()):
            continue
        edge = float("inf") if le in ("+Inf", "inf") else float(le)
        buckets[edge] = buckets.get(edge, 0.0) + value
    if not buckets:
        return 0.0
    edges = sorted(buckets)
    total = buckets[edges[-1]]
    if total <= 0:
        return 0.0
    rank = q * total
    prev_edge, prev_count = 0.0, 0.0
    for edge in edges:
        count = buckets[edge]
        if count >= rank:
            if edge == float("inf"):
                finite = [e for e in edges if e != float("inf")]
                return 1e3 * (finite[-1] if finite else 0.0)
            if count == prev_count:
                return 1e3 * edge
            frac = (rank - prev_count) / (count - prev_count)
            return 1e3 * (prev_edge + frac * (edge - prev_edge))
        prev_edge, prev_count = edge, count
    return 1e3 * edges[-1]


def _top_backends(families: dict) -> list[str]:
    """Backend ids present in the page, excluding synthetic aggregates."""
    ids: list[str] = []
    for family in ("repro_federation_up", "repro_requests_total"):
        fam = families.get(family)
        if fam is None:
            continue
        for _name, sample_labels, _value in fam.samples:
            for key, value in sample_labels:
                if (key == "backend" and value not in ("all", "max", "proxy")
                        and value not in ids):
                    ids.append(value)
        if ids:
            return ids
    # A plain (un-federated) backend page has no backend label at all.
    return [""]


def _render_top(families: dict, prev: dict | None, dt: float | None) -> str:
    """One ``repro top`` frame from a parsed (federated) metrics page."""
    table = Table(
        ["backend", "req/s", "requests", "p50 ms", "p99 ms", "queue", "up"],
        title="cluster top",
    )
    for backend in _top_backends(families):
        labels = {"backend": backend} if backend else {}
        requests = _top_value(families, "repro_requests_total", **labels)
        rate = float("nan")
        if prev is not None and dt is not None and dt > 0:
            rate = (requests - _top_value(prev, "repro_requests_total",
                                          **labels)) / dt
        up_fam = families.get("repro_federation_up")
        up = ("yes" if _top_value(families, "repro_federation_up", **labels)
              else "DOWN") if up_fam is not None and backend else "-"
        table.add_row(
            backend or "(local)",
            "-" if rate != rate else f"{rate:,.0f}",
            int(requests),
            _top_histogram_quantile(
                families, "repro_batch_latency_seconds", 0.50, **labels),
            _top_histogram_quantile(
                families, "repro_batch_latency_seconds", 0.99, **labels),
            int(_top_value(families, "repro_queue_depth", **labels)),
            up,
        )
    epoch = _top_value(families, "repro_proxy_epoch", backend="proxy")
    if not epoch:
        epoch = _top_value(families, "repro_proxy_epoch")
    migrations = _top_value(families, "repro_proxy_migrations_total")
    inflight = _top_value(families, "repro_proxy_migrations_inflight")
    footer = (f"epoch {int(epoch)}, {int(migrations)} migration(s) done, "
              f"{int(inflight)} in flight")
    return f"{table.render()}\n{footer}"


def _cmd_top(args) -> int:
    """``top``: poll a (federated) /metrics page into a live status table."""
    from time import monotonic, sleep

    from repro.obs import parse_exposition
    from repro.obs.federation import scrape

    prev: dict | None = None
    prev_at: float | None = None
    refreshes = 0
    try:
        while True:
            try:
                text = scrape(args.url, timeout=5.0)
            except (OSError, ValueError) as exc:
                print(f"top: scrape of {args.url} failed: {exc}",
                      file=sys.stderr)
                return 1
            now = monotonic()
            families = parse_exposition(text)
            dt = None if prev_at is None else now - prev_at
            print(_render_top(families, prev, dt), flush=True)
            refreshes += 1
            if args.once or (args.iterations
                             and refreshes >= args.iterations):
                return 0
            prev, prev_at = families, now
            sleep(args.interval)
            print()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "mrc":
        return _cmd_mrc(args)
    if args.command == "lower-bound":
        return _cmd_lower_bound(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "opt":
        return _cmd_opt_bound(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "report":
        from repro.analysis.report import consolidate_results

        try:
            print(consolidate_results(args.results_dir))
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        return 0
    return _cmd_verify(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
