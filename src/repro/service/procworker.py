"""Process-backed shard workers: one OS process per shard engine.

The thread backend keeps every :class:`~repro.service.engine.ShardEngine`
in the parent process, so pure-Python ``policy.serve`` loops contend for
one GIL and aggregate throughput plateaus at a single core.  This module
moves each engine into its own **spawned** process:

* :func:`_child_main` — the worker process entry point.  It builds a
  fresh engine from a picklable :class:`WorkerSpec` (null metrics
  registry; the parent owns exposition) and serves a tiny op loop over a
  :class:`multiprocessing.connection.Connection`: ``batch`` / ``checkpoint``
  / ``restore`` / ``stop``.  Because the child owns a real
  ``ShardEngine``, the columnar ``serve_batch`` fast path (see
  :mod:`repro.algorithms.kernels`) engages in the worker automatically
  whenever the configured policy exposes it — each micro-batch arriving
  over the pipe is already the numpy array the kernel consumes.
* :class:`ProcEngine` — the parent-side handle.  It mimics exactly the
  slice of the ``ShardEngine`` interface the service uses
  (``process_batch``, ``capture_state`` / ``restore_from``, ``snapshot``,
  ``ledger``, ``n_requests``, ``profiler``), so
  :class:`~repro.service.server.PagingService`, the supervisor and
  :class:`~repro.faults.ShardCheckpoint` drive both backends through one
  code path.

Determinism and observability
-----------------------------
Every batch ack carries the child ledger's **absolute totals** (hits,
misses, evictions, cost, per-level breakdowns) — not deltas — so the
parent-side mirror ledger is bit-exact at every batch boundary and
``total_cost()`` / ledger-equality assertions hold across backends.
Registry counters are advanced by the non-negative per-ack differences
(under recovery a restore rolls the totals back and replayed work counts
again — *at-least-once*, the standard Prometheus-counter-across-restart
semantics), so ``/metrics`` exposes the same families with the same
labels as the thread backend.

Tracing lives in the child: the worker owns the per-shard JSONL file and
its engine tracer, keyed to the shard's logical clock, so traces remain
byte-identical across inline/thread/process backends.  A *respawned*
worker re-opens the file in resume mode (no second ``meta`` line) and the
restore op rewinds it to the checkpoint mark before replay.

Failure surface
---------------
A broken pipe (the child was SIGKILLed, crashed, or exited) raises
:class:`~repro.errors.WorkerDiedError` on the worker thread, which rides
the existing worker-death path: with recovery armed the supervisor calls
``checkpoint.restore`` and :meth:`ProcEngine.restore_from` respawns the
process before handing it the pickled state.  An in-child exception (e.g.
a validation failure or injected fault) is shipped back and re-raised in
the parent; the child stays alive awaiting a restore.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
from dataclasses import dataclass, replace
from time import perf_counter

import numpy as np

from repro.core.instance import MultiLevelInstance
from repro.errors import ServiceStateError, WorkerDiedError
from repro.obs.registry import MetricsRegistry, null_registry
from repro.obs.spans import PhaseProfiler
from repro.obs.tracer import DecisionTracer
from repro.service.engine import ShardEngine
from repro.service.metrics import LatencyHistogram, ShardSnapshot

__all__ = ["WorkerSpec", "ProcEngine"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs to rebuild its shard engine.

    Must round-trip through pickle (the spawn context re-imports the
    module tree in the child): ``policy_factory`` is therefore typically
    a registered policy *class*, pickled by reference.
    """

    shard_id: int
    instance: MultiLevelInstance
    policy_factory: object
    rng_seed: int
    validate: bool = False
    latency_window: int = 4096
    #: Optional tracing config: (path, sample, seed, max_events, source).
    trace: tuple | None = None
    #: True on respawn: re-open the trace file without a new meta line.
    trace_resume: bool = False


def _totals(engine: ShardEngine) -> tuple:
    """The child ledger's absolute totals, as shipped in every ack."""
    ledger = engine.ledger
    return (
        engine.n_requests,
        engine.n_batches,
        ledger.n_hits,
        ledger.n_misses,
        ledger.n_evictions,
        ledger.eviction_cost,
        dict(ledger.cost_by_level),
        dict(ledger.evictions_by_level),
    )


def _child_main(conn, spec: WorkerSpec) -> None:
    """Worker process entry point: build the engine, serve the op loop."""
    engine = ShardEngine(
        spec.shard_id,
        spec.instance,
        spec.policy_factory(),
        np.random.default_rng(spec.rng_seed),
        validate=spec.validate,
        latency_window=spec.latency_window,
    )
    tracer = None
    if spec.trace is not None:
        path, sample, seed, max_events, source = spec.trace
        tracer = DecisionTracer(
            path, sample=sample, seed=seed, max_events=max_events,
            source=source, resume=spec.trace_resume,
        )
        engine.set_tracer(tracer)
    try:
        while True:
            try:
                op = conn.recv()
            except (EOFError, OSError):
                return  # parent went away: nothing left to serve
            kind = op[0]
            if kind == "batch":
                started = perf_counter()
                try:
                    engine.process_batch(op[1], op[2])
                except BaseException as exc:  # ship it; stay up for restore
                    conn.send(("error", exc))
                else:
                    conn.send(
                        ("ack",) + _totals(engine)
                        + (perf_counter() - started,)
                    )
            elif kind == "checkpoint":
                payload, mark, t = engine.capture_state()
                conn.send(("ckpt", payload, mark, t))
            elif kind == "restore":
                engine.restore_from(op[1], op[2])
                conn.send(("restored",) + _totals(engine))
            elif kind == "stop":
                conn.send(("stopped",))
                return
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", ServiceStateError(f"unknown op {kind!r}")))
    finally:
        if tracer is not None:
            tracer.close()
        conn.close()


class _MirrorLedger:
    """Parent-side mirror of a child engine's ledger (absolute totals).

    Written only from acks (exact at every batch boundary), read by
    snapshots and ``total_cost()`` — the same benign-torn-read contract
    as the in-process ledgers.
    """

    __slots__ = ("n_hits", "n_misses", "n_evictions", "eviction_cost",
                 "cost_by_level", "evictions_by_level")

    def __init__(self) -> None:
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self.eviction_cost = 0.0
        self.cost_by_level: dict[int, float] = {}
        self.evictions_by_level: dict[int, int] = {}


class ProcEngine:
    """Parent-side handle driving one shard engine in a worker process.

    Mirrors the ``ShardEngine`` surface the service layer touches; all
    pipe traffic happens on the single worker thread that owns the shard
    (the same single-consumer contract as the thread backend), so no
    locking is needed around the connection.
    """

    def __init__(
        self,
        shard_id: int,
        instance: MultiLevelInstance,
        policy_factory,
        rng_seed: int,
        *,
        validate: bool = False,
        latency_window: int = 4096,
        registry: MetricsRegistry | None = None,
    ) -> None:
        reg = registry if registry is not None else null_registry()
        shard_label = str(shard_id)
        self.shard_id = shard_id
        self.instance = instance
        self.ledger = _MirrorLedger()
        self.profiler = PhaseProfiler()
        self.latency = LatencyHistogram(
            latency_window,
            metric=reg.histogram(
                "repro_batch_latency_seconds",
                "Batch service time per shard",
                ("shard",),
            ).labels(shard_label),
        )
        self._spec = WorkerSpec(
            shard_id=shard_id,
            instance=instance,
            policy_factory=policy_factory,
            rng_seed=rng_seed,
            validate=validate,
            latency_window=latency_window,
        )
        self._t = 0
        self.n_batches = 0
        self._ctx = mp.get_context("spawn")
        self._proc = None
        self._conn = None
        # Same exposition families as ShardEngine + ServiceLedger, advanced
        # by per-ack diffs so /metrics reads identically across backends.
        self._m_requests = reg.counter(
            "repro_requests_total", "Requests served", ("shard",)
        ).labels(shard_label)
        self._m_hits = reg.counter(
            "repro_hits_total", "Requests served without cache changes",
            ("shard",),
        ).labels(shard_label)
        self._m_misses = reg.counter(
            "repro_misses_total", "Requests that required cache changes",
            ("shard",),
        ).labels(shard_label)
        self._m_batches = reg.counter(
            "repro_batches_total", "Micro-batches processed", ("shard",)
        ).labels(shard_label)
        self._f_evictions = reg.counter(
            "repro_evictions_total", "Evictions charged to this ledger",
            ("shard", "level"),
        )
        self._f_cost = reg.counter(
            "repro_eviction_cost_total",
            "Total eviction cost (the paper's objective)",
            ("shard", "level"),
        )
        self._level_children: dict[int, tuple] = {}

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the worker process is alive."""
        return self._proc is not None and self._proc.is_alive()

    def spawn(self) -> None:
        """Start the worker process (first launch: fresh trace file)."""
        self._launch(resume=False)

    def _launch(self, *, resume: bool) -> None:
        if self.running:
            raise ServiceStateError(
                f"shard {self.shard_id} worker already running"
            )
        if self._conn is not None:
            self._conn.close()
        spec = self._spec
        if spec.trace is not None:
            spec = replace(spec, trace_resume=resume)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_child_main, args=(child_conn, spec),
            name=f"repro-shard-{self.shard_id}-proc", daemon=True,
        )
        proc.start()
        child_conn.close()
        self._proc, self._conn = proc, parent_conn

    def set_trace_config(self, path, *, sample: float, seed: int,
                         max_events: int, source: str) -> None:
        """Record the tracing config the worker applies at spawn time."""
        if self._proc is not None:
            raise ServiceStateError(
                "tracing must be configured before the worker is spawned"
            )
        self._spec = replace(
            self._spec,
            trace=(str(path), float(sample), int(seed), int(max_events),
                   source),
        )

    def kill_worker(self) -> None:
        """SIGKILL the worker process and wait for it to die.

        Used by the fault-injection layer so ``kill`` faults exercise real
        process death (no Python cleanup, no atexit) rather than a raised
        exception.  Waiting keeps the subsequent restart deterministic:
        ``restore_from`` sees a dead process and respawns.
        """
        if self._proc is not None and self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=10.0)

    def shutdown(self, timeout: float | None = None) -> None:
        """Stop the worker: polite stop op, then terminate, then kill."""
        proc, conn = self._proc, self._conn
        if proc is None:
            return
        wait = 5.0 if timeout is None else max(timeout, 0.1)
        if proc.is_alive() and conn is not None:
            try:
                conn.send(("stop",))
                if conn.poll(wait):
                    conn.recv()
            except (EOFError, OSError):
                pass
        proc.join(timeout=wait)
        if proc.is_alive():  # pragma: no cover - unresponsive child
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        if conn is not None:
            conn.close()
        self._proc = self._conn = None

    # -- request path --------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Requests acked by the worker so far (the mirrored logical clock)."""
        return self._t

    def totals(self) -> tuple[int, float]:
        """``(n_evictions, eviction_cost)`` from the mirrored totals.

        Acks carry the child ledger's *absolute* values, so at every
        batch boundary this answer is bit-identical to the in-process
        :meth:`ShardEngine.totals` — which is what keeps request-trace
        ``evict`` spans byte-identical across backends.
        """
        mirror = self.ledger
        return mirror.n_evictions, mirror.eviction_cost

    def _roundtrip(self, op: tuple) -> tuple:
        conn = self._conn
        if conn is None:
            raise WorkerDiedError(
                f"shard {self.shard_id} worker process is not running"
            )
        try:
            conn.send(op)
            msg = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerDiedError(
                f"shard {self.shard_id} worker process died"
            ) from exc
        if msg[0] == "error":
            raise msg[1]
        return msg

    def process_batch(self, pages: np.ndarray, levels: np.ndarray) -> None:
        """Ship one micro-batch to the worker and fold its ack into the mirror."""
        msg = self._roundtrip(("batch", pages, levels))
        self._apply_totals(msg[1:9])
        elapsed = msg[9]
        self.latency.observe(elapsed)
        self.profiler.record("evict", elapsed)

    def _apply_totals(self, totals: tuple) -> None:
        (t, n_batches, hits, misses, n_ev, cost, cost_by_level,
         evictions_by_level) = totals
        mirror = self.ledger
        # Exposition counters move by the non-negative diff: a restore
        # rolls totals back (diff would be negative -> no-op) and replay
        # counts again, the at-least-once counter contract.
        self._m_requests.inc(max(0, t - self._t))
        self._m_hits.inc(max(0, hits - mirror.n_hits))
        self._m_misses.inc(max(0, misses - mirror.n_misses))
        self._m_batches.inc(max(0, n_batches - self.n_batches))
        for level, n in evictions_by_level.items():
            children = self._level_children.get(level)
            if children is None:
                lv = str(level)
                children = (
                    self._f_evictions.labels(str(self.shard_id), lv),
                    self._f_cost.labels(str(self.shard_id), lv),
                )
                self._level_children[level] = children
            children[0].inc(max(0, n - mirror.evictions_by_level.get(level, 0)))
            children[1].inc(max(
                0.0, cost_by_level[level] - mirror.cost_by_level.get(level, 0.0)
            ))
        mirror.n_hits = hits
        mirror.n_misses = misses
        mirror.n_evictions = n_ev
        mirror.eviction_cost = cost
        mirror.cost_by_level = cost_by_level
        mirror.evictions_by_level = evictions_by_level
        self._t = t
        self.n_batches = n_batches

    # -- checkpoint support --------------------------------------------------
    def capture_state(self) -> tuple[bytes, tuple | None, int]:
        """Ask the worker for a pickled state payload + trace mark."""
        msg = self._roundtrip(("checkpoint",))
        return msg[1], msg[2], msg[3]

    def restore_from(self, payload: bytes, trace_mark) -> None:
        """Install a checkpoint payload, respawning a dead worker first."""
        if not self.running:
            self._launch(resume=self._spec.trace is not None)
        msg = self._roundtrip(("restore", payload, trace_mark))
        self._apply_totals(msg[1:9])

    # -- observability -------------------------------------------------------
    def snapshot(self, *, queue_depth: int = 0) -> ShardSnapshot:
        """Point-in-time counters from the parent-side mirror."""
        mirror = self.ledger
        p50, p95, p99 = self.latency.percentiles_ms()
        return ShardSnapshot(
            shard=self.shard_id,
            cache_size=self.instance.cache_size,
            n_requests=self._t,
            n_hits=mirror.n_hits,
            n_misses=mirror.n_misses,
            n_evictions=mirror.n_evictions,
            eviction_cost=mirror.eviction_cost,
            cost_by_level=dict(mirror.cost_by_level),
            evictions_by_level=dict(mirror.evictions_by_level),
            n_batches=self.n_batches,
            queue_depth=queue_depth,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
            spans=self.profiler.stats(),
        )

    def __repr__(self) -> str:
        state = "alive" if self.running else "down"
        return (
            f"ProcEngine(shard={self.shard_id}, {state}, served={self._t}, "
            f"cost={self.ledger.eviction_cost:.3f})"
        )
