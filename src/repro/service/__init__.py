"""repro.service — a sharded online paging service over the paper's policies.

The offline harness materializes a whole trace and hands it to
:func:`repro.sim.simulate`; this package wraps the same verified substrate
(:class:`~repro.core.cache.MultiLevelCache` + a :class:`~repro.algorithms.base.Policy`)
behind a long-lived, stream-oriented server:

* :class:`ShardRouter` hash-partitions the page universe across ``N``
  independent shard engines (deterministic splitmix64 routing, so the same
  trace always produces the same per-shard cost ledgers),
* :class:`ShardEngine` owns one verifying cache + policy per shard and
  consumes request micro-batches,
* :class:`PagingService` ties them together with bounded per-shard queues —
  overload surfaces as an explicit :class:`Overloaded` response instead of
  unbounded memory growth,
* :class:`~repro.service.metrics.ServiceSnapshot` exposes monotonic counters
  (hits, misses, eviction cost per level), batch-latency percentiles, and
  per-phase :class:`~repro.obs.SpanStats` (``ingest`` / ``route`` /
  ``evict`` / ``snapshot``),
* :func:`run_load` replays any :mod:`repro.workloads` stream at a target
  request rate and reports achieved throughput + tail latency, with
  retry-with-backoff or shed-on-overload client policies.

Failure semantics: with ``ServiceConfig.checkpoint_interval > 0`` the
service checkpoints every shard periodically and a supervisor restarts
dead workers from the last checkpoint, replaying a bounded in-memory log —
recovered runs end with byte-identical per-shard ledgers and traces.  A
shard past its restart budget fails its pending tickets (``ticket.ok`` is
False, ``wait()`` never hangs) and later submissions touching it return
:class:`Failed`.  See :mod:`repro.faults` for the deterministic
fault-injection layer used to test this.

Observability (:mod:`repro.obs`) is opt-in and free when off: pass a
:class:`~repro.obs.MetricsRegistry` via ``ServiceConfig.metrics_registry``
to publish Prometheus-style exposition metrics (serve it with
:class:`~repro.obs.MetricsServer`), and call
:meth:`PagingService.enable_tracing` before traffic to write per-shard
JSONL decision traces that are byte-identical between inline and threaded
runs.

Quick start::

    from repro.service import PagingService, ServiceConfig, run_load

    config = ServiceConfig.from_policy_name(
        "waterfilling", instance, n_shards=4, seed=0
    )
    with PagingService(config) as svc:
        report = run_load(svc, seq, rate=100_000)
    print(report.render())
    print(svc.snapshot().render())
"""

from repro.service.config import ServiceConfig
from repro.service.engine import ShardEngine
from repro.service.ingest import (
    BatchTicket,
    Failed,
    MicroBatcher,
    Overloaded,
    Shed,
)
from repro.service.loadgen import LoadReport, run_load
from repro.service.metrics import (
    LatencyHistogram,
    ServiceLedger,
    ServiceSnapshot,
    ShardSnapshot,
)
from repro.service.profiles import PROFILE_KINDS, RateProfile
from repro.service.router import ShardRouter
from repro.service.server import PagingService

__all__ = [
    "PROFILE_KINDS",
    "RateProfile",
    "ServiceConfig",
    "ShardEngine",
    "BatchTicket",
    "Failed",
    "MicroBatcher",
    "Overloaded",
    "Shed",
    "LoadReport",
    "run_load",
    "LatencyHistogram",
    "ServiceLedger",
    "ServiceSnapshot",
    "ShardSnapshot",
    "ShardRouter",
    "PagingService",
]
