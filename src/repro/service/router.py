"""Deterministic hash routing of pages to shards.

Routing must be (a) stable across processes and Python versions — so no
builtin ``hash`` — and (b) uncorrelated with page ids, since workload
generators hand out ids in frequency order (page 0 is the hottest Zipf
page) and a naive ``page % n_shards`` would alias hot pages onto one
shard for power-of-two shard counts.  We use the splitmix64 finalizer,
vectorized over uint64 page arrays, and reduce modulo the shard count.

Every copy of a page lives on exactly one shard, so the one-copy-per-page
invariant is preserved globally, and per-shard request order equals the
arrival order of that shard's pages — which is what makes sharded runs
bit-reproducible regardless of worker-thread scheduling.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServiceConfigError

__all__ = ["ShardRouter", "splitmix64"]

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    z = (values + np.uint64(0x9E3779B97F4A7C15)) & _MASK
    z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK
    z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK
    return z ^ (z >> np.uint64(31))


class ShardRouter:
    """Stable ``page -> shard`` assignment plus order-preserving batch splits."""

    __slots__ = ("n_shards", "_salt")

    def __init__(self, n_shards: int, *, salt: int = 0) -> None:
        if n_shards < 1:
            raise ServiceConfigError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self._salt = np.uint64(salt)

    def shard_of(self, page: int) -> int:
        """The shard that owns ``page``."""
        mixed = splitmix64(np.asarray([page], dtype=np.uint64) ^ self._salt)
        return int(mixed[0] % np.uint64(self.n_shards))

    def shards_of(self, pages: np.ndarray) -> np.ndarray:
        """Vectorized shard assignment for an int page array."""
        mixed = splitmix64(pages.astype(np.uint64) ^ self._salt)
        return (mixed % np.uint64(self.n_shards)).astype(np.int64)

    def split(
        self, pages: np.ndarray, levels: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Partition a batch by owning shard, preserving arrival order.

        Returns one ``(pages, levels)`` pair per shard; empty shards get
        empty arrays.  With one shard the input arrays are passed through
        unsplit (so the single-shard service adds no routing overhead).
        """
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        levels = np.ascontiguousarray(levels, dtype=np.int64)
        if self.n_shards == 1:
            return [(pages, levels)]
        owners = self.shards_of(pages)
        return [
            (pages[owners == s], levels[owners == s])
            for s in range(self.n_shards)
        ]

    def page_partition(self, n_pages: int) -> list[np.ndarray]:
        """All page ids owned by each shard (diagnostics / balance checks)."""
        owners = self.shards_of(np.arange(n_pages, dtype=np.int64))
        return [np.flatnonzero(owners == s) for s in range(self.n_shards)]

    def __repr__(self) -> str:
        return f"ShardRouter(n_shards={self.n_shards})"
