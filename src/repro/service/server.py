"""The paging service: router + shard engines + bounded ingest queues.

:class:`PagingService` runs in one of two modes:

* **inline** (default after construction) — :meth:`submit_batch` routes and
  serves the batch on the caller's thread.  Deterministic, zero queueing,
  ideal for benchmarks and tests.
* **threaded** (after :meth:`start`, or inside a ``with`` block) — each
  shard owns a bounded :class:`queue.Queue` drained by a dedicated worker
  thread.  Submissions that would overflow any target shard queue are
  rejected with :class:`~repro.service.ingest.Overloaded` — the service
  never buffers unboundedly.

Either way, per-shard request order equals arrival order, so the per-shard
cost ledgers are bit-reproducible for a given (seed, trace) regardless of
thread scheduling — the property the conformance tests pin down.
"""

from __future__ import annotations

import queue as _queue
import threading
from pathlib import Path
from time import monotonic, sleep

import numpy as np

from repro.errors import ServiceStateError
from repro.obs.registry import null_registry
from repro.obs.spans import PhaseProfiler
from repro.obs.tracer import DecisionTracer
from repro.service.config import ServiceConfig
from repro.service.engine import ShardEngine
from repro.service.ingest import BatchTicket, MicroBatcher, Overloaded
from repro.service.metrics import ServiceSnapshot
from repro.service.router import ShardRouter
from repro.sim.seeding import spawn_seeds

__all__ = ["PagingService"]

_STOP = object()


class PagingService:
    """A long-lived, sharded serving front-end over any registered policy."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.registry = (config.metrics_registry
                         if config.metrics_registry is not None
                         else null_registry())
        self.router = ShardRouter(config.n_shards)
        seeds = spawn_seeds(config.seed, config.n_shards)
        self.engines = [
            ShardEngine(
                i, inst, config.policy_factory(), np.random.default_rng(seed),
                validate=config.validate, latency_window=config.latency_window,
                registry=self.registry,
            )
            for i, (inst, seed) in enumerate(zip(config.shard_instances(), seeds))
        ]
        self.profiler = PhaseProfiler()
        self._tracers: list[DecisionTracer] = []
        self._m_overloaded = self.registry.counter(
            "repro_overloaded_total", "Batch submissions rejected for backpressure"
        )
        self._m_queue_depth = self.registry.gauge(
            "repro_queue_depth", "Pending batches per shard queue", ("shard",)
        )
        self._queues: list[_queue.Queue] = []
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopped = False
        self._n_overloaded = 0
        self._n_batches = 0
        self._errors: list[BaseException] = []
        self._lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._batcher = MicroBatcher(
            config.batch_size, config.flush_interval, self.submit_batch
        )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "PagingService":
        """Switch to threaded mode: one bounded queue + worker per shard."""
        if self._stopped:
            raise ServiceStateError("service already stopped")
        if self._started:
            raise ServiceStateError("service already started")
        self._queues = [
            _queue.Queue(maxsize=self.config.queue_depth) for _ in self.engines
        ]
        self._threads = [
            threading.Thread(
                target=self._worker, args=(shard,),
                name=f"repro-shard-{shard}", daemon=True,
            )
            for shard in range(self.config.n_shards)
        ]
        self._started = True
        for t in self._threads:
            t.start()
        return self

    def stop(self, timeout: float | None = None) -> None:
        """Drain pending work, stop the workers, and seal the service."""
        if self._stopped:
            return
        if self._started:
            self.drain(timeout)
            for q in self._queues:
                q.put(_STOP)
            for t in self._threads:
                t.join(timeout)
        else:
            self._flush_pending(timeout)
        self._stopped = True
        for tracer in self._tracers:
            tracer.close()
        self._raise_pending()

    def __enter__(self) -> "PagingService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingest ------------------------------------------------------------
    def submit(self, page: int, level: int = 1):
        """Offer one request to the micro-batcher (single-producer API).

        Returns None while the request is buffered, otherwise the flush
        result (:class:`BatchTicket` or :class:`Overloaded`).
        """
        return self._batcher.offer(page, level)

    def flush(self):
        """Force the micro-batcher to submit its partial batch, if any."""
        return self._batcher.flush()

    def submit_batch(self, pages, levels=None) -> BatchTicket | Overloaded:
        """Submit one micro-batch; returns a ticket or an overload response.

        ``levels`` defaults to all-ones (weighted paging).  In threaded
        mode the batch is accepted only if *every* target shard queue has
        room — all-or-nothing, so a rejected batch leaves no partial state
        anywhere and can be retried verbatim.

        The whole submission is timed under the ``ingest`` span (in inline
        mode that includes serving) and the shard split under ``route``.
        """
        self._raise_pending()
        if self._stopped:
            raise ServiceStateError("cannot submit to a stopped service")
        with self.profiler.span("ingest"):
            pages = np.ascontiguousarray(pages, dtype=np.int64)
            if levels is None:
                levels = np.ones_like(pages)
            else:
                levels = np.ascontiguousarray(levels, dtype=np.int64)
            self.config.instance.validate_sequence(pages, levels)
            with self.profiler.span("route"):
                parts = [
                    (shard, p, lv)
                    for shard, (p, lv) in enumerate(self.router.split(pages, levels))
                    if p.size
                ]
            if not self._started:
                ticket = BatchTicket(len(parts), int(pages.size))
                for shard, p, lv in parts:
                    self.engines[shard].process_batch(p, lv)
                    ticket.part_done()
                self._n_batches += 1
                return ticket
            with self._lock:
                for shard, _, _ in parts:
                    if self._queues[shard].full():
                        self._n_overloaded += 1
                        self._m_overloaded.inc()
                        return Overloaded(shard, self.config.queue_depth)
                ticket = BatchTicket(len(parts), int(pages.size))
                self._inflight += len(parts)
                for shard, p, lv in parts:
                    self._queues[shard].put((ticket, p, lv))
                self._n_batches += 1
            return ticket

    def drain(self, timeout: float | None = None) -> bool:
        """Flush the micro-batcher and wait until all queued work is served.

        Returns False if the timeout expired with work still in flight.
        """
        deadline = None if timeout is None else monotonic() + timeout
        if not self._flush_pending(timeout):
            return False
        if not self._started:
            return True
        with self._idle:
            remaining = (None if deadline is None
                         else max(0.0, deadline - monotonic()))
            ok = self._idle.wait_for(lambda: self._inflight == 0, remaining)
        self._raise_pending()
        return ok

    def _flush_pending(self, timeout: float | None) -> bool:
        """Retry-flush the micro-batcher until accepted or timed out."""
        deadline = None if timeout is None else monotonic() + timeout
        while len(self._batcher):
            result = self._batcher.flush()
            if result is None or result.accepted:
                return True
            if deadline is not None and monotonic() >= deadline:
                return False
            sleep(0.0005)
        return True

    # -- worker loop -------------------------------------------------------
    def _worker(self, shard: int) -> None:
        q = self._queues[shard]
        engine = self.engines[shard]
        while True:
            item = q.get()
            if item is _STOP:
                return
            ticket, pages, levels = item
            try:
                engine.process_batch(pages, levels)
            except BaseException as exc:  # surfaced on next submit/drain
                with self._lock:
                    self._errors.append(exc)
            finally:
                ticket.part_done()
                with self._idle:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.notify_all()

    def _raise_pending(self) -> None:
        if self._errors:
            exc = self._errors[0]
            raise ServiceStateError(
                f"shard worker failed: {exc!r}"
            ) from exc

    # -- observability -----------------------------------------------------
    @property
    def n_overloaded(self) -> int:
        """Number of batch submissions rejected for backpressure."""
        return self._n_overloaded

    def total_cost(self) -> float:
        """Total eviction cost across all shards (the paper's objective)."""
        return sum(e.ledger.eviction_cost for e in self.engines)

    def enable_tracing(
        self,
        directory,
        *,
        sample: float = 1.0,
        seed: int = 0,
        max_events: int = 1_000_000,
    ) -> list[Path]:
        """Attach one :class:`~repro.obs.DecisionTracer` per shard.

        Writes ``shard-<i>.jsonl`` files under ``directory`` (created if
        missing).  Events are keyed to each shard's *logical* clock and the
        sampling decision is a pure function of ``(seed, t)``, so inline
        and threaded runs of the same workload produce byte-identical
        per-shard traces.  Traces are closed by :meth:`stop`.

        Must be called before any traffic (the traced loop needs to see
        every request of a sampled shard clock from t = 0).
        """
        if self._stopped:
            raise ServiceStateError("service already stopped")
        if self._tracers:
            raise ServiceStateError("tracing already enabled")
        if any(e.n_requests for e in self.engines):
            raise ServiceStateError(
                "enable_tracing must be called before any traffic"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        for engine in self.engines:
            path = directory / f"shard-{engine.shard_id}.jsonl"
            tracer = DecisionTracer(
                path, sample=sample, seed=seed, max_events=max_events,
                source=f"shard-{engine.shard_id}",
            )
            engine.set_tracer(tracer)
            self._tracers.append(tracer)
            paths.append(path)
        return paths

    def snapshot(self) -> ServiceSnapshot:
        """Point-in-time counters for every shard plus ingest totals."""
        with self.profiler.span("snapshot"):
            depths = (
                [q.qsize() for q in self._queues] if self._started
                else [0] * len(self.engines)
            )
            for shard, depth in enumerate(depths):
                self._m_queue_depth.labels(str(shard)).set(depth)
            shards = tuple(
                e.snapshot(queue_depth=d)
                for e, d in zip(self.engines, depths)
            )
        # Spans are read after the snapshot span closes, so even the first
        # snapshot reports its own timing.
        return ServiceSnapshot(
            shards=shards,
            n_overloaded=self._n_overloaded,
            n_submitted_batches=self._n_batches,
            spans=self.profiler.stats(),
        )

    def __repr__(self) -> str:
        mode = ("stopped" if self._stopped
                else "threaded" if self._started else "inline")
        return (
            f"PagingService(shards={self.config.n_shards}, mode={mode}, "
            f"served={sum(e.n_requests for e in self.engines)})"
        )
