"""The paging service: router + shard engines + bounded ingest queues.

:class:`PagingService` serves through one of three backends
(``config.backend``):

* **inline** — :meth:`submit_batch` routes and serves the batch on the
  caller's thread; :meth:`start` is a no-op.  Deterministic, zero
  queueing, ideal for benchmarks and tests.  (The default ``thread``
  backend also serves inline until :meth:`start` is called.)
* **thread** (after :meth:`start`, or inside a ``with`` block) — each
  shard owns a bounded :class:`queue.Queue` drained by a dedicated worker
  thread.  Submissions that would overflow any target shard queue are
  rejected with :class:`~repro.service.ingest.Overloaded` — the service
  never buffers unboundedly.
* **process** — the same bounded queues and worker threads, but each
  worker thread is a thin proxy: the shard engine lives in its own
  spawned OS process (:class:`~repro.service.procworker.ProcEngine`),
  fed micro-batches over a pipe.  This is the only backend whose
  aggregate throughput scales with cores; it requires :meth:`start`
  before any traffic.

Either way, per-shard request order equals arrival order, so the per-shard
cost ledgers are bit-reproducible for a given (seed, trace) regardless of
thread scheduling — the property the conformance tests pin down.

Failure semantics (threaded mode)
---------------------------------
With ``checkpoint_interval > 0`` the service *recovers* from worker
deaths: every accepted shard slice is also appended to a bounded in-memory
replay log, each worker checkpoints its engine every ``checkpoint_interval``
requests, and a supervisor thread restarts dead workers from their last
checkpoint and replays the log suffix — per-shard ledgers and traces end
byte-identical to a fault-free run.  A shard that exhausts its
``max_restarts`` budget is marked **failed**: its pending tickets complete
with a failure result (``ticket.ok`` is False; ``wait()`` never hangs) and
subsequent submissions touching it return
:class:`~repro.service.ingest.Failed`.

With ``checkpoint_interval == 0`` (the default) there is no recovery: a
worker death fails the shard immediately — pending tickets complete as
failed and the error is re-raised on the next submit/drain.
"""

from __future__ import annotations

import queue as _queue
import threading
from dataclasses import replace
from pathlib import Path
from time import monotonic, perf_counter, sleep

import numpy as np

from repro.errors import InjectedFault, ServiceStateError
from repro.faults.checkpoint import ShardCheckpoint
from repro.obs.registry import null_registry
from repro.obs.rtrace import (
    RequestSampler,
    SpanExporter,
    TraceContext,
    flight_recorder,
)
from repro.obs.spans import PhaseProfiler
from repro.obs.tracer import DecisionTracer
from repro.service.config import ServiceConfig
from repro.service.engine import ShardEngine
from repro.service.ingest import BatchTicket, Failed, MicroBatcher, Overloaded
from repro.service.metrics import ServiceSnapshot
from repro.service.procworker import ProcEngine
from repro.service.router import ShardRouter
from repro.sim.seeding import spawn_seeds

__all__ = ["PagingService"]

_STOP = object()


class _Part:
    """One shard's slice of an accepted batch, as logged and queued."""

    __slots__ = ("seq", "ticket", "pages", "levels", "completed",
                 "trace", "trace_t")

    def __init__(self, seq: int, ticket: BatchTicket,
                 pages: np.ndarray, levels: np.ndarray,
                 trace=None, trace_t: int = 0) -> None:
        self.seq = seq
        self.ticket = ticket
        self.pages = pages
        self.levels = levels
        #: Resolved exactly once (done or failed); guarded by the service
        #: lock so replay and queue consumption cannot double-complete.
        self.completed = False
        #: Request-trace context for this slice's shard-tier spans (the
        #: ``queue`` child), plus the logical submit time it was minted at.
        self.trace = trace
        self.trace_t = trace_t


class _ShardState:
    """Per-shard recovery bookkeeping owned by the service."""

    __slots__ = ("shard", "next_seq", "applied_seq", "log", "checkpoint",
                 "since_checkpoint", "restarts", "failed", "fail_error",
                 "n_checkpoints", "n_restores", "n_replayed", "op_lock")

    def __init__(self, shard: int) -> None:
        self.shard = shard
        #: Serializes engine access between the shard's worker thread and
        #: an external capture/install (cluster migration).  The worker
        #: holds it for the whole of ``_process_one`` — including the
        #: periodic checkpoint, which talks to the worker *process* on the
        #: process backend — so a migrator that holds it while the shard
        #: is quiescent owns the engine (and its pipe) exclusively.
        self.op_lock = threading.Lock()
        #: Sequence numbers are per-shard, assigned under the service lock
        #: at admission; queue order equals seq order equals arrival order.
        self.next_seq = 0
        #: Highest seq whose batch has been applied to the engine.
        self.applied_seq = 0
        #: Admitted-but-not-yet-pruned parts, in seq order.  Superset of
        #: the shard queue's contents, so recovery can replay everything
        #: the dead worker had popped but not finished.
        self.log: list[_Part] = []
        self.checkpoint: ShardCheckpoint | None = None
        self.since_checkpoint = 0
        self.restarts = 0
        self.failed = False
        self.fail_error: BaseException | None = None
        self.n_checkpoints = 0
        self.n_restores = 0
        self.n_replayed = 0


class PagingService:
    """A long-lived, sharded serving front-end over any registered policy."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.registry = (config.metrics_registry
                         if config.metrics_registry is not None
                         else null_registry())
        self.router = ShardRouter(config.n_shards)
        seeds = spawn_seeds(config.seed, config.n_shards)
        if config.backend == "process":
            self.engines = [
                ProcEngine(
                    i, inst, config.policy_factory, seed,
                    validate=config.validate,
                    latency_window=config.latency_window,
                    registry=self.registry,
                )
                for i, (inst, seed) in enumerate(
                    zip(config.shard_instances(), seeds)
                )
            ]
        else:
            self.engines = [
                ShardEngine(
                    i, inst, config.policy_factory(),
                    np.random.default_rng(seed),
                    validate=config.validate,
                    latency_window=config.latency_window,
                    registry=self.registry,
                )
                for i, (inst, seed) in enumerate(
                    zip(config.shard_instances(), seeds)
                )
            ]
        self.profiler = PhaseProfiler()
        self._tracers: list[DecisionTracer] = []
        self._m_overloaded = self.registry.counter(
            "repro_overloaded_total", "Batch submissions rejected for backpressure"
        )
        self._m_queue_depth = self.registry.gauge(
            "repro_queue_depth", "Pending batches per shard queue", ("shard",)
        )
        # Per-shard children cached once: the queue-depth gauge is now
        # updated continuously on the ingest/serve hot paths (the control
        # plane's primary signal), not only on snapshot().
        self._m_qdepth = [self._m_queue_depth.labels(str(i))
                          for i in range(config.n_shards)]
        self._m_queue_cap = self.registry.gauge(
            "repro_queue_capacity",
            "Effective per-shard queue limit (config depth or the "
            "controller's soft shed threshold)")
        self._m_queue_cap.set(config.queue_depth)
        self._m_checkpoints = self.registry.counter(
            "repro_checkpoints_total", "Shard checkpoints taken", ("shard",)
        )
        self._m_restores = self.registry.counter(
            "repro_restores_total", "Shard checkpoint restores", ("shard",)
        )
        self._m_replayed = self.registry.counter(
            "repro_replayed_batches_total",
            "Replay-log batches re-applied after a restore", ("shard",)
        )
        self._m_restarts = self.registry.counter(
            "repro_worker_restarts_total", "Shard worker restarts", ("shard",)
        )
        self._m_faults = self.registry.counter(
            "repro_faults_injected_total", "Injected faults fired",
            ("shard", "kind"),
        )
        self._m_failed_parts = self.registry.counter(
            "repro_failed_parts_total",
            "Batch slices completed with a failure result", ("shard",)
        )
        self._recovery = config.checkpoint_interval > 0
        self._plan = config.fault_plan
        self._states = [_ShardState(i) for i in range(config.n_shards)]
        self._queues: list[_queue.Queue] = []
        self._threads: list[threading.Thread] = []
        self._supervisor: threading.Thread | None = None
        self._death_q: _queue.Queue = _queue.Queue()
        self._started = False
        self._stopped = False
        self._trace_enabled = False
        self._rtrace = False
        self._rsampler: RequestSampler | None = None
        self._svc_spans: SpanExporter | None = None
        self._shard_spans: list[SpanExporter] = []
        self._rt_next = 0
        self._rt_lock = threading.Lock()
        self._n_overloaded = 0
        self._n_batches = 0
        self._soft_queue_limit: int | None = None
        self._recorder = None
        self._errors: list[BaseException] = []
        self._lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._batcher = MicroBatcher(
            config.batch_size, config.flush_interval, self.submit_batch
        )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "PagingService":
        """Arm the configured backend: one bounded queue + worker per shard.

        With ``backend="inline"`` this is a no-op (the service keeps
        serving on the submitting thread); with ``backend="process"`` the
        shard worker processes are spawned before the proxy threads start.
        """
        if self._stopped:
            raise ServiceStateError("service already stopped")
        if self.config.backend == "inline":
            return self
        if self._started:
            raise ServiceStateError("service already started")
        if self.config.backend == "process":
            for engine in self.engines:
                engine.spawn()
        self._queues = [
            _queue.Queue(maxsize=self.config.queue_depth) for _ in self.engines
        ]
        self._threads = [
            threading.Thread(
                target=self._worker, args=(shard,),
                name=f"repro-shard-{shard}", daemon=True,
            )
            for shard in range(self.config.n_shards)
        ]
        self._started = True
        for t in self._threads:
            t.start()
        if self._recovery:
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-supervisor", daemon=True,
            )
            self._supervisor.start()
        return self

    def stop(self, timeout: float | None = None) -> None:
        """Drain pending work, stop the workers, and seal the service.

        ``timeout`` is one *shared* monotonic deadline covering the drain,
        every worker join and the supervisor join — the whole call returns
        within ``timeout`` seconds of being made (not ``timeout`` per
        thread).
        """
        if self._stopped:
            return
        deadline = None if timeout is None else monotonic() + timeout

        def remaining() -> float | None:
            if deadline is None:
                return None
            return max(0.0, deadline - monotonic())

        if self._started:
            self.drain(remaining())
            for q in self._queues:
                # A full queue always has a live consumer making progress
                # (failed shards have their queues drained when marked), so
                # a blocking put terminates; the deadline still bounds it.
                try:
                    if deadline is None:
                        q.put(_STOP)
                    else:
                        q.put(_STOP, timeout=max(remaining(), 1e-3))
                except _queue.Full:
                    pass
            if self._supervisor is not None:
                self._death_q.put(_STOP)
                self._supervisor.join(remaining())
            with self._lock:
                threads = list(self._threads)
            for t in threads:
                t.join(remaining())
            if self.config.backend == "process":
                for engine in self.engines:
                    engine.shutdown(remaining())
        else:
            self._flush_pending(remaining())
        self._stopped = True
        for tracer in self._tracers:
            tracer.close()
        if self._svc_spans is not None:
            self._svc_spans.close()
        for exporter in self._shard_spans:
            exporter.close()
        self._raise_pending()

    @property
    def started(self) -> bool:
        """True once :meth:`start` switched the service to threaded mode."""
        return self._started

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` sealed the service."""
        return self._stopped

    def __enter__(self) -> "PagingService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingest ------------------------------------------------------------
    def submit(self, page: int, level: int = 1):
        """Offer one request to the micro-batcher (single-producer API).

        Returns None while the request is buffered, otherwise the flush
        result (:class:`BatchTicket`, :class:`Overloaded`,
        :class:`~repro.service.ingest.Failed` or
        :class:`~repro.service.ingest.Shed`).
        """
        return self._batcher.offer(page, level)

    def flush(self):
        """Force the micro-batcher to submit its partial batch, if any."""
        return self._batcher.flush()

    def submit_batch(self, pages, levels=None, *,
                     trace: TraceContext | None = None,
                     ) -> BatchTicket | Overloaded | Failed:
        """Submit one micro-batch; returns a ticket or a rejection response.

        ``levels`` defaults to all-ones (weighted paging).  In threaded
        mode the batch is accepted only if *every* target shard queue has
        room — all-or-nothing, so a rejected batch leaves no partial state
        anywhere and can be retried verbatim.  A batch touching a
        permanently failed shard returns :class:`Failed` (recovery mode)
        or raises :class:`~repro.errors.ServiceStateError` (no recovery).

        The whole submission is timed under the ``ingest`` span (in inline
        mode that includes serving) and the shard split under ``route``.

        With request tracing armed (:meth:`enable_request_tracing`),
        ``trace`` carries an upstream :class:`TraceContext` (the network
        frontend extracts it from the wire envelope); ``None`` makes the
        service mint its own root from the deterministic submit counter.
        Sampled submissions emit ``admit``/``route`` and per-shard
        ``queue`` spans here on the submitting thread — identically in
        inline and queued modes — and ``batch``/``evict`` spans from
        whichever thread serves the slice (see :meth:`_serve_part`).
        """
        self._raise_pending()
        if self._stopped:
            raise ServiceStateError("cannot submit to a stopped service")
        with self.profiler.span("ingest"):
            pages = np.ascontiguousarray(pages, dtype=np.int64)
            if levels is None:
                levels = np.ones_like(pages)
            else:
                levels = np.ascontiguousarray(levels, dtype=np.int64)
            self.config.instance.validate_sequence(pages, levels)
            ctx, t = trace, 0
            if self._rtrace:
                with self._rt_lock:
                    t = self._rt_next
                    self._rt_next += 1
                if ctx is None:
                    ctx = self._rsampler.context(t)
            with self.profiler.span("route"):
                parts = [
                    (shard, p, lv)
                    for shard, (p, lv) in enumerate(self.router.split(pages, levels))
                    if p.size
                ]
            queue_ctxs: dict[int, TraceContext] = {}
            if self._rtrace and ctx is not None:
                admit = self._svc_spans.emit(
                    ctx, "admit", tier="svc", t=t,
                    attrs={"n_requests": int(pages.size)})
                route = self._svc_spans.emit(
                    admit, "route", tier="svc", t=t,
                    attrs={"n_parts": len(parts)})
                for shard, p, _ in parts:
                    queue_ctxs[shard] = self._svc_spans.emit(
                        route, "queue", tier="svc", t=t, index=shard,
                        attrs={"shard": shard, "n_requests": int(p.size)})
            if not self._started:
                if self.config.backend == "process":
                    raise ServiceStateError(
                        "the process backend serves no traffic before "
                        "start(); call start() (or use a with block) first"
                    )
                ticket = BatchTicket(len(parts), int(pages.size))
                for shard, p, lv in parts:
                    if self._recorder is not None:
                        self._recorder.record(shard, p, lv)
                    self._serve_part(shard, self.engines[shard], p, lv,
                                     queue_ctxs.get(shard), t)
                    ticket.part_done()
                self._n_batches += 1
                return ticket
            limit = self._soft_queue_limit
            with self._lock:
                for shard, _, _ in parts:
                    state = self._states[shard]
                    if state.failed:
                        if self._recovery:
                            return Failed(shard, state.fail_error)
                        raise ServiceStateError(
                            f"shard worker failed: {state.fail_error!r}"
                        ) from state.fail_error
                for shard, _, _ in parts:
                    q = self._queues[shard]
                    if q.full() or (limit is not None
                                    and q.qsize() >= limit):
                        self._n_overloaded += 1
                        self._m_overloaded.inc()
                        return Overloaded(shard, self.queue_limit)
                ticket = BatchTicket(len(parts), int(pages.size))
                self._inflight += len(parts)
                for shard, p, lv in parts:
                    state = self._states[shard]
                    state.next_seq += 1
                    part = _Part(state.next_seq, ticket, p, lv,
                                 queue_ctxs.get(shard), t)
                    if self._recorder is not None:
                        self._recorder.record(shard, p, lv)
                    state.log.append(part)
                    self._queues[shard].put(part)
                    self._m_qdepth[shard].set(self._queues[shard].qsize())
                self._n_batches += 1
            return ticket

    def drain(self, timeout: float | None = None) -> bool:
        """Flush the micro-batcher and wait until all queued work is served.

        Returns False if the timeout expired with work still in flight.
        Never hangs on a dead shard: recovery completes its work, and an
        unrecoverable shard's parts are completed as failed.
        """
        deadline = None if timeout is None else monotonic() + timeout
        if not self._flush_pending(timeout):
            return False
        if not self._started:
            return True
        with self._idle:
            remaining = (None if deadline is None
                         else max(0.0, deadline - monotonic()))
            ok = self._idle.wait_for(lambda: self._inflight == 0, remaining)
        self._raise_pending()
        return ok

    def _flush_pending(self, timeout: float | None) -> bool:
        """Retry-flush the micro-batcher until accepted, shed or timed out."""
        deadline = None if timeout is None else monotonic() + timeout
        while len(self._batcher):
            result = self._batcher.flush()
            if result is None or result.accepted:
                return True
            if not getattr(result, "retryable", True):
                # Terminal rejection: the batcher already shed the buffer.
                return True
            if deadline is not None and monotonic() >= deadline:
                return False
            sleep(0.0005)
        return True

    # -- shard handoff (cluster migration) ---------------------------------
    def _quiesce_shard(self, shard: int, timeout: float | None) -> _ShardState:
        """Wait until ``shard`` has applied everything it admitted.

        The caller must guarantee no *new* submissions touching the shard
        arrive while waiting (the cluster proxy holds the shard's traffic
        first), so ``next_seq`` stops moving and ``applied_seq`` catches
        up.  Other shards may keep serving throughout — this never waits
        on global idleness, which would hang under continuous load.
        """
        if not 0 <= shard < len(self.engines):
            raise ValueError(
                f"shard must be in [0, {len(self.engines)}), got {shard}")
        state = self._states[shard]
        deadline = None if timeout is None else monotonic() + timeout
        while True:
            if state.failed:
                raise ServiceStateError(
                    f"shard {shard} is permanently failed: "
                    f"{state.fail_error!r}")
            if state.next_seq == state.applied_seq:
                return state
            if deadline is not None and monotonic() >= deadline:
                raise ServiceStateError(
                    f"shard {shard} did not quiesce within {timeout:g}s "
                    f"(applied {state.applied_seq}/{state.next_seq})")
            sleep(0.0005)

    def capture_shard(self, shard: int,
                      timeout: float | None = None) -> ShardCheckpoint:
        """Quiesce one shard and checkpoint its engine for handoff.

        Unlike the periodic recovery checkpoints this is callable from any
        thread: the per-shard op lock hands the (possibly process-backed)
        engine over exclusively once the worker is idle.  The rest of the
        service keeps serving other shards while the capture runs.
        """
        self._raise_pending()
        if self._stopped:
            raise ServiceStateError("cannot capture a shard on a stopped service")
        state = self._quiesce_shard(shard, timeout)
        with state.op_lock:
            if state.next_seq != state.applied_seq:  # pragma: no cover
                raise ServiceStateError(
                    f"shard {shard} received traffic during capture")
            return ShardCheckpoint.capture(
                self.engines[shard], seq=state.applied_seq)

    def install_shard(self, shard: int, checkpoint: ShardCheckpoint,
                      timeout: float | None = None) -> None:
        """Install a checkpoint captured on another service into ``shard``.

        The caller contract mirrors :meth:`capture_shard`: the shard must
        see no traffic until this returns.  The foreign trace mark is
        ignored (marks are file positions on the source host); with
        recovery armed a fresh *local* checkpoint is taken immediately so
        a later worker death restores the installed state, never the
        pre-migration one.
        """
        self._raise_pending()
        if self._stopped:
            raise ServiceStateError("cannot install into a stopped service")
        state = self._quiesce_shard(shard, timeout)
        engine = self.engines[shard]
        with state.op_lock:
            if state.next_seq != state.applied_seq:  # pragma: no cover
                raise ServiceStateError(
                    f"shard {shard} received traffic during install")
            engine.restore_from(checkpoint.payload, None)
            if self._recovery:
                self._take_checkpoint(state, engine)

    # -- worker loop -------------------------------------------------------
    def _worker(self, shard: int, *, recovered: bool = False) -> None:
        state = self._states[shard]
        engine = self.engines[shard]
        q = self._queues[shard]
        try:
            if recovered:
                with state.op_lock:
                    self._recover(state, engine)
            elif self._recovery and state.checkpoint is None:
                # Seed checkpoint at t=0 so even a first-interval death
                # can be recovered.
                with state.op_lock:
                    self._take_checkpoint(state, engine)
            while True:
                item = q.get()
                if item is _STOP:
                    return
                if item.seq <= state.applied_seq:
                    # Already applied (and completed) during replay.
                    continue
                with state.op_lock:
                    self._process_one(state, engine, item)
        except BaseException as exc:  # worker death: recover or fail shard
            self._on_worker_death(state, exc)

    def _process_one(self, state: _ShardState, engine: ShardEngine,
                     part: _Part) -> None:
        """Apply one logged part: faults, serve, complete, checkpoint."""
        self._m_qdepth[state.shard].set(self._queues[state.shard].qsize())
        if self._plan is not None:
            t_last = engine.n_requests + int(part.pages.size) - 1
            spec = self._plan.poll(state.shard, t_last)
            if spec is not None:
                self._m_faults.labels(str(state.shard), spec.kind).inc()
                if spec.kind == "delay":
                    sleep(spec.delay_s)
                else:
                    # kill: die before serving (engine state intact).  On
                    # the process backend a kill is a *real* SIGKILL of
                    # the worker process — no Python cleanup, the pipe
                    # just breaks — before the proxy thread dies too.
                    # drop: the queue slot is lost with the worker; only
                    # the replay log can restore the slice.  Either way
                    # the part stays un-completed and un-applied, so
                    # recovery replays it from the log.
                    if spec.kind == "kill":
                        kill = getattr(engine, "kill_worker", None)
                        if kill is not None:
                            kill()
                    raise InjectedFault(f"injected fault: {spec}")
        self._serve_part(state.shard, engine, part.pages, part.levels,
                         part.trace, part.trace_t)
        state.applied_seq = part.seq
        state.since_checkpoint += int(part.pages.size)
        self._complete_part(part)
        if self._recovery:
            if (state.since_checkpoint >= self.config.checkpoint_interval
                    or len(state.log) >= self.config.replay_log_cap):
                self._take_checkpoint(state, engine)
        else:
            self._prune_log(state)

    def _serve_part(self, shard: int, engine, pages, levels,
                    ctx: TraceContext | None, t: int) -> None:
        """Serve one shard slice, emitting shard-tier spans when sampled.

        The ``batch``/``evict`` spans are computed from before/after
        eviction totals (:meth:`ShardEngine.totals`), which the process
        backend mirrors bit-exactly from its worker acks — so the shard
        span files are byte-identical across inline/thread/process
        backends for the same seed.  Recovery replay re-emits a replayed
        slice's spans; their ids are deterministic, so stitching dedups
        them (:func:`repro.obs.rtrace.stitch_spans`).
        """
        if ctx is None or not ctx.sampled or not self._rtrace:
            engine.process_batch(pages, levels)
            return
        ev0, cost0 = engine.totals()
        engine.process_batch(pages, levels)
        ev1, cost1 = engine.totals()
        exp = self._shard_spans[shard]
        batch = exp.emit(ctx, "batch", tier="shard", t=t,
                         attrs={"shard": shard, "n_requests": int(pages.size)})
        exp.emit(batch, "evict", tier="shard", t=t,
                 attrs={"shard": shard, "n_evictions": ev1 - ev0,
                        "cost": cost1 - cost0})

    def _complete_part(self, part: _Part,
                       error: BaseException | None = None) -> None:
        """Resolve one part exactly once (done, or failed with ``error``)."""
        with self._idle:
            if part.completed:
                return
            part.completed = True
        if error is None:
            part.ticket.part_done()
        else:
            part.ticket.part_failed(error)
        with self._idle:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def _prune_log(self, state: _ShardState) -> None:
        """Drop applied entries (no-recovery mode keeps the log minimal)."""
        with self._lock:
            applied = state.applied_seq
            state.log = [p for p in state.log if p.seq > applied]

    def _take_checkpoint(self, state: _ShardState, engine: ShardEngine) -> None:
        started = perf_counter()
        state.checkpoint = ShardCheckpoint.capture(engine, seq=state.applied_seq)
        engine.profiler.record("checkpoint", perf_counter() - started)
        state.since_checkpoint = 0
        state.n_checkpoints += 1
        self._m_checkpoints.labels(str(state.shard)).inc()
        # The checkpoint covers everything up to its seq; prune the log.
        with self._lock:
            seq = state.checkpoint.seq
            state.log = [p for p in state.log if p.seq > seq]

    def _recover(self, state: _ShardState, engine: ShardEngine) -> None:
        """Restore the last checkpoint and replay the logged suffix."""
        ckpt = state.checkpoint
        if ckpt is None:
            raise ServiceStateError(
                f"shard {state.shard} has no checkpoint to restore"
            )
        with self._lock:
            pending = [p for p in state.log if p.seq > ckpt.seq]
        started = perf_counter()
        ckpt.restore(engine)
        engine.profiler.record("restore", perf_counter() - started)
        state.applied_seq = ckpt.seq
        state.since_checkpoint = 0
        state.n_restores += 1
        self._m_restores.labels(str(state.shard)).inc()
        started = perf_counter()
        n = 0
        try:
            for part in pending:
                # Replay re-applies every logged batch past the checkpoint
                # — including ones the dead worker completed (their effects
                # were rolled back with the restore; _complete_part keeps
                # their tickets resolved exactly once) and ones still
                # sitting in the queue (the seq guard skips them on pop).
                self._process_one(state, engine, part)
                n += 1
                state.n_replayed += 1
                self._m_replayed.labels(str(state.shard)).inc()
        finally:
            engine.profiler.record("replay", perf_counter() - started)

    def _on_worker_death(self, state: _ShardState, exc: BaseException) -> None:
        # Postmortem first: the flight recorder's span rings still hold
        # the causal context leading up to the death (no-op unless a dump
        # directory was armed).
        flight_recorder().dump(f"shard-{state.shard}-death")
        if self._recovery:
            self._death_q.put((state.shard, exc))
            return
        with self._lock:
            self._errors.append(exc)
            state.failed = True
            state.fail_error = exc
        self._fail_shard_parts(state, exc)

    def _fail_shard_parts(self, state: _ShardState,
                          exc: BaseException) -> None:
        """Complete every pending part of a dead shard as failed.

        ``state.failed`` must already be set (under the lock) so no new
        part can be admitted for this shard while we sweep.
        """
        q = self._queues[state.shard]
        while True:
            try:
                q.get_nowait()
            except _queue.Empty:
                break
        with self._lock:
            parts = list(state.log)
            state.log = []
        error = ServiceStateError(f"shard {state.shard} failed: {exc!r}")
        error.__cause__ = exc
        for part in parts:
            if not part.completed:
                self._m_failed_parts.labels(str(state.shard)).inc()
            self._complete_part(part, error=error)

    def _supervise(self) -> None:
        """Restart dead workers from their checkpoints; fail them past budget."""
        while True:
            msg = self._death_q.get()
            if msg is _STOP:
                return
            shard, exc = msg
            state = self._states[shard]
            with self._lock:
                give_up = state.restarts >= self.config.max_restarts
                if give_up:
                    state.failed = True
                    state.fail_error = exc
                else:
                    state.restarts += 1
                    n = state.restarts
            if give_up:
                self._fail_shard_parts(state, exc)
                continue
            self._m_restarts.labels(str(shard)).inc()
            thread = threading.Thread(
                target=self._worker, args=(shard,),
                kwargs={"recovered": True},
                name=f"repro-shard-{shard}-r{n}", daemon=True,
            )
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def _raise_pending(self) -> None:
        # In recovery mode failures surface as Failed results on the
        # affected submissions, never as raised errors on healthy paths.
        if self._errors and not self._recovery:
            exc = self._errors[0]
            raise ServiceStateError(
                f"shard worker failed: {exc!r}"
            ) from exc

    # -- admission actuators ----------------------------------------------
    @property
    def queue_limit(self) -> int:
        """The effective per-shard queue cap batches are admitted under."""
        if self._soft_queue_limit is None:
            return self.config.queue_depth
        return min(self._soft_queue_limit, self.config.queue_depth)

    def set_queue_limit(self, limit: int | None) -> int:
        """Set (or clear) the soft shed threshold; returns the new cap.

        The control plane's service-side actuator: batches targeting a
        shard whose queue already holds ``limit`` entries are rejected
        ``Overloaded`` *before* the physical ``queue_depth`` is reached,
        so backpressure engages earlier under overload and relaxes back
        without touching the (fixed-size) queues themselves.  ``None``
        restores the configured depth.  Thread-safe; takes effect on the
        next submission.
        """
        if limit is not None:
            limit = int(limit)
            if limit < 1:
                raise ValueError(f"queue limit must be >= 1, got {limit}")
        self._soft_queue_limit = limit
        effective = self.queue_limit
        self._m_queue_cap.set(effective)
        return effective

    def attach_recorder(self, recorder) -> None:
        """Record every admitted shard slice into ``recorder``.

        ``recorder`` needs one method — ``record(shard, pages, levels)``
        — called in per-shard arrival order (the order the engines serve),
        once per admitted slice: rejected submissions never reach it and
        recovery replay does not re-enter the ingest path, so the recorded
        streams are exactly what the live run served.  See
        :class:`repro.control.ExperienceRecorder`.  Pass ``None`` to
        detach.
        """
        self._recorder = recorder

    # -- observability -----------------------------------------------------
    @property
    def n_overloaded(self) -> int:
        """Number of batch submissions rejected for backpressure."""
        return self._n_overloaded

    def total_cost(self) -> float:
        """Total eviction cost across all shards (the paper's objective)."""
        return sum(e.ledger.eviction_cost for e in self.engines)

    def enable_tracing(
        self,
        directory,
        *,
        sample: float = 1.0,
        seed: int = 0,
        max_events: int = 1_000_000,
    ) -> list[Path]:
        """Attach one :class:`~repro.obs.DecisionTracer` per shard.

        Writes ``shard-<i>.jsonl`` files under ``directory`` (created if
        missing).  Events are keyed to each shard's *logical* clock and the
        sampling decision is a pure function of ``(seed, t)``, so inline
        and threaded runs of the same workload produce byte-identical
        per-shard traces — including runs that recover from injected
        faults: checkpoints carry a trace mark and a restore truncates the
        file back to it before the replay re-emits the suffix.  Traces are
        closed by :meth:`stop`.

        Must be called before any traffic (the traced loop needs to see
        every request of a sampled shard clock from t = 0).
        """
        if self._stopped:
            raise ServiceStateError("service already stopped")
        if self._trace_enabled:
            raise ServiceStateError("tracing already enabled")
        self._trace_enabled = True
        if any(e.n_requests for e in self.engines):
            raise ServiceStateError(
                "enable_tracing must be called before any traffic"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        process = self.config.backend == "process"
        if process and self._started:
            raise ServiceStateError(
                "the process backend applies tracing at spawn time; call "
                "enable_tracing before start()"
            )
        for engine in self.engines:
            path = directory / f"shard-{engine.shard_id}.jsonl"
            if process:
                # The worker process owns the tracer (and its file): the
                # config rides along on the spawn spec, so events stay
                # keyed to the shard's logical clock and the trace is
                # byte-identical to the inline/thread backends.
                engine.set_trace_config(
                    path, sample=sample, seed=seed, max_events=max_events,
                    source=f"shard-{engine.shard_id}",
                )
            else:
                tracer = DecisionTracer(
                    path, sample=sample, seed=seed, max_events=max_events,
                    source=f"shard-{engine.shard_id}",
                )
                engine.set_tracer(tracer)
                self._tracers.append(tracer)
            paths.append(path)
        return paths

    def enable_request_tracing(
        self,
        directory,
        *,
        sample: float = 1.0,
        seed: int = 0,
    ) -> list[Path]:
        """Arm causal request-span export under ``directory``.

        Writes ``svc.spans.jsonl`` (the ``admit``/``route``/``queue``
        spans, emitted by the submitting thread) and one
        ``shard-<i>.spans.jsonl`` per shard (``batch``/``evict`` spans,
        emitted by whichever thread serves the slice — exactly one
        logical writer per file on every backend).  Sampling is the
        decision tracer's pure ``(seed, t)`` function of the service's
        submit counter, and no record carries wall-clock fields, so two
        same-seed runs of the same workload produce byte-identical span
        files regardless of backend — the acceptance property pinned by
        the rtrace tests.

        Unlike :meth:`enable_tracing` this works on *every* backend
        including process (spans are emitted parent-side from mirrored
        eviction totals), but must still be called before any traffic so
        the submit counter starts at 0.  Exporters are closed by
        :meth:`stop`.
        """
        if self._stopped:
            raise ServiceStateError("service already stopped")
        if self._rtrace:
            raise ServiceStateError("request tracing already enabled")
        if any(e.n_requests for e in self.engines):
            raise ServiceStateError(
                "enable_request_tracing must be called before any traffic"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self._rsampler = RequestSampler(seed=seed, sample=sample)
        paths = [directory / "svc.spans.jsonl"]
        self._svc_spans = SpanExporter(paths[0])
        self._shard_spans = []
        for engine in self.engines:
            path = directory / f"shard-{engine.shard_id}.spans.jsonl"
            self._shard_spans.append(SpanExporter(path))
            paths.append(path)
        self._rtrace = True
        return paths

    def snapshot(self) -> ServiceSnapshot:
        """Point-in-time counters for every shard plus ingest totals."""
        with self.profiler.span("snapshot"):
            depths = (
                [q.qsize() for q in self._queues] if self._started
                else [0] * len(self.engines)
            )
            for shard, depth in enumerate(depths):
                self._m_queue_depth.labels(str(shard)).set(depth)
            shards = tuple(
                replace(
                    e.snapshot(queue_depth=d),
                    n_checkpoints=s.n_checkpoints,
                    n_restores=s.n_restores,
                    n_replayed_batches=s.n_replayed,
                )
                for e, d, s in zip(self.engines, depths, self._states)
            )
        # Spans are read after the snapshot span closes, so even the first
        # snapshot reports its own timing.
        return ServiceSnapshot(
            shards=shards,
            n_overloaded=self._n_overloaded,
            n_submitted_batches=self._n_batches,
            spans=self.profiler.stats(),
            n_worker_restarts=sum(s.restarts for s in self._states),
            n_failed_shards=sum(1 for s in self._states if s.failed),
            n_faults_injected=(self._plan.n_fired
                               if self._plan is not None else 0),
        )

    def __repr__(self) -> str:
        mode = ("stopped" if self._stopped
                else "threaded" if self._started else "inline")
        return (
            f"PagingService(shards={self.config.n_shards}, mode={mode}, "
            f"served={sum(e.n_requests for e in self.engines)})"
        )
