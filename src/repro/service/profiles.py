"""Time-varying request-rate profiles for the load generators.

The open-loop generators pace batch ``i`` to a precomputed *due offset*
from the run's start.  A :class:`RateProfile` supplies those offsets for
non-constant load shapes — the controller and autoscaler benches need
traffic that actually changes over time:

* ``constant`` — the flat pacing the generators always had.
* ``diurnal``  — a raised cosine between ``low_frac * rate`` and
  ``rate`` with period ``period_s`` (a compressed day/night cycle).
* ``burst``    — quiet at ``low_frac * rate`` with one burst window of
  length ``duty * period_s`` per period at full ``rate``; the window's
  position inside each period is drawn from ``seed`` so bursts are
  deterministic yet not phase-locked.
* ``step``     — a square wave: full ``rate`` for the first
  ``duty * period_s`` of every period, ``low_frac * rate`` for the rest.

Everything is a pure function of ``(kind, rate, period_s, low_frac,
duty, seed)``: the same profile always yields the same due offsets, so
profiled runs are as reproducible as flat ones.  Idle troughs
(``low_frac = 0``) are clamped to a trickle rather than a stall, and the
load reports stay NaN-safe when a phase serves nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import cos, pi

import numpy as np

from repro.errors import ServiceConfigError

__all__ = ["PROFILE_KINDS", "RateProfile"]

PROFILE_KINDS = ("constant", "diurnal", "burst", "step")

#: Troughs never stall the generator outright: an idle phase trickles at
#: this floor so the run always terminates.
_MIN_RATE = 1e-3


@dataclass(frozen=True)
class RateProfile:
    """A deterministic request-rate shape ``rate_at(t)``."""

    kind: str = "constant"
    rate: float = 100_000.0
    period_s: float = 1.0
    low_frac: float = 0.1
    duty: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PROFILE_KINDS:
            raise ServiceConfigError(
                f"profile kind must be one of {PROFILE_KINDS}, "
                f"got {self.kind!r}")
        if self.rate <= 0:
            raise ServiceConfigError(f"rate must be > 0, got {self.rate}")
        if self.period_s <= 0:
            raise ServiceConfigError(
                f"period_s must be > 0, got {self.period_s}")
        if not 0.0 <= self.low_frac <= 1.0:
            raise ServiceConfigError(
                f"low_frac must be in [0, 1], got {self.low_frac}")
        if not 0.0 < self.duty <= 1.0:
            raise ServiceConfigError(
                f"duty must be in (0, 1], got {self.duty}")

    # -- the shape ---------------------------------------------------------
    def rate_at(self, t: float) -> float:
        """Offered request rate at ``t`` seconds into the run."""
        low = self.low_frac * self.rate
        if self.kind == "constant":
            r = self.rate
        elif self.kind == "diurnal":
            phase = 0.5 - 0.5 * cos(2.0 * pi * t / self.period_s)
            r = low + (self.rate - low) * phase
        elif self.kind == "step":
            r = self.rate if (t % self.period_s) < self.duty * self.period_s \
                else low
        else:  # burst
            k = int(t // self.period_s)
            start = self._burst_start(k)
            offset = t - k * self.period_s
            in_burst = start <= offset < start + self.duty * self.period_s
            r = self.rate if in_burst else low
        return max(r, _MIN_RATE)

    def _burst_start(self, period_index: int) -> float:
        """Seeded position of period ``k``'s burst window (pure in k)."""
        rng = np.random.default_rng((self.seed, period_index))
        return float(rng.uniform(0.0, (1.0 - self.duty) * self.period_s))

    # -- pacing ------------------------------------------------------------
    def due_offsets(self, n_batches: int, batch_size: int) -> np.ndarray:
        """Due time of each batch, in seconds from the run's start.

        Batch ``i + 1`` is due ``batch_size / rate_at(due_i)`` after
        batch ``i`` — the discrete open-loop integration of the shape.
        """
        if n_batches < 0:
            raise ValueError(f"n_batches must be >= 0, got {n_batches}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        offsets = np.empty(n_batches, dtype=np.float64)
        t = 0.0
        for i in range(n_batches):
            offsets[i] = t
            t += batch_size / self.rate_at(t)
        return offsets

    def mean_rate(self, n_requests: int, batch_size: int) -> float:
        """Offered requests/second averaged over the whole run."""
        if n_requests <= 0:
            return 0.0
        n_batches = -(-n_requests // batch_size)
        offsets = self.due_offsets(n_batches, batch_size)
        last_span = batch_size / self.rate_at(float(offsets[-1]))
        return n_requests / float(offsets[-1] + last_span)

    def __str__(self) -> str:
        return (f"{self.kind}(rate={self.rate:g}, period={self.period_s:g}s, "
                f"low={self.low_frac:g}, duty={self.duty:g}, "
                f"seed={self.seed})")
