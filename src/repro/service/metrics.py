"""Observability for the paging service.

Three layers:

* :class:`ServiceLedger` — a :class:`~repro.core.ledger.CostLedger` that
  additionally buckets eviction counts and cost per level, so a snapshot can
  report where the cost of a multi-level shard is going.
* :class:`LatencyHistogram` — a bounded window of recent batch service
  times; percentiles are computed over the window at snapshot time.
* :class:`ShardSnapshot` / :class:`ServiceSnapshot` — immutable point-in-time
  views rendered through the repo-standard :class:`~repro.analysis.Table`.

All counters are monotonic over the service's lifetime; snapshots are cheap
(one dict copy per shard) and safe to take while the service is running
because engines only ever *add* to their ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import Table
from repro.core.ledger import CostLedger

__all__ = [
    "ServiceLedger",
    "LatencyHistogram",
    "ShardSnapshot",
    "ServiceSnapshot",
]


class ServiceLedger(CostLedger):
    """Cost ledger with per-level eviction breakdowns for serving metrics."""

    __slots__ = ("cost_by_level", "evictions_by_level")

    def __init__(self, *, record_events: bool = False) -> None:
        super().__init__(record_events=record_events)
        self.cost_by_level: dict[int, float] = {}
        self.evictions_by_level: dict[int, int] = {}

    def charge_eviction(self, page: int, level: int, cost: float,
                        reason: str = "") -> None:
        super().charge_eviction(page, level, cost, reason)
        self.cost_by_level[level] = self.cost_by_level.get(level, 0.0) + cost
        self.evictions_by_level[level] = self.evictions_by_level.get(level, 0) + 1


class LatencyHistogram:
    """Bounded ring of recent observations (seconds) with percentile queries.

    The window keeps the most recent ``window`` observations; the total
    count and sum are monotonic so mean throughput can still be derived
    after old samples rotate out.
    """

    __slots__ = ("_window", "_samples", "_pos", "count", "total_seconds")

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._samples: list[float] = []
        self._pos = 0
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one service-time observation."""
        self.count += 1
        self.total_seconds += seconds
        if len(self._samples) < self._window:
            self._samples.append(seconds)
        else:
            self._samples[self._pos] = seconds
            self._pos = (self._pos + 1) % self._window

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) over the window, in seconds."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))

    def percentiles_ms(self, qs=(50.0, 95.0, 99.0)) -> tuple[float, ...]:
        """Several percentiles at once, converted to milliseconds."""
        if not self._samples:
            return tuple(0.0 for _ in qs)
        arr = np.asarray(self._samples)
        return tuple(float(v) * 1e3 for v in np.percentile(arr, list(qs)))


@dataclass(frozen=True)
class ShardSnapshot:
    """Point-in-time counters for one shard engine."""

    shard: int
    cache_size: int
    n_requests: int
    n_hits: int
    n_misses: int
    n_evictions: int
    eviction_cost: float
    cost_by_level: dict[int, float] = field(default_factory=dict)
    evictions_by_level: dict[int, int] = field(default_factory=dict)
    n_batches: int = 0
    queue_depth: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of this shard's requests served without cache changes."""
        return self.n_hits / self.n_requests if self.n_requests else 0.0


@dataclass(frozen=True)
class ServiceSnapshot:
    """Point-in-time view of the whole service (all shards + ingest)."""

    shards: tuple[ShardSnapshot, ...]
    n_overloaded: int = 0
    n_submitted_batches: int = 0

    # -- aggregates --------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Total requests processed across shards."""
        return sum(s.n_requests for s in self.shards)

    @property
    def n_hits(self) -> int:
        """Total hits across shards."""
        return sum(s.n_hits for s in self.shards)

    @property
    def n_misses(self) -> int:
        """Total misses across shards."""
        return sum(s.n_misses for s in self.shards)

    @property
    def eviction_cost(self) -> float:
        """Total eviction cost (the paper's objective) across shards."""
        return sum(s.eviction_cost for s in self.shards)

    @property
    def hit_rate(self) -> float:
        """Service-wide hit rate."""
        n = self.n_requests
        return self.n_hits / n if n else 0.0

    def cost_by_level(self) -> dict[int, float]:
        """Eviction cost per level, merged across shards."""
        merged: dict[int, float] = {}
        for s in self.shards:
            for level, cost in s.cost_by_level.items():
                merged[level] = merged.get(level, 0.0) + cost
        return dict(sorted(merged.items()))

    # -- rendering ---------------------------------------------------------
    def table(self, *, include_latency: bool = True) -> Table:
        """Per-shard counter table plus a totals row.

        ``include_latency=False`` drops the (timing-dependent) percentile
        columns so the rendering is bit-deterministic for golden tests.
        """
        columns = ["shard", "k", "requests", "hits", "misses",
                   "evictions", "evict cost", "hit rate"]
        if include_latency:
            columns += ["batches", "p50 ms", "p95 ms", "p99 ms"]
        table = Table(columns, title="service snapshot")
        for s in self.shards:
            row = [s.shard, s.cache_size, s.n_requests, s.n_hits, s.n_misses,
                   s.n_evictions, s.eviction_cost, s.hit_rate]
            if include_latency:
                row += [s.n_batches, s.p50_ms, s.p95_ms, s.p99_ms]
            table.add_row(*row)
        total_row = ["total", sum(s.cache_size for s in self.shards),
                     self.n_requests, self.n_hits, self.n_misses,
                     sum(s.n_evictions for s in self.shards),
                     self.eviction_cost, self.hit_rate]
        if include_latency:
            total_row += [self.n_submitted_batches, "", "", ""]
        table.add_row(*total_row)
        return table

    def render(self, *, include_latency: bool = True) -> str:
        """Rendered counter table plus the overload line."""
        text = self.table(include_latency=include_latency).render()
        return text + f"overloaded batches: {self.n_overloaded}\n"
