"""Observability for the paging service.

Four layers, all backed by :mod:`repro.obs`:

* :class:`ServiceLedger` — a :class:`~repro.core.ledger.CostLedger` that
  additionally buckets eviction counts and cost per level and mirrors them
  into a metrics registry (``repro_evictions_total`` /
  ``repro_eviction_cost_total``, labeled by shard and level).
* :class:`LatencyHistogram` — a bounded window of recent batch service
  times; percentiles are computed over the window at snapshot time, and
  each observation can feed a registry histogram for exposition.
* :class:`ShardSnapshot` / :class:`ServiceSnapshot` — immutable point-in-time
  views rendered through the repo-standard :class:`~repro.analysis.Table`,
  now carrying per-phase :class:`~repro.obs.SpanStats` from the profilers.

All counters are monotonic over the service's lifetime; snapshots are cheap
(one dict copy per shard) and safe to take while the service is running
because engines only ever *add* to their ledgers.  Pass no registry (the
default) and every metrics call hits the shared no-op sink.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import Table
from repro.core.ledger import CostLedger
from repro.obs.registry import NULL_METRIC, MetricsRegistry, null_registry
from repro.obs.spans import SpanStats, merge_span_stats

__all__ = [
    "ServiceLedger",
    "LatencyHistogram",
    "ShardSnapshot",
    "ServiceSnapshot",
]


class ServiceLedger(CostLedger):
    """Cost ledger with per-level eviction breakdowns for serving metrics.

    When constructed with a real :class:`~repro.obs.MetricsRegistry`, each
    eviction also increments the shard/level-labeled exposition counters;
    with the default null registry those calls are no-ops.
    """

    __slots__ = ("cost_by_level", "evictions_by_level", "_shard",
                 "_m_evictions", "_m_cost", "_level_children")

    def __init__(self, *, record_events: bool = False,
                 registry: MetricsRegistry | None = None,
                 shard: int | str = "") -> None:
        super().__init__(record_events=record_events)
        self.cost_by_level: dict[int, float] = {}
        self.evictions_by_level: dict[int, int] = {}
        reg = registry if registry is not None else null_registry()
        self._shard = str(shard)
        self._m_evictions = reg.counter(
            "repro_evictions_total", "Evictions charged to this ledger",
            ("shard", "level"),
        )
        self._m_cost = reg.counter(
            "repro_eviction_cost_total",
            "Total eviction cost (the paper's objective)",
            ("shard", "level"),
        )
        # level -> (evictions child, cost child); caches the labels() lookup
        # so the per-eviction registry work is one dict hit + two incs.
        self._level_children: dict[int, tuple] = {}

    def charge_eviction(self, page: int, level: int, cost: float,
                        reason: str = "") -> None:
        super().charge_eviction(page, level, cost, reason)
        self.cost_by_level[level] = self.cost_by_level.get(level, 0.0) + cost
        self.evictions_by_level[level] = self.evictions_by_level.get(level, 0) + 1
        if self._m_evictions is NULL_METRIC and self._m_cost is NULL_METRIC:
            return  # no exposition sink: skip the per-level child lookups
        children = self._level_children.get(level)
        if children is None:
            lv = str(level)
            children = (self._m_evictions.labels(self._shard, lv),
                        self._m_cost.labels(self._shard, lv))
            self._level_children[level] = children
        children[0].inc()
        children[1].inc(cost)

    def __getstate__(self) -> dict:
        """Drop the registry handles: families hold locks, children are
        process-local exposition state.  A restored ledger starts on the
        no-op sink; the restoring engine transplants its live handles (see
        :meth:`repro.service.engine.ShardEngine.restore_state`)."""
        state = super().__getstate__()
        for name in ("_m_evictions", "_m_cost", "_level_children"):
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._m_evictions = NULL_METRIC
        self._m_cost = NULL_METRIC
        self._level_children = {}

    def merge(self, other: CostLedger) -> None:
        """Fold another ledger into this one, keeping per-level totals.

        :meth:`CostLedger.merge` only knows the base counters; merging
        shard ledgers through it would silently drop ``cost_by_level`` /
        ``evictions_by_level``, so the per-level dicts are folded here.
        Exposition counters are *not* re-charged — the source ledger
        already published its evictions to the registry.
        """
        super().merge(other)
        if isinstance(other, ServiceLedger):
            for level, cost in other.cost_by_level.items():
                self.cost_by_level[level] = (
                    self.cost_by_level.get(level, 0.0) + cost
                )
            for level, n in other.evictions_by_level.items():
                self.evictions_by_level[level] = (
                    self.evictions_by_level.get(level, 0) + n
                )


class LatencyHistogram:
    """Bounded ring of recent observations (seconds) with percentile queries.

    The window keeps the most recent ``window`` observations; the total
    count and sum are monotonic so mean throughput can still be derived
    after old samples rotate out.  ``metric`` (a registry histogram child)
    additionally receives every observation for exposition; the default is
    the shared no-op sink.
    """

    __slots__ = ("_window", "_samples", "_pos", "count", "total_seconds",
                 "_metric")

    def __init__(self, window: int = 4096, *, metric=NULL_METRIC) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._samples: list[float] = []
        self._pos = 0
        self.count = 0
        self.total_seconds = 0.0
        self._metric = metric

    def observe(self, seconds: float) -> None:
        """Record one service-time observation."""
        self.count += 1
        self.total_seconds += seconds
        self._metric.observe(seconds)
        if len(self._samples) < self._window:
            self._samples.append(seconds)
        else:
            self._samples[self._pos] = seconds
            self._pos = (self._pos + 1) % self._window

    @property
    def empty(self) -> bool:
        """True while no observation has been recorded yet.

        Percentile queries on an empty window return zeros rather than
        crashing in ``np.percentile``; callers that must distinguish
        "all-zero latency" from "no data" branch on this flag.
        """
        return not self._samples

    def percentiles(self, qs: Sequence[float]) -> tuple[float, ...]:
        """Percentiles (0-100) over the window, in seconds.

        The single computation path behind every percentile query: the
        window is order-insensitive for percentiles, so the rotating ring
        is handed to numpy as-is.  An empty window (``np.percentile``
        would raise) yields all zeros — see :attr:`empty`.
        """
        if not self._samples:
            return tuple(0.0 for _ in qs)
        arr = np.asarray(self._samples)
        return tuple(float(v) for v in np.percentile(arr, list(qs)))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) over the window, in seconds."""
        return self.percentiles((q,))[0]

    def percentiles_ms(self, qs=(50.0, 95.0, 99.0)) -> tuple[float, ...]:
        """Several percentiles at once, converted to milliseconds."""
        return tuple(v * 1e3 for v in self.percentiles(qs))


@dataclass(frozen=True)
class ShardSnapshot:
    """Point-in-time counters for one shard engine."""

    shard: int
    cache_size: int
    n_requests: int
    n_hits: int
    n_misses: int
    n_evictions: int
    eviction_cost: float
    cost_by_level: dict[int, float] = field(default_factory=dict)
    evictions_by_level: dict[int, int] = field(default_factory=dict)
    n_batches: int = 0
    queue_depth: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    spans: dict[str, SpanStats] = field(default_factory=dict)
    n_checkpoints: int = 0
    n_restores: int = 0
    n_replayed_batches: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of this shard's requests served without cache changes."""
        return self.n_hits / self.n_requests if self.n_requests else 0.0

    def to_dict(self) -> dict:
        """JSON-safe view of the shard counters (wire / artifact payloads).

        Level keys are stringified so the dict survives a JSON round-trip
        unchanged; span stats flatten to plain numbers.
        """
        return {
            "shard": self.shard,
            "cache_size": self.cache_size,
            "n_requests": self.n_requests,
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "n_evictions": self.n_evictions,
            "eviction_cost": self.eviction_cost,
            "hit_rate": self.hit_rate,
            "cost_by_level": {str(k): v for k, v in self.cost_by_level.items()},
            "evictions_by_level": {
                str(k): v for k, v in self.evictions_by_level.items()
            },
            "n_batches": self.n_batches,
            "queue_depth": self.queue_depth,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "n_checkpoints": self.n_checkpoints,
            "n_restores": self.n_restores,
            "n_replayed_batches": self.n_replayed_batches,
            "spans": {
                name: {"n": s.n, "total_s": s.total_s, "max_s": s.max_s,
                       "min_s": s.min_s, "sq_s": s.sq_s}
                for name, s in self.spans.items()
            },
        }


@dataclass(frozen=True)
class ServiceSnapshot:
    """Point-in-time view of the whole service (all shards + ingest)."""

    shards: tuple[ShardSnapshot, ...]
    n_overloaded: int = 0
    n_submitted_batches: int = 0
    spans: dict[str, SpanStats] = field(default_factory=dict)
    n_worker_restarts: int = 0
    n_failed_shards: int = 0
    n_faults_injected: int = 0

    # -- aggregates --------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Total requests processed across shards."""
        return sum(s.n_requests for s in self.shards)

    @property
    def n_hits(self) -> int:
        """Total hits across shards."""
        return sum(s.n_hits for s in self.shards)

    @property
    def n_misses(self) -> int:
        """Total misses across shards."""
        return sum(s.n_misses for s in self.shards)

    @property
    def eviction_cost(self) -> float:
        """Total eviction cost (the paper's objective) across shards."""
        return sum(s.eviction_cost for s in self.shards)

    @property
    def hit_rate(self) -> float:
        """Service-wide hit rate."""
        n = self.n_requests
        return self.n_hits / n if n else 0.0

    def cost_by_level(self) -> dict[int, float]:
        """Eviction cost per level, merged across shards."""
        merged: dict[int, float] = {}
        for s in self.shards:
            for level, cost in s.cost_by_level.items():
                merged[level] = merged.get(level, 0.0) + cost
        return dict(sorted(merged.items()))

    def merged_spans(self) -> dict[str, SpanStats]:
        """Service-level spans plus per-shard spans folded together."""
        return merge_span_stats(self.spans, *(s.spans for s in self.shards))

    def to_dict(self) -> dict:
        """JSON-safe view of the whole snapshot.

        This is the payload of the network frontend's ``Snapshot`` reply —
        everything :meth:`render` shows, machine-readable, round-trippable
        through JSON without key-type surprises.
        """
        return {
            "n_requests": self.n_requests,
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "hit_rate": self.hit_rate,
            "eviction_cost": self.eviction_cost,
            "cost_by_level": {str(k): v for k, v in self.cost_by_level().items()},
            "n_overloaded": self.n_overloaded,
            "n_submitted_batches": self.n_submitted_batches,
            "n_worker_restarts": self.n_worker_restarts,
            "n_failed_shards": self.n_failed_shards,
            "n_faults_injected": self.n_faults_injected,
            "shards": [s.to_dict() for s in self.shards],
        }

    # -- rendering ---------------------------------------------------------
    def table(self, *, include_latency: bool = True,
              include_spans: bool = False) -> Table:
        """Per-shard counter table plus a totals row.

        ``include_latency=False`` drops the (timing-dependent) percentile
        columns so the rendering is bit-deterministic for golden tests;
        ``include_spans=True`` adds each shard's ``evict`` span total.
        """
        columns = ["shard", "k", "requests", "hits", "misses",
                   "evictions", "evict cost", "hit rate"]
        if include_latency:
            columns += ["batches", "p50 ms", "p95 ms", "p99 ms"]
        if include_spans:
            columns += ["evict s"]
        table = Table(columns, title="service snapshot")
        for s in self.shards:
            row = [s.shard, s.cache_size, s.n_requests, s.n_hits, s.n_misses,
                   s.n_evictions, s.eviction_cost, s.hit_rate]
            if include_latency:
                row += [s.n_batches, s.p50_ms, s.p95_ms, s.p99_ms]
            if include_spans:
                evict = s.spans.get("evict")
                row += [evict.total_s if evict else 0.0]
            table.add_row(*row)
        total_row = ["total", sum(s.cache_size for s in self.shards),
                     self.n_requests, self.n_hits, self.n_misses,
                     sum(s.n_evictions for s in self.shards),
                     self.eviction_cost, self.hit_rate]
        if include_latency:
            total_row += [self.n_submitted_batches, "", "", ""]
        if include_spans:
            merged_evict = self.merged_spans().get("evict")
            total_row += [merged_evict.total_s if merged_evict else 0.0]
        table.add_row(*total_row)
        return table

    def phase_table(self) -> Table:
        """Per-phase span aggregates (service + shards merged)."""
        table = Table(["phase", "count", "total s", "mean ms", "min ms",
                       "max ms", "stddev ms"],
                      title="phase spans")
        for name, s in self.merged_spans().items():
            table.add_row(name, s.n, s.total_s, s.mean_ms, s.min_ms,
                          1e3 * s.max_s, s.stddev_ms)
        return table

    def render(self, *, include_latency: bool = True,
               include_spans: bool | None = None) -> str:
        """Rendered counter table, the overload line, and (optionally) spans.

        ``include_spans`` defaults to ``include_latency`` — both carry
        timing-dependent values, so the deterministic golden-test mode
        (``include_latency=False``) keeps excluding them.
        """
        if include_spans is None:
            include_spans = include_latency
        text = self.table(include_latency=include_latency,
                          include_spans=include_spans).render()
        text += f"overloaded batches: {self.n_overloaded}\n"
        # Recovery counters appear only when nonzero, so fault-free runs
        # (and the deterministic golden rendering) are unchanged.
        if self.n_faults_injected or self.n_worker_restarts or self.n_failed_shards:
            text += (
                f"faults injected: {self.n_faults_injected}, "
                f"worker restarts: {self.n_worker_restarts}, "
                f"failed shards: {self.n_failed_shards}\n"
            )
        if include_spans and self.merged_spans():
            text += "\n" + self.phase_table().render()
        return text
