"""One shard of the paging service: a verifying cache + policy + metrics.

A :class:`ShardEngine` is the serving twin of :func:`repro.sim.simulate`:
the same authoritative :class:`~repro.core.cache.MultiLevelCache`, the same
``policy.serve`` contract, the same optional per-request verification — but
driven by an unbounded *stream* of micro-batches instead of one materialized
trace, with a monotonic per-shard logical clock and batch service times fed
into a :class:`~repro.service.metrics.LatencyHistogram`.

Observability hooks (all default to no-ops):

* a :class:`~repro.obs.MetricsRegistry` mirrors the shard's counters into
  shard-labeled exposition metrics,
* a :class:`~repro.obs.PhaseProfiler` times every batch under the ``evict``
  span (the phase where the policy decides and pays),
* a :class:`~repro.obs.DecisionTracer` attached via :meth:`set_tracer`
  records sampled decisions against the shard's *logical* clock, so inline
  and threaded runs produce byte-identical traces.

Engines are single-consumer: exactly one thread (or the caller, in inline
mode) may call :meth:`process_batch`.  That keeps per-shard request order —
and therefore cost ledgers — deterministic without any locking in the hot
loop.
"""

from __future__ import annotations

import pickle
from time import perf_counter

import numpy as np

from repro.algorithms.base import Policy
from repro.core.cache import MultiLevelCache
from repro.core.instance import MultiLevelInstance
from repro.errors import CacheInvariantError
from repro.obs.registry import MetricsRegistry, null_registry
from repro.obs.spans import PhaseProfiler
from repro.service.metrics import LatencyHistogram, ServiceLedger, ShardSnapshot

__all__ = ["ShardEngine"]


class ShardEngine:
    """Long-lived policy + cache pair consuming request micro-batches."""

    __slots__ = (
        "shard_id", "instance", "policy", "ledger", "cache", "latency",
        "validate", "n_batches", "profiler", "tracer",
        "_m_requests", "_m_hits", "_m_misses", "_m_batches", "_t",
        "_serve_batch",
    )

    def __init__(
        self,
        shard_id: int,
        instance: MultiLevelInstance,
        policy: Policy,
        rng: np.random.Generator,
        *,
        validate: bool = False,
        latency_window: int = 4096,
        registry: MetricsRegistry | None = None,
    ) -> None:
        reg = registry if registry is not None else null_registry()
        shard_label = str(shard_id)
        self.shard_id = shard_id
        self.instance = instance
        self.policy = policy
        self.ledger = ServiceLedger(registry=reg, shard=shard_id)
        self.cache = MultiLevelCache(instance, self.ledger)
        self.latency = LatencyHistogram(
            latency_window,
            metric=reg.histogram(
                "repro_batch_latency_seconds",
                "Batch service time per shard",
                ("shard",),
            ).labels(shard_label),
        )
        self.validate = validate
        self.n_batches = 0
        self.profiler = PhaseProfiler()
        self.tracer = None
        self._m_requests = reg.counter(
            "repro_requests_total", "Requests served", ("shard",)
        ).labels(shard_label)
        self._m_hits = reg.counter(
            "repro_hits_total", "Requests served without cache changes",
            ("shard",),
        ).labels(shard_label)
        self._m_misses = reg.counter(
            "repro_misses_total", "Requests that required cache changes",
            ("shard",),
        ).labels(shard_label)
        self._m_batches = reg.counter(
            "repro_batches_total", "Micro-batches processed", ("shard",)
        ).labels(shard_label)
        self._t = 0
        policy.bind(instance, self.cache, rng)
        # Columnar policies expose serve_batch: the whole-batch fast path
        # used when neither validation nor active tracing needs the
        # per-request loop.  Cached here (and refreshed on restore) so the
        # hot path pays one attribute load, not a getattr.
        self._serve_batch = getattr(policy, "serve_batch", None)

    @property
    def n_requests(self) -> int:
        """Requests processed so far (the shard's logical clock)."""
        return self._t

    def totals(self) -> tuple[int, float]:
        """``(n_evictions, eviction_cost)`` — the exact ledger values.

        The uniform accessor request tracing diffs around a batch to
        derive ``evict`` span attributes; :class:`ProcEngine` answers the
        same call from its mirrored worker totals, bit-exactly.
        """
        ledger = self.ledger
        return ledger.n_evictions, ledger.eviction_cost

    def set_tracer(self, tracer) -> None:
        """Attach (or with ``None`` detach) a decision tracer.

        The tracer is shared with the ledger and the policy so eviction
        and candidate events ride along with their sampled request.
        """
        self.tracer = tracer
        self.ledger.tracer = tracer
        self.policy.tracer = tracer

    def process_batch(self, pages: np.ndarray, levels: np.ndarray) -> None:
        """Serve one micro-batch; every page must be routed to this shard.

        Timing covers the whole batch (the latency the load generator's
        clients would observe for a synchronous round-trip).
        """
        started = perf_counter()
        cache = self.cache
        ledger = self.ledger
        serves = cache.serves
        serve = self.policy.serve
        t = self._t
        hits = 0
        tracer = self.tracer
        if tracer is not None and not tracer.active:
            tracer = None  # unsampled tracing: keep the fast loop
        if self.validate:
            set_time = ledger.set_time
            check = cache.check_invariants
            name = self.policy.name
            for page, level in zip(pages.tolist(), levels.tolist()):
                set_time(t)
                hit = serves(page, level)
                if hit:
                    hits += 1
                if tracer is not None:
                    tracer.request(t, page, level, hit)
                serve(t, page, level)
                if not serves(page, level):
                    raise CacheInvariantError(
                        f"policy {name!r} left request t={t} (page={page}, "
                        f"level={level}) unserved on shard {self.shard_id}"
                    )
                check()
                t += 1
        elif tracer is not None:
            set_time = ledger.set_time
            trace_request = tracer.request
            for page, level in zip(pages.tolist(), levels.tolist()):
                set_time(t)
                hit = serves(page, level)
                if hit:
                    hits += 1
                trace_request(t, page, level, hit)
                serve(t, page, level)
                t += 1
        elif self._serve_batch is not None:
            # Kernel fast path: the policy serves the whole micro-batch
            # from its columnar state with semantics identical to the
            # per-request loop below (pinned by the equivalence suite).
            hits = self._serve_batch(t, pages, levels)
            t += int(pages.size)
        else:
            for page, level in zip(pages.tolist(), levels.tolist()):
                if serves(page, level):
                    hits += 1
                serve(t, page, level)
                t += 1
        n = t - self._t
        self._t = t
        ledger.n_hits += hits
        ledger.n_misses += n - hits
        self.n_batches += 1
        elapsed = perf_counter() - started
        self.latency.observe(elapsed)
        self.profiler.record("evict", elapsed)
        self._m_requests.inc(n)
        self._m_hits.inc(hits)
        self._m_misses.inc(n - hits)
        self._m_batches.inc()

    # -- checkpoint support ------------------------------------------------
    def checkpoint_state(self) -> dict:
        """The engine's replayable state as one consistent object graph.

        The bound policy transitively owns the cache (``policy.cache``)
        and ledger (``cache.ledger``) plus its RNG cursor, so pickling
        this dict (see :meth:`capture_state`) captures everything that
        determines future behavior in one pass.  The latency window and
        registry counters are deliberately excluded: they are wall-clock
        observability, not the determinism surface.
        """
        return {"policy": self.policy, "t": self._t,
                "n_batches": self.n_batches}

    def capture_state(self) -> tuple[bytes, tuple | None, int]:
        """Pickle the replayable state; returns ``(payload, trace_mark, t)``.

        The payload round-trips through :mod:`pickle` (the ledger and
        policy drop their live handles via ``__getstate__``), so the same
        bytes restore this engine in-process *or* a fresh worker process.
        """
        payload = pickle.dumps(self.checkpoint_state(),
                               protocol=pickle.HIGHEST_PROTOCOL)
        mark = self.tracer.mark() if self.tracer is not None else None
        return payload, mark, self._t

    def restore_from(self, payload: bytes, trace_mark) -> None:
        """Install a :meth:`capture_state` payload and rewind the tracer."""
        self.restore_state(pickle.loads(payload))
        if self.tracer is not None and trace_mark is not None:
            self.tracer.rewind(trace_mark)

    def restore_state(self, state: dict) -> None:
        """Install an unpickled :meth:`checkpoint_state` dict.

        Single-consumer contract applies: only the worker thread that owns
        this engine may restore it, and only between batches.  The
        unpickled graph carries a pristine ledger (no registry handles)
        and its own copy of the instance; the engine re-points both at its
        live substrate so restored shards keep publishing to the same
        exposition children and share the read-only weight arrays.
        """
        policy = state["policy"]
        old_ledger = self.ledger
        self.policy = policy
        self.cache = policy.cache
        ledger = policy.cache.ledger
        self.cache.instance = self.instance
        policy.instance = self.instance
        # Columnar policies cache weight views derived from the instance;
        # re-derive them from the live (shared, read-only) arrays.
        rebind = getattr(policy, "rebind_instance", None)
        if rebind is not None:
            rebind()
        self._serve_batch = getattr(policy, "serve_batch", None)
        # Transplant the live exposition handles onto the restored ledger.
        ledger._m_evictions = old_ledger._m_evictions
        ledger._m_cost = old_ledger._m_cost
        ledger._level_children = old_ledger._level_children
        self.ledger = ledger
        self._t = int(state["t"])
        self.n_batches = int(state["n_batches"])
        # Re-attach the live tracer (dropped by the pickle hooks).
        ledger.tracer = self.tracer
        policy.tracer = self.tracer

    def snapshot(self, *, queue_depth: int = 0) -> ShardSnapshot:
        """Point-in-time counters (queue depth is supplied by the server)."""
        ledger = self.ledger
        p50, p95, p99 = self.latency.percentiles_ms()
        return ShardSnapshot(
            shard=self.shard_id,
            cache_size=self.instance.cache_size,
            n_requests=self._t,
            n_hits=ledger.n_hits,
            n_misses=ledger.n_misses,
            n_evictions=ledger.n_evictions,
            eviction_cost=ledger.eviction_cost,
            cost_by_level=dict(ledger.cost_by_level),
            evictions_by_level=dict(ledger.evictions_by_level),
            n_batches=self.n_batches,
            queue_depth=queue_depth,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
            spans=self.profiler.stats(),
        )

    def __repr__(self) -> str:
        return (
            f"ShardEngine(shard={self.shard_id}, k={self.instance.cache_size}, "
            f"served={self._t}, cost={self.ledger.eviction_cost:.3f})"
        )
