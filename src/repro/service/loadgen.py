"""Open-loop load generator for the paging service.

Replays any :class:`~repro.core.requests.RequestSequence` (so every
generator in :mod:`repro.workloads` works) against a
:class:`~repro.service.server.PagingService` at a target request rate.
The pacing is *open-loop*: batch ``i`` is due at ``start + i·B/rate``
regardless of how fast the service responds, so a service that cannot
keep up shows up as rising queue depth, ``Overloaded`` rejections and
tail latency — not as a silently slower generator.

Two overload policies:

* ``on_overload="retry"`` (default) — an ``Overloaded`` rejection is
  retried with exponential backoff up to ``max_retries`` times, then the
  batch is dropped and counted.
* ``on_overload="shed"`` — rejections are never retried; the batch is
  shed immediately.  This is the load-shedding client: it preserves the
  open-loop pacing exactly (no backoff sleeps) at the price of drops.

Terminal rejections (:class:`~repro.service.ingest.Failed` — the target
shard is permanently down) are never retried under either policy.
Tickets that complete as *failed* (their shard died unrecoverably while
the batch was in flight) count as failed batches, not served requests.

The report carries achieved throughput, drop/overload/failure counts and
end-to-end batch latency percentiles measured from the successfully
completed tickets.  When *no* batch was accepted the percentiles are NaN
and ``rejected_all`` is set — zero latency was never observed, it is
simply unknown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter, sleep

import numpy as np

from repro.analysis.tables import Table
from repro.core.requests import RequestSequence
from repro.service.ingest import BatchTicket
from repro.service.profiles import RateProfile
from repro.service.server import PagingService

__all__ = ["LoadReport", "run_load", "summarize_latencies"]


def summarize_latencies(latencies_s) -> tuple[float, float, float]:
    """p50/p95/p99 of end-to-end batch latencies, in milliseconds.

    The single percentile path shared by the in-process and networked
    load generators.  An empty sample yields NaN, not 0 — zero would read
    as an impossibly fast service in downstream tables, while NaN says
    "no completed batch ever reported a latency".
    """
    arr = np.asarray(latencies_s, dtype=np.float64)
    if not arr.size:
        return math.nan, math.nan, math.nan
    p50, p95, p99 = (
        float(v) * 1e3 for v in np.percentile(arr, [50.0, 95.0, 99.0])
    )
    return p50, p95, p99


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    target_rate: float
    achieved_rate: float
    duration_s: float
    n_requests: int
    n_served: int
    n_batches: int
    n_overloaded: int
    n_dropped_batches: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    n_failed_batches: int = 0
    rejected_all: bool = False

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered requests shed after retries."""
        return 1.0 - (self.n_served / self.n_requests) if self.n_requests else 0.0

    def table(self) -> Table:
        """One-row summary table in the repo's benchmark format."""
        table = Table(
            ["target req/s", "achieved req/s", "duration s", "served",
             "dropped %", "overloads", "failed", "p50 ms", "p95 ms", "p99 ms"],
            title="load generator report",
        )
        table.add_row(
            self.target_rate, self.achieved_rate, self.duration_s,
            self.n_served, 100.0 * self.drop_fraction, self.n_overloaded,
            self.n_failed_batches, self.p50_ms, self.p95_ms, self.p99_ms,
        )
        return table

    def render(self) -> str:
        """Rendered summary table."""
        return self.table().render()


def run_load(
    service: PagingService,
    seq: RequestSequence,
    *,
    rate: float = 100_000.0,
    batch_size: int | None = None,
    max_retries: int = 3,
    retry_backoff: float = 0.001,
    on_overload: str = "retry",
    drain_timeout: float | None = 30.0,
    profile: RateProfile | None = None,
) -> LoadReport:
    """Replay ``seq`` against ``service`` at ``rate`` requests/second.

    ``batch_size`` defaults to the service's configured micro-batch size.
    ``on_overload`` selects the client policy for ``Overloaded``
    rejections: ``"retry"`` (exponential backoff, ``retry_backoff *
    2**(attempt-1)`` seconds capped at 50 ms, up to ``max_retries``
    attempts) or
    ``"shed"`` (drop immediately, never sleep).  The call drains the
    service before reporting, so counters in a subsequent
    :meth:`~repro.service.server.PagingService.snapshot` cover every
    accepted request.

    With a :class:`~repro.service.profiles.RateProfile` the flat pacing
    is replaced by the profile's precomputed due offsets (``rate`` is
    ignored; the report's ``target_rate`` becomes the profile's mean
    offered rate).
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if on_overload not in ("retry", "shed"):
        raise ValueError(
            f"on_overload must be 'retry' or 'shed', got {on_overload!r}"
        )
    b = batch_size if batch_size is not None else service.config.batch_size
    pages, levels = seq.pages, seq.levels
    n = len(seq)
    offsets = None
    target = float(rate)
    if profile is not None:
        offsets = profile.due_offsets(-(-n // b), b)
        target = profile.mean_rate(n, b)
    tickets: list[BatchTicket] = []
    n_overloaded = 0
    n_dropped = 0
    retries_budget = 0 if on_overload == "shed" else max_retries
    started = perf_counter()
    for i, lo in enumerate(range(0, n, b)):
        due = started + (lo / rate if offsets is None else offsets[i])
        now = perf_counter()
        if now < due:
            sleep(due - now)
        batch_pages = pages[lo:lo + b]
        batch_levels = levels[lo:lo + b]
        result = service.submit_batch(batch_pages, batch_levels)
        retries = 0
        while (not result.accepted and retries < retries_budget
               and getattr(result, "retryable", True)):
            retries += 1
            # Exponential backoff, capped: a service mid-recovery can
            # reject for ~100ms and an uncapped doubling would turn a
            # large retry budget into an astronomically long sleep.
            sleep(min(retry_backoff * 2.0 ** (retries - 1), 0.05))
            result = service.submit_batch(batch_pages, batch_levels)
        n_overloaded += retries
        if result.accepted:
            tickets.append(result)
        else:
            n_overloaded += 1
            n_dropped += 1
    service.drain(drain_timeout)
    duration = perf_counter() - started
    n_failed = sum(1 for t in tickets if t.done and not t.ok)
    n_served = sum(t.n_requests for t in tickets if t.ok)
    rejected_all = not tickets
    p50, p95, p99 = summarize_latencies(
        [t.latency for t in tickets if t.ok and t.latency is not None]
    )
    return LoadReport(
        target_rate=target,
        achieved_rate=n_served / duration if duration > 0 else 0.0,
        duration_s=duration,
        n_requests=n,
        n_served=n_served,
        n_batches=len(tickets),
        n_overloaded=n_overloaded,
        n_dropped_batches=n_dropped,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        n_failed_batches=n_failed,
        rejected_all=rejected_all,
    )
