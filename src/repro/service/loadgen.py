"""Open-loop load generator for the paging service.

Replays any :class:`~repro.core.requests.RequestSequence` (so every
generator in :mod:`repro.workloads` works) against a
:class:`~repro.service.server.PagingService` at a target request rate.
The pacing is *open-loop*: batch ``i`` is due at ``start + i·B/rate``
regardless of how fast the service responds, so a service that cannot
keep up shows up as rising queue depth, ``Overloaded`` rejections and
tail latency — not as a silently slower generator.

Overloaded submissions are retried a bounded number of times (the batch
is not lost), then dropped and counted.  The report carries achieved
throughput, drop/overload counts and end-to-end batch latency
percentiles measured from the accepted tickets.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter, sleep

import numpy as np

from repro.analysis.tables import Table
from repro.core.requests import RequestSequence
from repro.service.ingest import BatchTicket
from repro.service.server import PagingService

__all__ = ["LoadReport", "run_load"]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    target_rate: float
    achieved_rate: float
    duration_s: float
    n_requests: int
    n_served: int
    n_batches: int
    n_overloaded: int
    n_dropped_batches: int
    p50_ms: float
    p95_ms: float
    p99_ms: float

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered requests shed after retries."""
        return 1.0 - (self.n_served / self.n_requests) if self.n_requests else 0.0

    def table(self) -> Table:
        """One-row summary table in the repo's benchmark format."""
        table = Table(
            ["target req/s", "achieved req/s", "duration s", "served",
             "dropped %", "overloads", "p50 ms", "p95 ms", "p99 ms"],
            title="load generator report",
        )
        table.add_row(
            self.target_rate, self.achieved_rate, self.duration_s,
            self.n_served, 100.0 * self.drop_fraction, self.n_overloaded,
            self.p50_ms, self.p95_ms, self.p99_ms,
        )
        return table

    def render(self) -> str:
        """Rendered summary table."""
        return self.table().render()


def run_load(
    service: PagingService,
    seq: RequestSequence,
    *,
    rate: float = 100_000.0,
    batch_size: int | None = None,
    max_retries: int = 3,
    retry_backoff: float = 0.001,
    drain_timeout: float | None = 30.0,
) -> LoadReport:
    """Replay ``seq`` against ``service`` at ``rate`` requests/second.

    ``batch_size`` defaults to the service's configured micro-batch size.
    The call drains the service before reporting, so counters in a
    subsequent :meth:`~repro.service.server.PagingService.snapshot` cover
    every accepted request.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    b = batch_size if batch_size is not None else service.config.batch_size
    pages, levels = seq.pages, seq.levels
    n = len(seq)
    tickets: list[BatchTicket] = []
    n_overloaded = 0
    n_dropped = 0
    started = perf_counter()
    for lo in range(0, n, b):
        due = started + lo / rate
        now = perf_counter()
        if now < due:
            sleep(due - now)
        batch_pages = pages[lo:lo + b]
        batch_levels = levels[lo:lo + b]
        result = service.submit_batch(batch_pages, batch_levels)
        retries = 0
        while not result.accepted and retries < max_retries:
            retries += 1
            sleep(retry_backoff * retries)
            result = service.submit_batch(batch_pages, batch_levels)
        n_overloaded += retries
        if result.accepted:
            tickets.append(result)
        else:
            n_overloaded += 1
            n_dropped += 1
    service.drain(drain_timeout)
    duration = perf_counter() - started
    n_served = sum(t.n_requests for t in tickets if t.done)
    latencies = np.asarray(
        [t.latency for t in tickets if t.latency is not None], dtype=np.float64
    )
    if latencies.size:
        p50, p95, p99 = (
            float(v) * 1e3 for v in np.percentile(latencies, [50.0, 95.0, 99.0])
        )
    else:
        p50 = p95 = p99 = 0.0
    return LoadReport(
        target_rate=float(rate),
        achieved_rate=n_served / duration if duration > 0 else 0.0,
        duration_s=duration,
        n_requests=n,
        n_served=n_served,
        n_batches=len(tickets),
        n_overloaded=n_overloaded,
        n_dropped_batches=n_dropped,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
    )
