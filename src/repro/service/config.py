"""Service configuration and shard-capacity planning.

A :class:`ServiceConfig` fixes everything needed to reproduce a serving run
bit-for-bit: the instance, the policy factory, the shard count, the batching
and backpressure parameters, and the master seed from which every shard's
generator is derived (:func:`repro.sim.seeding.spawn_seeds`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.algorithms.base import Policy
from repro.core.instance import MultiLevelInstance
from repro.errors import ServiceConfigError
from repro.obs.registry import MetricsRegistry

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable configuration of a :class:`~repro.service.server.PagingService`.

    Parameters
    ----------
    instance:
        The *global* instance: its ``cache_size`` is the total capacity
        ``k``, split across shards (see :meth:`shard_capacities`).
    policy_factory:
        Zero-argument callable building a fresh policy per shard.
    n_shards:
        Number of independent shard engines.
    batch_size:
        Micro-batch size used by :class:`~repro.service.ingest.MicroBatcher`
        and the load generator.
    queue_depth:
        Maximum pending batches per shard queue; a submission that would
        exceed it returns :class:`~repro.service.ingest.Overloaded`.
    flush_interval:
        Seconds a partially filled micro-batch may wait before it is
        flushed anyway.
    seed:
        Master seed; shard ``i`` gets the ``i``-th spawned child stream.
    validate:
        Run the simulator's per-request invariant verification inside the
        engines (slower; on by default in tests, off for serving).
    latency_window:
        Number of recent batch service times kept per shard for
        percentile estimates.
    metrics_registry:
        Optional :class:`~repro.obs.MetricsRegistry` the service and its
        shard engines publish exposition metrics into.  ``None`` (the
        default) routes every metrics call to the shared no-op sink.
    checkpoint_interval:
        Requests between per-shard checkpoints; ``0`` (the default)
        disables checkpointing *and* recovery — a dead worker then fails
        its pending tickets and surfaces the error on the next
        submit/drain, the pre-recovery behavior.  Any positive value arms
        the supervisor: dead workers restart from their last checkpoint
        and replay the suffix from the in-memory log.
    max_restarts:
        Per-shard restart budget.  A shard that dies more than this many
        times is marked *failed*: its pending tickets complete with a
        failure result and future submissions touching it return
        :class:`~repro.service.ingest.Failed`.
    replay_log_cap:
        Maximum in-memory replay-log entries per shard.  Reaching the cap
        forces an early checkpoint (which prunes the log), bounding
        recovery memory at ``cap`` batches regardless of the interval.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` — the deterministic
        chaos schedule injected into the shard workers.  ``None`` (the
        default) injects nothing; production configs never set this.
    backend:
        Shard execution backend, one of ``"inline"``, ``"thread"`` (the
        default) or ``"process"``:

        * ``inline`` — :meth:`~repro.service.server.PagingService.start`
          is a no-op; batches are served on the submitting thread.
          Deterministic, zero queueing — the benchmark/test mode.
        * ``thread`` — one worker thread per shard after ``start()``
          (submissions before ``start()`` still serve inline).  Buys
          queueing and backpressure, not CPU parallelism (the serve
          loops are GIL-bound).
        * ``process`` — one spawned worker *process* per shard, fed over
          a pipe.  Requires ``start()`` before any traffic, a picklable
          ``policy_factory`` (registered policy classes are), and — from
          a script — the standard ``if __name__ == "__main__"`` guard
          (the spawn context re-imports the main module).  The only
          backend whose throughput scales with cores.
    """

    instance: MultiLevelInstance
    policy_factory: Callable[[], Policy]
    n_shards: int = 1
    batch_size: int = 512
    queue_depth: int = 64
    flush_interval: float = 0.005
    seed: int = 0
    validate: bool = False
    latency_window: int = 4096
    policy_name: str = field(default="", compare=False)
    metrics_registry: MetricsRegistry | None = field(
        default=None, compare=False, repr=False
    )
    checkpoint_interval: int = 0
    max_restarts: int = 3
    replay_log_cap: int = 1024
    fault_plan: object | None = field(default=None, compare=False, repr=False)
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.backend not in ("inline", "thread", "process"):
            raise ServiceConfigError(
                f"backend must be one of 'inline', 'thread', 'process'; "
                f"got {self.backend!r}"
            )
        if self.n_shards < 1:
            raise ServiceConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.batch_size < 1:
            raise ServiceConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.queue_depth < 1:
            raise ServiceConfigError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.flush_interval <= 0:
            raise ServiceConfigError(
                f"flush_interval must be > 0, got {self.flush_interval}"
            )
        if self.latency_window < 1:
            raise ServiceConfigError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )
        if self.checkpoint_interval < 0:
            raise ServiceConfigError(
                f"checkpoint_interval must be >= 0, got {self.checkpoint_interval}"
            )
        if self.max_restarts < 0:
            raise ServiceConfigError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.replay_log_cap < 1:
            raise ServiceConfigError(
                f"replay_log_cap must be >= 1, got {self.replay_log_cap}"
            )
        k = self.instance.cache_size
        if self.n_shards > k:
            raise ServiceConfigError(
                f"cannot split capacity k={k} across {self.n_shards} shards: "
                "every shard needs at least one slot"
            )
        # Each shard sees the full page universe (routing restricts which
        # pages actually arrive), so per-shard capacity must respect k < n.
        if max(self.shard_capacities()) >= self.instance.n_pages:
            raise ServiceConfigError(
                f"shard capacity {max(self.shard_capacities())} must stay below "
                f"the page universe size {self.instance.n_pages}"
            )

    @classmethod
    def from_policy_name(cls, name: str, instance: MultiLevelInstance,
                         **kwargs) -> "ServiceConfig":
        """Build a config from a registered policy name (CLI path)."""
        from repro.algorithms import policy_registry

        if name not in policy_registry:
            raise ServiceConfigError(
                f"unknown policy {name!r}; available: "
                f"{', '.join(sorted(policy_registry))}"
            )
        return cls(instance=instance, policy_factory=policy_registry[name],
                   policy_name=name, **kwargs)

    def shard_capacities(self) -> list[int]:
        """Per-shard cache capacities: ``k`` split as evenly as possible.

        The first ``k mod n_shards`` shards get the extra slot, so the
        total always equals the global ``k``.
        """
        k, n = self.instance.cache_size, self.n_shards
        base, extra = divmod(k, n)
        return [base + (1 if i < extra else 0) for i in range(n)]

    def shard_instances(self) -> list[MultiLevelInstance]:
        """One instance per shard: full weight matrix, partitioned capacity."""
        return [
            MultiLevelInstance(
                cap, self.instance.weights,
                name=f"{self.instance.name}/shard{i}",
            )
            for i, cap in enumerate(self.shard_capacities())
        ]
