"""Batched ingest primitives: tickets, overload responses, micro-batching.

The service accepts work in micro-batches.  A successful submission returns
a :class:`BatchTicket` — a countdown latch completed once every shard has
processed its slice, carrying the end-to-end batch latency.  A submission
the bounded queues cannot absorb returns :class:`Overloaded` *immediately*:
backpressure is an explicit response the client handles (retry, shed,
slow down), never unbounded buffering inside the service.

Every non-ticket response carries two booleans the client branches on:
``accepted`` (did the service take the batch?) and ``retryable`` (is
resubmitting the same batch ever going to help?).  :class:`Overloaded` is
transient (``retryable``); :class:`Failed` — the owning shard is
permanently down — and :class:`Shed` — the batcher dropped the request at
its buffer cap — are terminal.

:class:`MicroBatcher` adapts a per-request producer to this batch API:
requests accumulate until ``batch_size`` is reached or the oldest buffered
request has waited ``flush_interval`` seconds, then the buffer is flushed
as one batch.  The buffer is *bounded*: under sustained backpressure it
keeps at most ``max_buffer`` requests and sheds the overflow back to the
producer instead of growing without limit.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass
from time import monotonic, perf_counter

import numpy as np

__all__ = ["Overloaded", "Failed", "Shed", "BatchTicket", "MicroBatcher"]


@dataclass(frozen=True)
class Overloaded:
    """Rejection response: shard ``shard``'s queue was at ``queue_depth``."""

    shard: int
    queue_depth: int

    @property
    def accepted(self) -> bool:
        """Always False — lets clients branch on a common field."""
        return False

    @property
    def retryable(self) -> bool:
        """True: backpressure is transient; resubmit the same batch later."""
        return True


@dataclass(frozen=True)
class Failed:
    """Terminal rejection: shard ``shard`` is permanently failed.

    Returned (never raised) by ``submit_batch`` once a shard has exhausted
    its restart budget, and used to complete the pending tickets of an
    unrecoverable shard so no ``wait()`` caller hangs.  ``error`` is the
    exception that killed the shard, for diagnostics.
    """

    shard: int
    error: BaseException | None = None

    @property
    def accepted(self) -> bool:
        """Always False — mirror of :attr:`Overloaded.accepted`."""
        return False

    @property
    def retryable(self) -> bool:
        """False: the shard is gone; retrying the same batch cannot help."""
        return False


@dataclass(frozen=True)
class Shed:
    """The micro-batcher dropped this request at its buffer cap.

    ``cause`` is the submit response that kept the buffer full (an
    :class:`Overloaded` or :class:`Failed`); the producer decides whether
    to slow down, retry later, or count the loss.
    """

    page: int
    level: int
    cause: object = None

    @property
    def accepted(self) -> bool:
        """Always False — the request was not taken."""
        return False

    @property
    def retryable(self) -> bool:
        """False for *this* response: the request was dropped, not queued.

        The producer may still re-``offer`` the same request; whether that
        helps depends on :attr:`cause`.
        """
        return False


class BatchTicket:
    """Completion handle for one accepted batch (a countdown latch).

    The batch is split across up to ``n_parts`` shard queues; each shard
    engine calls :meth:`part_done` after serving its slice — or
    :meth:`part_failed` if the owning shard died unrecoverably.  ``wait``
    blocks until every slice has been *resolved* either way (a failed
    ticket never hangs its waiter); :attr:`ok` distinguishes the outcomes
    and :attr:`latency` is the end-to-end submit-to-resolved time.
    """

    __slots__ = ("n_requests", "submitted_at", "completed_at", "_remaining",
                 "_errors", "_lock", "_event", "_callbacks")

    def __init__(self, n_parts: int, n_requests: int) -> None:
        self.n_requests = n_requests
        self.submitted_at = perf_counter()
        self.completed_at: float | None = None
        self._remaining = n_parts
        self._errors: tuple[BaseException, ...] = ()
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._callbacks: list = []
        if n_parts == 0:
            self.completed_at = self.submitted_at
            self._event.set()

    @property
    def accepted(self) -> bool:
        """Always True — mirror of :attr:`Overloaded.accepted`."""
        return True

    def _resolve(self) -> None:
        """Complete the ticket: stamp, wake waiters, fire callbacks once."""
        self.completed_at = perf_counter()
        with self._lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def add_done_callback(self, fn) -> None:
        """Run ``fn(ticket)`` once every slice is resolved.

        Fires immediately (on the calling thread) if the ticket is already
        done; otherwise fires on whichever shard worker resolves the last
        slice.  Callbacks must be cheap and must not raise — this is the
        bridge the network frontend uses to complete responses from a
        worker thread into its event loop without a blocking ``wait``.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def part_done(self) -> None:
        """Signal that one shard finished its slice of the batch."""
        with self._lock:
            self._remaining -= 1
            done = self._remaining == 0
        if done:
            self._resolve()

    def part_failed(self, error: BaseException | None = None) -> None:
        """Resolve one slice as *failed*; the ticket still completes.

        Called by the service when the slice's shard died unrecoverably.
        Waiters wake exactly as for success — they check :attr:`ok`.
        """
        with self._lock:
            if error is not None:
                self._errors = self._errors + (error,)
            else:
                self._errors = self._errors + (
                    RuntimeError("shard slice failed"),
                )
            self._remaining -= 1
            done = self._remaining == 0
        if done:
            self._resolve()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every slice is resolved; False on timeout."""
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        """True once every shard slice has been resolved (ok or failed)."""
        return self._event.is_set()

    @property
    def failed(self) -> bool:
        """True when at least one slice was resolved as failed."""
        return bool(self._errors)

    @property
    def errors(self) -> tuple[BaseException, ...]:
        """The failures recorded against this ticket's slices."""
        return self._errors

    @property
    def ok(self) -> bool:
        """True when the batch fully completed with no failed slice."""
        return self._event.is_set() and not self._errors

    @property
    def latency(self) -> float | None:
        """Submit-to-resolved seconds, or None while still in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class MicroBatcher:
    """Accumulate single requests into batches for a submit callable.

    Parameters
    ----------
    batch_size:
        Flush as soon as this many requests are buffered.
    flush_interval:
        Flush a non-empty buffer once its oldest request has waited this
        many seconds, even if the batch is short.
    submit:
        Called with ``(pages, levels)`` int64 arrays; its return value is
        handed back to the producer (ticket or rejection response).
    max_buffer:
        Hard cap on buffered requests while the submit target rejects
        with a retryable response.  Defaults to ``4 * batch_size``.  At
        the cap, :meth:`offer` returns :class:`Shed` without buffering —
        sustained backpressure surfaces to the producer instead of
        growing an unbounded list.
    clock:
        Injectable monotonic clock, for deterministic tests.
    """

    __slots__ = ("batch_size", "flush_interval", "max_buffer", "n_shed",
                 "_submit", "_clock", "_pages", "_levels", "_oldest",
                 "_last_reject")

    def __init__(
        self,
        batch_size: int,
        flush_interval: float,
        submit: Callable[[np.ndarray, np.ndarray], object],
        *,
        max_buffer: int | None = None,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if max_buffer is None:
            max_buffer = 4 * batch_size
        if max_buffer < batch_size:
            raise ValueError(
                f"max_buffer ({max_buffer}) must be >= batch_size ({batch_size})"
            )
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.max_buffer = max_buffer
        #: Requests dropped at the buffer cap (returned as :class:`Shed`).
        self.n_shed = 0
        self._submit = submit
        self._clock = clock
        self._pages: list[int] = []
        self._levels: list[int] = []
        self._oldest = 0.0
        self._last_reject: object | None = None

    def __len__(self) -> int:
        return len(self._pages)

    def offer(self, page: int, level: int = 1) -> object | None:
        """Buffer one request; returns the submit result on flush, else None.

        At the buffer cap a flush is attempted first; if the service still
        rejects, the *offered* request is shed (returned as :class:`Shed`,
        never buffered) so the buffer stays bounded at ``max_buffer``.
        """
        if len(self._pages) >= self.max_buffer:
            result = self.flush()
            if len(self._pages) >= self.max_buffer:
                self.n_shed += 1
                return Shed(page, level, cause=result or self._last_reject)
        if not self._pages:
            self._oldest = self._clock()
        self._pages.append(page)
        self._levels.append(level)
        if (len(self._pages) >= self.batch_size
                or self._clock() - self._oldest >= self.flush_interval):
            return self.flush()
        return None

    def flush(self) -> object | None:
        """Submit whatever is buffered; None if the buffer is empty.

        A *retryable* rejection (:class:`Overloaded`) keeps the buffer so
        the producer can retry with a later ``flush`` call.  A terminal
        rejection (:class:`Failed`) sheds the whole buffer — those
        requests can never be accepted, so holding them only hides loss.
        """
        if not self._pages:
            return None
        pages = np.asarray(self._pages, dtype=np.int64)
        levels = np.asarray(self._levels, dtype=np.int64)
        result = self._submit(pages, levels)
        if getattr(result, "accepted", True):
            self._pages.clear()
            self._levels.clear()
            self._last_reject = None
        elif not getattr(result, "retryable", True):
            self.n_shed += len(self._pages)
            self._pages.clear()
            self._levels.clear()
            self._last_reject = result
        else:
            self._last_reject = result
        return result
