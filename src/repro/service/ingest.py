"""Batched ingest primitives: tickets, overload responses, micro-batching.

The service accepts work in micro-batches.  A successful submission returns
a :class:`BatchTicket` — a countdown latch completed once every shard has
processed its slice, carrying the end-to-end batch latency.  A submission
the bounded queues cannot absorb returns :class:`Overloaded` *immediately*:
backpressure is an explicit response the client handles (retry, shed,
slow down), never unbounded buffering inside the service.

:class:`MicroBatcher` adapts a per-request producer to this batch API:
requests accumulate until ``batch_size`` is reached or the oldest buffered
request has waited ``flush_interval`` seconds, then the buffer is flushed
as one batch.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass
from time import monotonic, perf_counter

import numpy as np

__all__ = ["Overloaded", "BatchTicket", "MicroBatcher"]


@dataclass(frozen=True)
class Overloaded:
    """Rejection response: shard ``shard``'s queue was at ``queue_depth``."""

    shard: int
    queue_depth: int

    @property
    def accepted(self) -> bool:
        """Always False — lets clients branch on a common field."""
        return False


class BatchTicket:
    """Completion handle for one accepted batch (a countdown latch).

    The batch is split across up to ``n_parts`` shard queues; each shard
    engine calls :meth:`part_done` after serving its slice.  ``wait`` blocks
    until the whole batch is served; :attr:`latency` is then the end-to-end
    submit-to-served time in seconds.
    """

    __slots__ = ("n_requests", "submitted_at", "completed_at", "_remaining",
                 "_lock", "_event")

    def __init__(self, n_parts: int, n_requests: int) -> None:
        self.n_requests = n_requests
        self.submitted_at = perf_counter()
        self.completed_at: float | None = None
        self._remaining = n_parts
        self._lock = threading.Lock()
        self._event = threading.Event()
        if n_parts == 0:
            self.completed_at = self.submitted_at
            self._event.set()

    @property
    def accepted(self) -> bool:
        """Always True — mirror of :attr:`Overloaded.accepted`."""
        return True

    def part_done(self) -> None:
        """Signal that one shard finished its slice of the batch."""
        with self._lock:
            self._remaining -= 1
            done = self._remaining == 0
        if done:
            self.completed_at = perf_counter()
            self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the batch is fully served; False on timeout."""
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        """True once every shard slice has been served."""
        return self._event.is_set()

    @property
    def latency(self) -> float | None:
        """Submit-to-served seconds, or None while still in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class MicroBatcher:
    """Accumulate single requests into batches for a submit callable.

    Parameters
    ----------
    batch_size:
        Flush as soon as this many requests are buffered.
    flush_interval:
        Flush a non-empty buffer once its oldest request has waited this
        many seconds, even if the batch is short.
    submit:
        Called with ``(pages, levels)`` int64 arrays; its return value is
        handed back to the producer (ticket or overload response).
    clock:
        Injectable monotonic clock, for deterministic tests.
    """

    __slots__ = ("batch_size", "flush_interval", "_submit", "_clock",
                 "_pages", "_levels", "_oldest")

    def __init__(
        self,
        batch_size: int,
        flush_interval: float,
        submit: Callable[[np.ndarray, np.ndarray], object],
        *,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self._submit = submit
        self._clock = clock
        self._pages: list[int] = []
        self._levels: list[int] = []
        self._oldest = 0.0

    def __len__(self) -> int:
        return len(self._pages)

    def offer(self, page: int, level: int = 1) -> object | None:
        """Buffer one request; returns the submit result on flush, else None."""
        if not self._pages:
            self._oldest = self._clock()
        self._pages.append(page)
        self._levels.append(level)
        if (len(self._pages) >= self.batch_size
                or self._clock() - self._oldest >= self.flush_interval):
            return self.flush()
        return None

    def flush(self) -> object | None:
        """Submit whatever is buffered; None if the buffer is empty.

        If the submission is rejected (:class:`Overloaded`), the buffer is
        *kept* so the producer can retry with a later ``flush`` call.
        """
        if not self._pages:
            return None
        pages = np.asarray(self._pages, dtype=np.int64)
        levels = np.asarray(self._levels, dtype=np.int64)
        result = self._submit(pages, levels)
        if getattr(result, "accepted", True):
            self._pages.clear()
            self._levels.clear()
        return result
