"""repro — a reproduction of "Efficient Online Weighted Multi-Level Paging".

Bansal, Naor, Talmon (SPAA 2021) study writeback-aware caching, RW-paging
and weighted multi-level paging.  This package implements:

* every problem model of the paper (:mod:`repro.core`),
* the O(k)-competitive deterministic water-filling algorithm (Section 4.1),
* the O(log k)-competitive deterministic fractional algorithm (Section 4.2),
* the distribution-free online rounding (Section 4.3, Algorithms 1 and 2)
  and the composed O(log^2 k) randomized algorithm,
* the Lemma 2.1 writeback <-> RW-paging reduction,
* the Section 3 set-cover lower-bound construction,
* offline optima (exact DP and LP relaxation), classical baselines,
  workload generators, a verifying simulator and an experiment harness,
* a sharded, stream-oriented serving layer (:mod:`repro.service`) with
  batched ingest, backpressure, live metrics and a load generator.

Quick start::

    import numpy as np
    from repro import WeightedPagingInstance, RequestSequence
    from repro.algorithms import LRUPolicy
    from repro.sim import simulate

    inst = WeightedPagingInstance(cache_size=4, weights=np.ones(16))
    seq = RequestSequence.from_pages([0, 1, 2, 3, 4, 0, 1, 2, 3, 4])
    result = simulate(inst, seq, LRUPolicy())
    print(result.cost, result.hit_rate)
"""

from repro.core import (
    CostLedger,
    MultiLevelCache,
    MultiLevelInstance,
    Request,
    RequestSequence,
    RWPagingInstance,
    WBRequest,
    WBRequestSequence,
    WeightedPagingInstance,
    WritebackCache,
    WritebackInstance,
)
from repro.errors import ReproError

__version__ = "1.1.0"

# The serving layer is exported lazily: it pulls in the policy registry and
# threading machinery, which plain offline users never need at import time.
_SERVICE_EXPORTS = frozenset(
    {"PagingService", "ServiceConfig", "LoadReport", "run_load"}
)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        import repro.service as _service

        return getattr(_service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PagingService",
    "ServiceConfig",
    "LoadReport",
    "run_load",
    "CostLedger",
    "MultiLevelCache",
    "MultiLevelInstance",
    "Request",
    "RequestSequence",
    "RWPagingInstance",
    "WBRequest",
    "WBRequestSequence",
    "WeightedPagingInstance",
    "WritebackCache",
    "WritebackInstance",
    "ReproError",
    "__version__",
]
