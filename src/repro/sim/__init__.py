"""Simulation engine: verifying simulator, metrics, seeding, sweep runner."""

from repro.sim.metrics import RunResult, SeedAggregate, aggregate_runs
from repro.sim.mrc import (
    FenwickTree,
    lru_miss_curve,
    opt_miss_curve,
    stack_distances,
)
from repro.sim.replay import replay_solution, replay_writeback_solution
from repro.sim.runner import RunSpec, SweepResult, run_spec, run_sweep
from repro.sim.seeding import spawn_generators, spawn_seeds
from repro.sim.simulator import simulate, simulate_writeback

__all__ = [
    "FenwickTree",
    "lru_miss_curve",
    "opt_miss_curve",
    "stack_distances",
    "RunResult",
    "SeedAggregate",
    "aggregate_runs",
    "replay_solution",
    "replay_writeback_solution",
    "RunSpec",
    "SweepResult",
    "run_spec",
    "run_sweep",
    "spawn_generators",
    "spawn_seeds",
    "simulate",
    "simulate_writeback",
]
