"""Miss-ratio curves via LRU stack distances (one pass, all cache sizes).

LRU has the *inclusion property*: the cache of size ``k`` is always a
subset of the cache of size ``k + 1``, so a single pass computing each
request's **stack distance** (the number of distinct pages referenced
since the previous reference to the same page) yields the LRU hit count
for *every* cache size at once: a request with stack distance ``d`` hits
iff ``k >= d``.

Stack distances are computed with a Fenwick (binary indexed) tree over
time indices — O(T log T) total, array-based and allocation-free in the
hot loop, which is what makes million-request traces practical in pure
Python + NumPy.

For unweighted paging this gives exact LRU miss counts; Belady's MIN
also has the inclusion property, and :func:`opt_miss_curve` computes its
curve by simulating MIN per size using the shared next-use precompute.
"""

from __future__ import annotations

import numpy as np

from repro.core.requests import RequestSequence
from repro.offline.belady import next_use_indices

__all__ = ["FenwickTree", "stack_distances", "lru_miss_curve", "opt_miss_curve"]

_INF_DIST = np.iinfo(np.int64).max


class FenwickTree:
    """A Fenwick tree over ``size`` slots supporting point add / prefix sum."""

    __slots__ = ("_tree", "size")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, index: int, value: int) -> None:
        """Add ``value`` at 0-based ``index``."""
        i = index + 1
        tree = self._tree
        while i <= self.size:
            tree[i] += value
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions ``0..index`` (0-based, inclusive)."""
        i = index + 1
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over ``[lo, hi]`` inclusive."""
        if lo > hi:
            return 0
        upper = self.prefix_sum(hi)
        return upper - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def stack_distances(pages: np.ndarray) -> np.ndarray:
    """LRU stack distance of every request (int64; INT64_MAX = cold miss).

    ``distance[t]`` = number of *distinct* pages referenced strictly
    between the previous reference to ``pages[t]`` and time ``t``.  A
    request with ``distance[t] < k`` is an LRU hit at cache size ``k``
    (the referenced page itself is not counted).
    """
    pages = np.asarray(pages, dtype=np.int64)
    T = pages.size
    out = np.empty(T, dtype=np.int64)
    if T == 0:
        return out
    tree = FenwickTree(T)
    last_pos: dict[int, int] = {}
    for t in range(T):
        p = int(pages[t])
        prev = last_pos.get(p)
        if prev is None:
            out[t] = _INF_DIST
        else:
            # Distinct pages in (prev, t): each contributes its *latest*
            # occurrence marker, which the tree maintains.
            out[t] = tree.range_sum(prev + 1, t - 1)
            tree.add(prev, -1)
        tree.add(t, 1)
        last_pos[p] = t
    return out


def lru_miss_curve(seq: RequestSequence, max_k: int) -> np.ndarray:
    """LRU miss counts for every cache size ``1..max_k`` in one pass.

    Returns an ``(max_k,)`` int64 array: entry ``k-1`` is the number of
    LRU misses with a size-``k`` cache, exact for unweighted single-level
    paging.
    """
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    dist = stack_distances(seq.pages)
    finite = dist[dist < _INF_DIST]
    # Hits at size k = #requests with stack distance < k; cold misses
    # (first references) have infinite distance and always miss.
    hist = np.bincount(np.minimum(finite, max_k), minlength=max_k + 1)
    hits_at_k = np.cumsum(hist[:max_k])
    return dist.size - hits_at_k


def opt_miss_curve(seq: RequestSequence, max_k: int) -> np.ndarray:
    """Belady MIN miss counts for cache sizes ``1..max_k``.

    MIN is simulated per size (sharing one next-use precompute); exact
    for unweighted single-level paging.  O(max_k * T log k).
    """
    import heapq

    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    pages = seq.pages
    n = int(pages.max()) + 1 if pages.size else 1
    next_use = next_use_indices(pages, n)
    out = np.empty(max_k, dtype=np.int64)
    for k in range(1, max_k + 1):
        cached: dict[int, int] = {}
        heap: list[tuple[int, int]] = []
        misses = 0
        for t in range(pages.size):
            p = int(pages[t])
            nu = int(next_use[t])
            if p in cached:
                cached[p] = nu
                heapq.heappush(heap, (-nu, p))
                continue
            misses += 1
            if len(cached) >= k:
                while True:
                    neg_nu, q = heapq.heappop(heap)
                    if q in cached and cached[q] == -neg_nu:
                        break
                del cached[q]
            cached[p] = nu
            heapq.heappush(heap, (-nu, p))
        out[k - 1] = misses
    return out
