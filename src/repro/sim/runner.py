"""Parameter-sweep runner with optional process parallelism.

A sweep is a list of :class:`RunSpec` — (instance, sequence, policy
factory, seed count) plus free-form ``params`` metadata that flows into
the result rows.  Each spec is executed over independent spawned seeds
(:mod:`repro.sim.seeding`), sequentially or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Everything in a spec must be picklable for the parallel path: use
module-level policy classes or :func:`functools.partial` objects as
factories (all policies in :mod:`repro.algorithms` qualify).
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Policy, WritebackPolicy
from repro.core.instance import MultiLevelInstance, WritebackInstance
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import SweepWorkerError
from repro.sim.metrics import RunResult, SeedAggregate, aggregate_runs
from repro.sim.seeding import spawn_seeds
from repro.sim.simulator import simulate, simulate_writeback

__all__ = ["RunSpec", "SweepResult", "run_spec", "run_sweep"]


@dataclass(frozen=True)
class RunSpec:
    """One sweep cell: a policy on a workload, repeated over seeds."""

    instance: MultiLevelInstance | WritebackInstance
    sequence: RequestSequence | WBRequestSequence
    policy_factory: Callable[[], Policy | WritebackPolicy]
    n_seeds: int = 1
    master_seed: int = 0
    label: str = ""
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {self.n_seeds}")


@dataclass(frozen=True)
class SweepResult:
    """All runs of one spec plus their aggregate."""

    spec_label: str
    params: dict
    runs: list[RunResult]

    @property
    def aggregate(self) -> SeedAggregate:
        """Mean/stderr summary across the spec's seeds."""
        return aggregate_runs(self.runs)


def run_spec(spec: RunSpec) -> SweepResult:
    """Execute one spec over its spawned seeds (always sequential)."""
    runs: list[RunResult] = []
    for seed_seq in spawn_seeds(spec.master_seed, spec.n_seeds):
        rng = np.random.default_rng(seed_seq)
        policy = spec.policy_factory()
        if isinstance(spec.instance, WritebackInstance):
            result = simulate_writeback(spec.instance, spec.sequence, policy, seed=rng)
        else:
            result = simulate(spec.instance, spec.sequence, policy, seed=rng)
        runs.append(result)
    label = spec.label or runs[0].policy
    return SweepResult(spec_label=label, params=dict(spec.params), runs=runs)


def _run_spec_checked(spec: RunSpec) -> SweepResult:
    """Run one spec, re-raising failures tagged with the spec's label.

    A bare exception from a worker process arrives as a pickled traceback
    with no indication of *which* sweep cell died; this wrapper (module-level,
    so it is picklable for the pool) attaches the label and params up front.
    """
    try:
        return run_spec(spec)
    except Exception as exc:
        label = spec.label or getattr(spec.policy_factory, "__name__", "?")
        raise SweepWorkerError(
            f"sweep spec {label!r} (params={spec.params}) failed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def run_sweep(
    specs: Sequence[RunSpec],
    *,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[SweepResult]:
    """Execute a whole sweep, optionally across worker processes.

    Results come back in spec order regardless of execution order.  A
    failing spec raises :class:`~repro.errors.SweepWorkerError` naming the
    spec's label (on both the sequential and the parallel path).
    """
    if not parallel or len(specs) <= 1:
        return [_run_spec_checked(s) for s in specs]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        # Without an explicit chunksize, map() ships specs one at a time;
        # batching amortizes pickling of shared instances/sequences.
        workers = max_workers or os.cpu_count() or 1
        chunksize = max(1, math.ceil(len(specs) / (4 * workers)))
        return list(pool.map(_run_spec_checked, specs, chunksize=chunksize))
