"""Replaying and validating explicit cache-state solutions.

A *solution trace* is a list of cache states (``page -> level``), one per
request, as produced by :func:`repro.offline.offline_opt_multilevel_trace`
or by hand.  :func:`replay_solution` checks the trace is feasible (serves
every request, respects capacity and the one-copy rule) and returns its
exact eviction cost — turning any claimed solution into a verifiable
certificate.  :func:`replay_writeback_solution` is the writeback-aware
analogue, deriving dirty bits from the request stream (a page is dirty
iff written since it last entered the cache).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.instance import MultiLevelInstance, WritebackInstance
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import CacheInvariantError

__all__ = ["replay_solution", "replay_writeback_solution"]


def _check_state(instance: MultiLevelInstance, state: dict[int, int],
                 t: int) -> None:
    if len(state) > instance.cache_size:
        raise CacheInvariantError(
            f"t={t}: state holds {len(state)} copies, capacity "
            f"{instance.cache_size}"
        )
    for page, level in state.items():
        instance.check_copy(page, level)


def replay_solution(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    trace: Sequence[dict[int, int]],
) -> float:
    """Validate a multi-level solution trace; returns its eviction cost.

    ``trace[t]`` is the cache after serving request ``t``; the run starts
    from the empty cache.  Raises :class:`CacheInvariantError` on any
    violation (unserved request, overflow, bad copy).
    """
    if len(trace) != len(seq):
        raise CacheInvariantError(
            f"trace length {len(trace)} != sequence length {len(seq)}"
        )
    cost = 0.0
    prev: dict[int, int] = {}
    for t, req in enumerate(seq):
        state = dict(trace[t])
        _check_state(instance, state, t)
        lvl = state.get(req.page)
        if lvl is None or lvl > req.level:
            raise CacheInvariantError(
                f"t={t}: request (page={req.page}, level={req.level}) unserved"
            )
        for page, old_level in prev.items():
            if state.get(page) != old_level:
                cost += instance.weight(page, old_level)
        prev = state
    return cost


def replay_writeback_solution(
    instance: WritebackInstance,
    seq: WBRequestSequence,
    trace: Sequence[dict[int, bool] | set[int] | frozenset[int]],
) -> float:
    """Validate a writeback solution trace; returns its eviction cost.

    ``trace[t]`` may be a set of cached pages (dirty bits derived from the
    request stream: a page is dirty iff some write touched it since its
    current residency began) or a ``page -> dirty`` mapping, in which case
    the claimed bits are checked against the derived ones.
    """
    if len(trace) != len(seq):
        raise CacheInvariantError(
            f"trace length {len(trace)} != sequence length {len(seq)}"
        )
    cost = 0.0
    dirty: dict[int, bool] = {}
    for t, req in enumerate(seq):
        raw = trace[t]
        pages = set(raw.keys()) if isinstance(raw, dict) else set(raw)
        if len(pages) > instance.cache_size:
            raise CacheInvariantError(
                f"t={t}: {len(pages)} pages cached, capacity "
                f"{instance.cache_size}"
            )
        for page in pages:
            instance.check_page(page)
        if req.page not in pages:
            raise CacheInvariantError(
                f"t={t}: request for page {req.page} unserved"
            )
        # Evictions (pay by derived dirtiness), then admissions (clean).
        for page in list(dirty):
            if page not in pages:
                cost += instance.eviction_cost(page, dirty.pop(page))
        for page in pages:
            dirty.setdefault(page, False)
        if req.is_write:
            dirty[req.page] = True
        if isinstance(raw, dict):
            for page, claimed in raw.items():
                if bool(claimed) != dirty[page]:
                    raise CacheInvariantError(
                        f"t={t}: page {page} claimed "
                        f"{'dirty' if claimed else 'clean'} but is "
                        f"{'dirty' if dirty[page] else 'clean'}"
                    )
    return cost
