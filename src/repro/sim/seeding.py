"""Deterministic seed streams for parameter sweeps.

Seeds are derived with :class:`numpy.random.SeedSequence` spawning, so

* the same master seed reproduces every run of a sweep,
* runs are statistically independent of each other,
* adding runs to a sweep never changes the seeds of existing runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_generators", "spawn_seeds"]


def spawn_seeds(master_seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences of a master seed."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return np.random.SeedSequence(master_seed).spawn(count)


def spawn_generators(master_seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from a master seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(master_seed, count)]
