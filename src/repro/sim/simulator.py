"""The verifying simulator.

The simulator owns the authoritative cache, drives a policy over a request
sequence, and — unlike a trusting replay loop — *verifies* the model's
invariants after every request:

* the request is actually served,
* the cache holds at most ``k`` copies / pages,
* (multi-level) at most one copy per page, levels in range.

A policy that cheats raises :class:`~repro.errors.CacheInvariantError`
immediately, with the failing time step in the message.  Pass
``validate=False`` on hot benchmark paths: the fast loop skips every
per-request invariant check and batches the hit/miss accounting, so the
only per-request work left is the serve call plus one dict lookup.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Policy, WritebackPolicy
from repro.core.cache import MultiLevelCache, WritebackCache
from repro.core.instance import MultiLevelInstance, WritebackInstance
from repro.core.ledger import CostLedger
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import CacheInvariantError
from repro.sim.metrics import RunResult

__all__ = ["simulate", "simulate_writeback"]

#: Chunk size for the kernel batch fast path in :func:`simulate`.
_KERNEL_CHUNK = 4096


def simulate(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    policy: Policy,
    *,
    seed: int | np.random.Generator | None = None,
    record_events: bool = False,
    validate: bool = True,
    tracer=None,
) -> RunResult:
    """Run ``policy`` over ``seq`` on ``instance`` from an empty cache.

    Returns a :class:`~repro.sim.metrics.RunResult` with the eviction cost
    (the paper's objective), hit statistics and, optionally, the full
    eviction event log.

    ``tracer`` is an optional :class:`repro.obs.DecisionTracer`: sampled
    requests, their evictions and (for policies that expose them) the
    candidate sets are written to its JSONL sink.  A tracer whose sample
    rate is 0 never activates the traced loop, so attaching one costs
    nothing on the ``validate=False`` fast path.
    """
    instance.validate_sequence(seq.pages, seq.levels)
    ledger = CostLedger(record_events=record_events)
    cache = MultiLevelCache(instance, ledger)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    policy.bind(instance, cache, rng)

    pages = seq.pages.tolist()
    levels = seq.levels.tolist()
    # The loop is duplicated per validation mode so the fast path carries no
    # per-request branches; bound methods are hoisted into locals.  Policies
    # never read the shared ledger (they only write through the cache), so
    # the fast path batches hit/miss counts into plain ints and ledger
    # timestamps are only maintained when the event log needs them.
    serves = cache.serves
    serve = policy.serve
    if tracer is not None and tracer.active:
        # Traced loop: the tracer samples per request index; the ledger and
        # policy get the tracer attached so eviction / candidate events
        # follow their request's sampling decision.
        ledger.tracer = tracer
        policy.tracer = tracer
        set_time = ledger.set_time
        trace_request = tracer.request
        hits = 0
        try:
            for t, (page, level) in enumerate(zip(pages, levels)):
                set_time(t)
                hit = serves(page, level)
                if hit:
                    hits += 1
                trace_request(t, page, level, hit)
                serve(t, page, level)
                if validate:
                    if not serves(page, level):
                        raise CacheInvariantError(
                            f"policy {policy.name!r} left request t={t} "
                            f"(page={page}, level={level}) unserved"
                        )
                    cache.check_invariants()
        finally:
            ledger.tracer = None
            policy.tracer = None
        ledger.n_hits += hits
        ledger.n_misses += len(pages) - hits
    elif validate:
        set_time = ledger.set_time
        count_hit = ledger.count_hit
        count_miss = ledger.count_miss
        check = cache.check_invariants
        for t, (page, level) in enumerate(zip(pages, levels)):
            set_time(t)
            if serves(page, level):
                count_hit()
            else:
                count_miss()
            serve(t, page, level)
            if not serves(page, level):
                raise CacheInvariantError(
                    f"policy {policy.name!r} left request t={t} "
                    f"(page={page}, level={level}) unserved"
                )
            check()
    else:
        hits = 0
        serve_batch = getattr(policy, "serve_batch", None)
        if record_events:
            set_time = ledger.set_time
            for t, (page, level) in enumerate(zip(pages, levels)):
                set_time(t)
                if serves(page, level):
                    hits += 1
                serve(t, page, level)
        elif serve_batch is not None:
            # Columnar policies serve whole chunks from their numpy state;
            # chunking (rather than one giant call) keeps the kernel's
            # batch classification fresh against the evolving cache.
            p_arr, l_arr = seq.pages, seq.levels
            for lo in range(0, len(pages), _KERNEL_CHUNK):
                hi = lo + _KERNEL_CHUNK
                hits += serve_batch(lo, p_arr[lo:hi], l_arr[lo:hi])
        else:
            for t, (page, level) in enumerate(zip(pages, levels)):
                if serves(page, level):
                    hits += 1
                serve(t, page, level)
        ledger.n_hits += hits
        ledger.n_misses += len(pages) - hits

    return RunResult(
        policy=policy.name,
        cost=ledger.eviction_cost,
        n_requests=len(seq),
        n_hits=ledger.n_hits,
        n_misses=ledger.n_misses,
        n_evictions=ledger.n_evictions,
        n_fetches=ledger.n_fetches,
        cost_by_reason=dict(ledger.cost_by_reason),
        events=list(ledger.events),
        final_cache=cache.contents(),
        extra=policy.extras(),
    )


def simulate_writeback(
    instance: WritebackInstance,
    seq: WBRequestSequence,
    policy: WritebackPolicy,
    *,
    seed: int | np.random.Generator | None = None,
    record_events: bool = False,
    validate: bool = True,
) -> RunResult:
    """Run a writeback-aware policy over a read/write stream.

    The simulator — not the policy — marks a served write's page dirty,
    since dirtying is model semantics rather than a policy decision.
    """
    instance.validate_sequence(seq.pages, seq.writes)
    ledger = CostLedger(record_events=record_events)
    cache = WritebackCache(instance, ledger)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    policy.bind(instance, cache, rng)

    pages = seq.pages.tolist()
    writes = seq.writes.tolist()
    # Same hot-loop structure as simulate(): per-mode loops, hoisted bound
    # methods, and batched hit/miss counting on the validation-free path.
    cached = cache.__contains__
    serve = policy.serve
    mark_dirty = cache.mark_dirty
    if validate:
        set_time = ledger.set_time
        count_hit = ledger.count_hit
        count_miss = ledger.count_miss
        check = cache.check_invariants
        for t, (page, is_write) in enumerate(zip(pages, writes)):
            set_time(t)
            if cached(page):
                count_hit()
            else:
                count_miss()
            serve(t, page, is_write)
            if not cached(page):
                raise CacheInvariantError(
                    f"policy {policy.name!r} left request t={t} "
                    f"(page={page}, write={is_write}) unserved"
                )
            check()
            if is_write:
                mark_dirty(page)
    else:
        hits = 0
        if record_events:
            set_time = ledger.set_time
            for t, (page, is_write) in enumerate(zip(pages, writes)):
                set_time(t)
                if cached(page):
                    hits += 1
                serve(t, page, is_write)
                if is_write:
                    mark_dirty(page)
        else:
            for t, (page, is_write) in enumerate(zip(pages, writes)):
                if cached(page):
                    hits += 1
                serve(t, page, is_write)
                if is_write:
                    mark_dirty(page)
        ledger.n_hits += hits
        ledger.n_misses += len(pages) - hits

    final = {page: (1 if dirty else 2) for page, dirty in cache.items()}
    return RunResult(
        policy=policy.name,
        cost=ledger.eviction_cost,
        n_requests=len(seq),
        n_hits=ledger.n_hits,
        n_misses=ledger.n_misses,
        n_evictions=ledger.n_evictions,
        n_fetches=ledger.n_fetches,
        cost_by_reason=dict(ledger.cost_by_reason),
        events=list(ledger.events),
        final_cache=final,
        extra=policy.extras(),
    )
