"""The verifying simulator.

The simulator owns the authoritative cache, drives a policy over a request
sequence, and — unlike a trusting replay loop — *verifies* the model's
invariants after every request:

* the request is actually served,
* the cache holds at most ``k`` copies / pages,
* (multi-level) at most one copy per page, levels in range.

A policy that cheats raises :class:`~repro.errors.CacheInvariantError`
immediately, with the failing time step in the message.  Verification adds
one dict lookup per request; pass ``validate=False`` on hot benchmark paths.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Policy, WritebackPolicy
from repro.core.cache import MultiLevelCache, WritebackCache
from repro.core.instance import MultiLevelInstance, WritebackInstance
from repro.core.ledger import CostLedger
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import CacheInvariantError
from repro.sim.metrics import RunResult

__all__ = ["simulate", "simulate_writeback"]


def simulate(
    instance: MultiLevelInstance,
    seq: RequestSequence,
    policy: Policy,
    *,
    seed: int | np.random.Generator | None = None,
    record_events: bool = False,
    validate: bool = True,
) -> RunResult:
    """Run ``policy`` over ``seq`` on ``instance`` from an empty cache.

    Returns a :class:`~repro.sim.metrics.RunResult` with the eviction cost
    (the paper's objective), hit statistics and, optionally, the full
    eviction event log.
    """
    instance.validate_sequence(seq.pages, seq.levels)
    ledger = CostLedger(record_events=record_events)
    cache = MultiLevelCache(instance, ledger)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    policy.bind(instance, cache, rng)

    pages = seq.pages.tolist()
    levels = seq.levels.tolist()
    for t, (page, level) in enumerate(zip(pages, levels)):
        ledger.set_time(t)
        if cache.serves(page, level):
            ledger.count_hit()
        else:
            ledger.count_miss()
        policy.serve(t, page, level)
        if validate:
            if not cache.serves(page, level):
                raise CacheInvariantError(
                    f"policy {policy.name!r} left request t={t} "
                    f"(page={page}, level={level}) unserved"
                )
            cache.check_invariants()

    return RunResult(
        policy=policy.name,
        cost=ledger.eviction_cost,
        n_requests=len(seq),
        n_hits=ledger.n_hits,
        n_misses=ledger.n_misses,
        n_evictions=ledger.n_evictions,
        n_fetches=ledger.n_fetches,
        cost_by_reason=dict(ledger.cost_by_reason),
        events=list(ledger.events),
        final_cache=cache.contents(),
        extra=policy.extras(),
    )


def simulate_writeback(
    instance: WritebackInstance,
    seq: WBRequestSequence,
    policy: WritebackPolicy,
    *,
    seed: int | np.random.Generator | None = None,
    record_events: bool = False,
    validate: bool = True,
) -> RunResult:
    """Run a writeback-aware policy over a read/write stream.

    The simulator — not the policy — marks a served write's page dirty,
    since dirtying is model semantics rather than a policy decision.
    """
    if len(seq) and seq.max_page() >= instance.n_pages:
        instance.check_page(seq.max_page())
    ledger = CostLedger(record_events=record_events)
    cache = WritebackCache(instance, ledger)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    policy.bind(instance, cache, rng)

    pages = seq.pages.tolist()
    writes = seq.writes.tolist()
    for t, (page, is_write) in enumerate(zip(pages, writes)):
        ledger.set_time(t)
        if page in cache:
            ledger.count_hit()
        else:
            ledger.count_miss()
        policy.serve(t, page, is_write)
        if validate:
            if page not in cache:
                raise CacheInvariantError(
                    f"policy {policy.name!r} left request t={t} "
                    f"(page={page}, write={is_write}) unserved"
                )
            cache.check_invariants()
        if is_write:
            cache.mark_dirty(page)

    final = {page: (1 if dirty else 2) for page, dirty in cache.items()}
    return RunResult(
        policy=policy.name,
        cost=ledger.eviction_cost,
        n_requests=len(seq),
        n_hits=ledger.n_hits,
        n_misses=ledger.n_misses,
        n_evictions=ledger.n_evictions,
        n_fetches=ledger.n_fetches,
        cost_by_reason=dict(ledger.cost_by_reason),
        events=list(ledger.events),
        final_cache=final,
        extra=policy.extras(),
    )
