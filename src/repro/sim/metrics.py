"""Run results and aggregation over seeds."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.ledger import EvictionRecord

__all__ = ["RunResult", "SeedAggregate", "aggregate_runs"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of simulating one policy over one request sequence."""

    policy: str
    cost: float
    n_requests: int
    n_hits: int
    n_misses: int
    n_evictions: int
    n_fetches: int
    cost_by_reason: dict[str, float] = field(default_factory=dict)
    events: list[EvictionRecord] = field(default_factory=list)
    final_cache: dict[int, int] = field(default_factory=dict)
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without cache changes."""
        return self.n_hits / self.n_requests if self.n_requests else 0.0

    @property
    def miss_rate(self) -> float:
        """Complement of :attr:`hit_rate`."""
        return 1.0 - self.hit_rate if self.n_requests else 0.0

    def __repr__(self) -> str:
        return (
            f"RunResult(policy={self.policy!r}, cost={self.cost:.3f}, "
            f"hit_rate={self.hit_rate:.3f}, evictions={self.n_evictions})"
        )


@dataclass(frozen=True)
class SeedAggregate:
    """Mean/stderr summary of a metric across seeded runs."""

    policy: str
    n_runs: int
    mean_cost: float
    std_cost: float
    min_cost: float
    max_cost: float
    mean_hit_rate: float

    @property
    def stderr_cost(self) -> float:
        """Standard error of the mean cost."""
        return self.std_cost / math.sqrt(self.n_runs) if self.n_runs > 1 else 0.0


def aggregate_runs(results: list[RunResult]) -> SeedAggregate:
    """Summarize repeated runs of the same policy (e.g. over seeds)."""
    if not results:
        raise ValueError("cannot aggregate an empty result list")
    names = {r.policy for r in results}
    if len(names) != 1:
        raise ValueError(f"mixed policies in aggregate: {sorted(names)}")
    costs = np.array([r.cost for r in results], dtype=np.float64)
    hits = np.array([r.hit_rate for r in results], dtype=np.float64)
    return SeedAggregate(
        policy=results[0].policy,
        n_runs=len(results),
        mean_cost=float(costs.mean()),
        std_cost=float(costs.std(ddof=1)) if len(results) > 1 else 0.0,
        min_cost=float(costs.min()),
        max_cost=float(costs.max()),
        mean_hit_rate=float(hits.mean()),
    )
