"""Autoscaling: spawn / drain / retire backends behind a live proxy.

The autoscaler closes the *capacity* loop the admission controller
leaves open: when pressure stays high even with tight admission, the
right answer is more serving capacity, not more shedding.  It watches
the same folded pressure scalar, runs the same
:class:`~repro.control.controller.HysteresisGovernor` (so it never
flaps either), and acts through live shard migration:

* **scale up** — ask the :class:`Spawner` for a fresh backend, then
  move shards onto it along the deterministic
  :meth:`~repro.cluster.ClusterMap.rebalance_moves` plan for the grown
  pool.  Every move is a full quiesce → checkpoint → ship → restore
  migration, so not a single ticket is dropped and the merged ledger
  stays ``==``-equal to the single-node reference.
* **scale down** — :func:`drain_backend` the most recently added
  backend (move *all* its shards back onto the survivors along the
  shrunk pool's plan), then let the spawner retire the process.

``Spawner`` is deliberately small — ``spawn() -> address`` and
``retire(address)`` — so tests can scale with in-process backends while
the CLI uses :class:`SubprocessSpawner` to launch real
``repro serve --listen`` processes.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from time import monotonic, sleep

from repro.cluster.proxy import ClusterProxy
from repro.control.controller import ControllerConfig, HysteresisGovernor
from repro.errors import ServiceConfigError
from repro.obs.registry import MetricsRegistry, null_registry

__all__ = [
    "Autoscaler",
    "SubprocessSpawner",
    "drain_backend",
]


def drain_backend(proxy: ClusterProxy, address: str) -> list[int]:
    """Live-migrate every shard off ``address``; returns the shards moved.

    The destination of each shard comes from the *shrunk* pool's
    :meth:`~repro.cluster.ClusterMap.rebalance_moves` plan — the same
    deterministic plan ``repro cluster rebalance`` follows — so a drain
    followed by a re-add is reproducible.  The drained backend stays up
    (and in the routing table's history) but owns nothing; retiring the
    process is the caller's business.
    """
    cmap = proxy.table.map
    if address not in cmap.backends:
        raise ServiceConfigError(
            f"backend {address!r} not in cluster "
            f"{list(cmap.backends)}")
    remaining = [b for b in cmap.backends if b != address]
    if not remaining:
        raise ServiceConfigError(
            f"cannot drain {address!r}: it is the last backend")
    moved = []
    for shard, source, target in cmap.rebalance_moves(remaining):
        if source != address:
            continue
        proxy.migrate(shard, target)
        moved.append(shard)
    return moved


class SubprocessSpawner:
    """Spawns real ``repro serve --listen`` backends as subprocesses.

    ``base_args`` is everything after ``repro serve`` *except*
    ``--listen`` (workload, policy, shards, seed...) — it must describe
    the same service configuration as the existing backends, since
    cluster correctness rests on every backend replicating the full
    shard set from identical seeds.
    """

    def __init__(self, base_args: list[str], *, host: str = "127.0.0.1",
                 startup_timeout_s: float = 30.0) -> None:
        self.base_args = list(base_args)
        self.host = host
        self.startup_timeout_s = startup_timeout_s
        self._procs: dict[str, subprocess.Popen] = {}

    def spawn(self) -> str:
        """Launch one backend; blocks until it reports its listen address."""
        cmd = [sys.executable, "-m", "repro.cli", "serve",
               *self.base_args, "--listen", f"{self.host}:0"]
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        deadline = monotonic() + self.startup_timeout_s
        address = None
        assert proc.stdout is not None
        while monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            if "listening on " in line:
                address = line.rsplit("listening on ", 1)[1].strip()
                break
        if address is None:
            proc.kill()
            raise ServiceConfigError(
                "spawned backend never reported a listen address")
        # Keep the pipe from filling up once we stop reading it.
        threading.Thread(target=_drain_pipe, args=(proc.stdout,),
                         daemon=True).start()
        self._procs[address] = proc
        return address

    def retire(self, address: str) -> None:
        """Terminate the backend at ``address`` (idempotent)."""
        proc = self._procs.pop(address, None)
        if proc is None:
            return
        proc.terminate()
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    def retire_all(self) -> None:
        for address in list(self._procs):
            self.retire(address)

    def __enter__(self) -> "SubprocessSpawner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.retire_all()


def _drain_pipe(stream) -> None:
    for _ in stream:
        pass


class Autoscaler:
    """Pressure-driven backend pool sizing through live migration.

    ``signals`` is a zero-argument callable returning an object with a
    ``pressure`` attribute (or a bare float) — normally the same
    :class:`~repro.obs.SignalReader` the admission controller polls,
    pointed at the federated cluster page.  ``spawner`` provides
    ``spawn() -> address`` / ``retire(address)``.

    ``step()`` runs one decision (exposed for deterministic tests);
    ``start()`` polls on a daemon thread.  Scale-ups add one backend and
    rebalance onto it; scale-downs drain the most recent addition and
    retire it.  Both paths are pure sequences of live migrations, so the
    zero-loss ledger guarantee of :func:`~repro.cluster.migrate_shard`
    carries through every scale event.
    """

    def __init__(self, proxy: ClusterProxy, spawner, signals, *,
                 config: ControllerConfig | None = None,
                 min_backends: int = 1, max_backends: int = 8,
                 registry: MetricsRegistry | None = None,
                 clock=monotonic) -> None:
        if not 1 <= min_backends <= max_backends:
            raise ServiceConfigError(
                "need 1 <= min_backends <= max_backends, got "
                f"[{min_backends}, {max_backends}]")
        self.proxy = proxy
        self.spawner = spawner
        self.signals = signals
        self.config = config if config is not None else ControllerConfig(
            interval_s=0.25, dwell_s=2.0)
        self.governor = HysteresisGovernor(self.config)
        self.min_backends = min_backends
        self.max_backends = max_backends
        self._clock = clock
        #: Backends this autoscaler added, most recent last (scale-down
        #: retires in LIFO order and never touches the seed pool).
        self.spawned: list[str] = []
        reg = registry if registry is not None else null_registry()
        self._m_backends = reg.gauge(
            "repro_ctl_backends", "Live backends behind the proxy")
        self._m_events = reg.counter(
            "repro_ctl_scale_events_total",
            "Completed scale events by direction", ("direction",))
        self._m_backends.set(len(self.proxy.table.map.backends))
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    @property
    def n_backends(self) -> int:
        return len(self.proxy.table.map.backends)

    def step(self, now: float | None = None) -> str | None:
        """One decision; returns ``"up"`` / ``"down"`` when it scaled."""
        now = self._clock() if now is None else now
        reading = self.signals()
        pressure = float(getattr(reading, "pressure", reading))
        decision = self.governor.decide(now, pressure)
        if decision is None:
            return None
        with self._lock:
            if decision == "tighten":
                return "up" if self._scale_up() else None
            return "down" if self._scale_down() else None

    def _scale_up(self) -> bool:
        cmap = self.proxy.table.map
        if len(cmap.backends) >= self.max_backends:
            return False
        address = self.spawner.spawn()
        pool = list(cmap.backends) + [address]
        for shard, source, target in cmap.rebalance_moves(pool):
            if target != address:
                continue
            self.proxy.migrate(shard, target)
        self.spawned.append(address)
        self._m_backends.set(len(self.proxy.table.map.backends))
        self._m_events.labels("up").inc()
        return True

    def _scale_down(self) -> bool:
        if not self.spawned:
            return False
        if self.n_backends <= self.min_backends:
            return False
        address = self.spawned.pop()
        drain_backend(self.proxy, address)
        self.spawner.retire(address)
        self._m_backends.set(len(self.proxy.table.map.backends))
        self._m_events.labels("down").inc()
        return True

    # -- loop lifecycle ----------------------------------------------------
    def start(self) -> "Autoscaler":
        if self._thread is not None:
            raise ServiceConfigError("autoscaler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-autoscale", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.step()
            except Exception:  # pragma: no cover - keep the loop alive
                sleep(self.config.interval_s)

    def __enter__(self) -> "Autoscaler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
