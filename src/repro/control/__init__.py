"""repro.control — the closed-loop control plane.

Three pieces sit on top of the serving and observability stacks:

* **Admission controller** (:mod:`repro.control.controller`) — polls
  :class:`~repro.obs.SignalReader` pressure and live-adjusts the net
  in-flight window and the service's soft queue limit through a banded,
  dwell-gated :class:`HysteresisGovernor` (AIMD moves, provably at most
  one direction flip per dwell window).  Every decision lands in the
  metrics plane (``repro_ctl_pressure``, ``repro_ctl_setpoint``,
  ``repro_ctl_moves_total``), so ``repro top`` shows the loop acting.
* **Autoscaler** (:mod:`repro.control.autoscale`) — the capacity half
  of the same loop: spawn a fresh ``repro serve`` backend and rebalance
  shards onto it on sustained overload, drain and retire it when load
  falls.  Every scale event is a sequence of live migrations, so the
  merged cluster ledger stays ``==``-equal to the single-node run.
* **Experience replay** (:mod:`repro.control.experience`) —
  :class:`ExperienceRecorder` captures served traffic per shard;
  :class:`ReplayEngine` re-serves it under alternative policies or
  configurations and diffs cost / latency / shed rate.  Replaying the
  recorded configuration reproduces the live eviction cost
  ``==``-exactly.

CLI entry points: ``repro serve --listen --controller``,
``repro serve --record``, ``repro replay run|compare|stats``,
``repro cluster drain``.
"""

from repro.control.autoscale import Autoscaler, SubprocessSpawner, drain_backend
from repro.control.controller import (
    Actuator,
    AdmissionController,
    ControllerConfig,
    HysteresisGovernor,
)
from repro.control.experience import (
    Experience,
    ExperienceRecorder,
    ReplayEngine,
    ReplayResult,
)

__all__ = [
    "Actuator",
    "AdmissionController",
    "Autoscaler",
    "ControllerConfig",
    "Experience",
    "ExperienceRecorder",
    "HysteresisGovernor",
    "ReplayEngine",
    "ReplayResult",
    "SubprocessSpawner",
    "drain_backend",
]
