"""Experience recording and replay: tuning decisions from served traffic.

An :class:`ExperienceRecorder` attached to a live
:class:`~repro.service.server.PagingService`
(:meth:`~repro.service.server.PagingService.attach_recorder`) captures
every admitted shard slice — ``(pages, levels)`` in per-shard arrival
order, which *is* the order the engines serve — plus the run's exact
configuration and final ledger.  :meth:`ExperienceRecorder.save` writes
a compact ``.npz`` (or grep-able ``.jsonl``) experience file;
:class:`ReplayEngine` re-serves it under the recorded or alternative
policies/configurations and diffs cost, latency percentiles and shed
rate.

The determinism contract this module is built on: per-shard request
order fully determines each shard engine's ledger.  Replaying the
recorded per-shard streams through freshly built engines with the same
policy, capacity split and seeds therefore reproduces the live run's
eviction cost ``==``-exactly — the acceptance gate E19 enforces.  An
*alternative* policy or cache size replays the same streams through a
different engine build, making A/B cost comparisons exact rather than
workload-resampled.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.tables import Table
from repro.core.instance import MultiLevelInstance
from repro.errors import ServiceConfigError
from repro.service.config import ServiceConfig
from repro.service.loadgen import LoadReport, run_load
from repro.service.profiles import RateProfile
from repro.service.server import PagingService

__all__ = [
    "Experience",
    "ExperienceRecorder",
    "ReplayEngine",
    "ReplayResult",
]

EXPERIENCE_VERSION = 1


def _meta_from_service(service: PagingService) -> dict:
    """The configuration + final-ledger facts replay needs, from a live
    service."""
    config = service.config
    snap = service.snapshot()
    return {
        "version": EXPERIENCE_VERSION,
        "policy": config.policy_name or config.policy_factory.__name__,
        "cache_size": int(config.instance.cache_size),
        "n_shards": int(config.n_shards),
        "seed": int(config.seed),
        "batch_size": int(config.batch_size),
        "live": {
            "n_requests": int(snap.n_requests),
            "n_hits": int(snap.n_hits),
            "n_misses": int(snap.n_misses),
            "n_evictions": sum(int(s.n_evictions) for s in snap.shards),
            "eviction_cost": float(snap.eviction_cost),
            "cost_by_level": {str(k): float(v)
                              for k, v in snap.cost_by_level().items()},
        },
    }


@dataclass
class Experience:
    """A recorded run: per-shard served streams + config + live ledger."""

    meta: dict
    weights: np.ndarray
    #: ``shards[i]`` is ``(pages, levels)`` in shard ``i``'s serve order.
    shards: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return sum(int(p.size) for p, _ in self.shards)

    def instance(self, cache_size: int | None = None) -> MultiLevelInstance:
        """The recorded instance (optionally with an alternative ``k``)."""
        k = self.meta["cache_size"] if cache_size is None else cache_size
        return MultiLevelInstance(k, self.weights)

    # -- persistence -------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write ``.npz`` (compact, default) or ``.jsonl`` (grep-able)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".jsonl":
            with path.open("w", encoding="utf-8") as fh:
                fh.write(json.dumps(
                    {"meta": self.meta,
                     "weights": self.weights.tolist()}) + "\n")
                for shard, (pages, levels) in enumerate(self.shards):
                    fh.write(json.dumps(
                        {"shard": shard,
                         "pages": pages.tolist(),
                         "levels": levels.tolist()}) + "\n")
            return path
        arrays: dict[str, np.ndarray] = {
            "meta": np.frombuffer(
                json.dumps(self.meta).encode("utf-8"), dtype=np.uint8),
            "weights": self.weights,
        }
        for shard, (pages, levels) in enumerate(self.shards):
            arrays[f"shard_{shard}_pages"] = pages
            arrays[f"shard_{shard}_levels"] = levels
        np.savez_compressed(path, **arrays)
        return path if path.suffix == ".npz" else path.with_name(
            path.name + ".npz")

    @classmethod
    def load(cls, path: str | Path) -> "Experience":
        """Load either on-disk format back into memory."""
        path = Path(path)
        if path.suffix == ".jsonl":
            with path.open("r", encoding="utf-8") as fh:
                header = json.loads(fh.readline())
                meta = header["meta"]
                shards: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                for line in fh:
                    rec = json.loads(line)
                    shards[int(rec["shard"])] = (
                        np.asarray(rec["pages"], dtype=np.int64),
                        np.asarray(rec["levels"], dtype=np.int64))
            n_shards = meta["n_shards"]
            return cls(
                meta=meta,
                weights=np.asarray(header["weights"], dtype=np.float64),
                shards=[shards.get(i, (np.empty(0, np.int64),
                                       np.empty(0, np.int64)))
                        for i in range(n_shards)])
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            weights = np.asarray(data["weights"], dtype=np.float64)
            shards = []
            for i in range(meta["n_shards"]):
                key = f"shard_{i}_pages"
                if key in data:
                    shards.append((
                        np.asarray(data[key], dtype=np.int64),
                        np.asarray(data[f"shard_{i}_levels"],
                                   dtype=np.int64)))
                else:
                    shards.append((np.empty(0, np.int64),
                                   np.empty(0, np.int64)))
        return cls(meta=meta, weights=weights, shards=shards)

    # -- derived views -----------------------------------------------------
    def merged(self) -> tuple[np.ndarray, np.ndarray]:
        """One interleaved stream preserving per-shard order.

        Chunks of ``batch_size`` are dealt round-robin across shards, so
        re-submitting the merged stream through the same router yields
        exactly the recorded per-shard sequences (pages hash back to
        their shard; relative order within a shard is preserved).
        """
        b = max(int(self.meta.get("batch_size", 512)), 1)
        cursors = [0] * len(self.shards)
        pages_out: list[np.ndarray] = []
        levels_out: list[np.ndarray] = []
        remaining = self.n_requests
        while remaining > 0:
            for shard, (pages, levels) in enumerate(self.shards):
                lo = cursors[shard]
                if lo >= pages.size:
                    continue
                hi = min(lo + b, pages.size)
                pages_out.append(pages[lo:hi])
                levels_out.append(levels[lo:hi])
                remaining -= hi - lo
                cursors[shard] = hi
        if not pages_out:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        return np.concatenate(pages_out), np.concatenate(levels_out)

    def stats(self) -> dict:
        """Shape summary of the recorded traffic (for ``replay stats``)."""
        level_counts: dict[int, int] = {}
        per_shard = []
        unique: set[int] = set()
        for pages, levels in self.shards:
            per_shard.append(int(pages.size))
            unique.update(np.unique(pages).tolist())
            for lv, count in zip(*np.unique(levels, return_counts=True)):
                level_counts[int(lv)] = level_counts.get(int(lv), 0) \
                    + int(count)
        return {
            "n_requests": self.n_requests,
            "n_shards": len(self.shards),
            "per_shard": per_shard,
            "unique_pages": len(unique),
            "level_counts": {str(k): v
                             for k, v in sorted(level_counts.items())},
            "meta": self.meta,
        }


class ExperienceRecorder:
    """Accumulates served shard slices from a live service.

    Attach with
    :meth:`~repro.service.server.PagingService.attach_recorder` *before*
    traffic; ``record`` is called from the ingest path (under the
    service lock in queued mode), so appends are cheap — arrays are
    copied once (the caller reuses slice views) and concatenated only at
    :meth:`experience` time.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ServiceConfigError(
                f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self._pages: list[list[np.ndarray]] = [[] for _ in range(n_shards)]
        self._levels: list[list[np.ndarray]] = [[] for _ in range(n_shards)]
        self._lock = threading.Lock()

    def record(self, shard: int, pages, levels) -> None:
        """Append one admitted slice (called by the service)."""
        with self._lock:
            self._pages[shard].append(np.array(pages, dtype=np.int64))
            self._levels[shard].append(np.array(levels, dtype=np.int64))

    @property
    def n_requests(self) -> int:
        with self._lock:
            return sum(int(a.size) for chunks in self._pages for a in chunks)

    def experience(self, service: PagingService) -> Experience:
        """Freeze the recording into an :class:`Experience`.

        Call after :meth:`~repro.service.server.PagingService.drain` so
        the captured ledger covers every recorded slice.
        """
        with self._lock:
            shards = [
                (np.concatenate(self._pages[i]) if self._pages[i]
                 else np.empty(0, np.int64),
                 np.concatenate(self._levels[i]) if self._levels[i]
                 else np.empty(0, np.int64))
                for i in range(self.n_shards)
            ]
        return Experience(
            meta=_meta_from_service(service),
            weights=np.asarray(service.config.instance.weights,
                               dtype=np.float64),
            shards=shards,
        )

    def save(self, path: str | Path, service: PagingService) -> Path:
        """``experience(service).save(path)`` in one call."""
        return self.experience(service).save(path)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one replay run."""

    policy: str
    cache_size: int
    eviction_cost: float
    cost_by_level: dict[str, float]
    n_hits: int
    n_misses: int
    n_evictions: int
    report: LoadReport | None = None

    @property
    def exact_cost_match(self) -> bool | None:
        """Whether this replay's cost ``==`` the live ledger (None when
        the experience carries no live cost)."""
        return None


class ReplayEngine:
    """Re-serves a recorded experience under alternative configurations.

    Two modes:

    * **ledger mode** (default) — per-shard streams are fed straight
      into freshly built shard engines; deterministic, fast, and
      ``==``-exact for the recorded configuration.
    * **paced mode** (``rate`` or ``profile`` given) — the merged stream
      is replayed through a full threaded service by the open-loop load
      generator, yielding latency percentiles and shed rates alongside
      the ledger.
    """

    def __init__(self, experience: Experience) -> None:
        self.experience = experience

    def _config(self, *, policy: str | None, cache_size: int | None,
                seed: int | None, queue_depth: int | None = None,
                ) -> ServiceConfig:
        meta = self.experience.meta
        return ServiceConfig.from_policy_name(
            policy or meta["policy"],
            self.experience.instance(cache_size),
            n_shards=meta["n_shards"],
            batch_size=meta["batch_size"],
            seed=meta["seed"] if seed is None else seed,
            **({"queue_depth": queue_depth} if queue_depth else {}),
        )

    def run(self, *, policy: str | None = None,
            cache_size: int | None = None, seed: int | None = None,
            rate: float | None = None,
            profile: RateProfile | None = None,
            on_overload: str = "retry") -> ReplayResult:
        """Replay once; see the class docstring for the two modes."""
        config = self._config(policy=policy, cache_size=cache_size,
                              seed=seed)
        service = PagingService(config)
        report: LoadReport | None = None
        if rate is None and profile is None:
            # Ledger mode: engines consume whole per-shard streams
            # directly (batch boundaries do not affect cost).
            for shard, (pages, levels) in enumerate(self.experience.shards):
                if pages.size:
                    service.engines[shard].process_batch(pages, levels)
        else:
            pages, levels = self.experience.merged()
            with service:
                report = run_load(
                    service, _MergedSequence(pages, levels),
                    rate=rate if rate is not None else 100_000.0,
                    batch_size=config.batch_size,
                    on_overload=on_overload,
                    profile=profile)
        snap = service.snapshot()
        return ReplayResult(
            policy=config.policy_name or config.policy_factory.__name__,
            cache_size=int(config.instance.cache_size),
            eviction_cost=float(snap.eviction_cost),
            cost_by_level={str(k): float(v)
                           for k, v in snap.cost_by_level().items()},
            n_hits=int(snap.n_hits),
            n_misses=int(snap.n_misses),
            n_evictions=sum(int(s.n_evictions) for s in snap.shards),
            report=report,
        )

    def matches_live(self, result: ReplayResult) -> bool:
        """``==``-exact cost equality between ``result`` and the live run."""
        live = self.experience.meta.get("live", {})
        return (result.eviction_cost == live.get("eviction_cost")
                and result.cost_by_level == live.get("cost_by_level"))

    def compare(self, policies, *, cache_size: int | None = None,
                rate: float | None = None,
                profile: RateProfile | None = None,
                on_overload: str = "retry") -> Table:
        """Replay under each policy and tabulate against the live run."""
        live = self.experience.meta.get("live", {})
        live_cost = float(live.get("eviction_cost", 0.0))
        paced = rate is not None or profile is not None
        columns = ["config", "cost", "vs live", "hits", "misses"]
        if paced:
            columns += ["p50 ms", "p99 ms", "shed %"]
        table = Table(columns, title="experience replay comparison")
        row = [f"live ({self.experience.meta['policy']})", live_cost, "—",
               live.get("n_hits", 0), live.get("n_misses", 0)]
        if paced:
            row += ["—", "—", "—"]
        table.add_row(*row)
        for name in policies:
            result = self.run(policy=name, cache_size=cache_size,
                              rate=rate, profile=profile,
                              on_overload=on_overload)
            delta = ("0 (exact)" if result.eviction_cost == live_cost
                     else f"{result.eviction_cost - live_cost:+.1f}")
            row = [f"{result.policy} (k={result.cache_size})",
                   result.eviction_cost, delta,
                   result.n_hits, result.n_misses]
            if paced:
                rep = result.report
                row += [rep.p50_ms, rep.p99_ms, 100.0 * rep.drop_fraction]
            table.add_row(*row)
        return table


class _MergedSequence:
    """The minimal RequestSequence view ``run_load`` needs."""

    __slots__ = ("pages", "levels")

    def __init__(self, pages: np.ndarray, levels: np.ndarray) -> None:
        self.pages = pages
        self.levels = levels

    def __len__(self) -> int:
        return int(self.pages.size)
