"""Closed-loop admission control with hysteresis.

The controller closes the loop the metrics plane opened: it polls a
:class:`~repro.obs.SignalReader` (single node or a federated cluster
page), folds the reading into one *pressure* scalar in ``[0, 1]``, and
moves the admission actuators — the net frontend's in-flight window and
the service's soft queue limit — through a banded, dwell-gated decision
rule:

* pressure above ``high_water`` → **tighten** (multiplicative decrease:
  back off fast when the system is drowning),
* pressure below ``low_water``  → **relax** (additive increase: reopen
  gradually once the system is demonstrably healthy),
* in between → hold.

The band alone is not enough to prevent flapping — a load oscillating
*across* the band would still reverse the knobs every poll — so
:class:`HysteresisGovernor` additionally refuses to reverse direction
within ``dwell_s`` of the last reversal.  The pinned property (see the
hypothesis suite): any pressure sequence, however adversarial, produces
at most one direction change per dwell window.

Every decision is observable: setpoints are exported as
``repro_ctl_setpoint{actuator=...}`` gauges, pressure as
``repro_ctl_pressure``, and moves as
``repro_ctl_moves_total{direction=...}`` — so ``repro top`` and the
federated page show the controller acting live.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import monotonic

from repro.errors import ServiceConfigError
from repro.obs.registry import MetricsRegistry, null_registry

__all__ = [
    "Actuator",
    "AdmissionController",
    "ControllerConfig",
    "HysteresisGovernor",
]


@dataclass(frozen=True)
class ControllerConfig:
    """The control loop's knobs, validated once at construction."""

    interval_s: float = 0.05
    high_water: float = 0.75
    low_water: float = 0.30
    dwell_s: float = 0.5
    #: Multiplicative tighten factor (AIMD's MD half).
    decrease: float = 0.5
    #: Additive relax step as a fraction of each actuator's range.
    increase_frac: float = 0.125

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ServiceConfigError(
                f"interval_s must be > 0, got {self.interval_s}")
        if not 0.0 <= self.low_water < self.high_water <= 1.0:
            raise ServiceConfigError(
                "need 0 <= low_water < high_water <= 1, got "
                f"low={self.low_water}, high={self.high_water}")
        if self.dwell_s < 0:
            raise ServiceConfigError(
                f"dwell_s must be >= 0, got {self.dwell_s}")
        if not 0.0 < self.decrease < 1.0:
            raise ServiceConfigError(
                f"decrease must be in (0, 1), got {self.decrease}")
        if not 0.0 < self.increase_frac <= 1.0:
            raise ServiceConfigError(
                f"increase_frac must be in (0, 1], got {self.increase_frac}")


class HysteresisGovernor:
    """Banded tighten/relax decisions that never flap.

    Pure decision state — no threads, no clock of its own — so property
    tests can drive it with synthetic time.  ``decide(now, pressure)``
    returns ``"tighten"``, ``"relax"`` or ``None``; a decision that
    *reverses* the previous direction is suppressed until ``dwell_s``
    has elapsed since the last reversal.  Repeated moves in the same
    direction are never suppressed (sustained overload keeps tightening).
    """

    __slots__ = ("config", "_direction", "_last_reversal")

    def __init__(self, config: ControllerConfig) -> None:
        self.config = config
        self._direction = 0  # +1 tightening, -1 relaxing, 0 never moved
        self._last_reversal: float | None = None

    def decide(self, now: float, pressure: float) -> str | None:
        """The move (if any) for one ``pressure`` reading at time ``now``."""
        if pressure > self.config.high_water:
            want = 1
        elif pressure < self.config.low_water:
            want = -1
        else:
            return None
        if want != self._direction:
            # A reversal: gated on the dwell since the previous reversal.
            if (self._direction != 0 and self._last_reversal is not None
                    and now - self._last_reversal < self.config.dwell_s):
                return None
            self._last_reversal = now
            self._direction = want
        return "tighten" if want == 1 else "relax"


class Actuator:
    """One integer admission knob under controller management.

    ``apply`` is the side-effecting setter (e.g.
    :meth:`~repro.net.NetServer.set_max_inflight`); the actuator owns the
    current setpoint and clamps every move into ``[lo, hi]``.
    """

    __slots__ = ("name", "lo", "hi", "value", "_apply")

    def __init__(self, name: str, *, lo: int, hi: int,
                 initial: int | None = None, apply=None) -> None:
        if not 1 <= lo <= hi:
            raise ServiceConfigError(
                f"actuator {name!r} needs 1 <= lo <= hi, got [{lo}, {hi}]")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.value = hi if initial is None else int(initial)
        if not lo <= self.value <= hi:
            raise ServiceConfigError(
                f"actuator {name!r} initial {self.value} outside "
                f"[{lo}, {hi}]")
        self._apply = apply

    def _set(self, value: int) -> bool:
        value = max(self.lo, min(self.hi, value))
        if value == self.value:
            return False
        self.value = value
        if self._apply is not None:
            self._apply(value)
        return True

    def tighten(self, factor: float) -> bool:
        """Multiplicative decrease; True when the setpoint moved."""
        return self._set(int(self.value * factor))

    def relax(self, frac: float) -> bool:
        """Additive increase by ``frac`` of the range; True when moved."""
        return self._set(self.value + max(1, int((self.hi - self.lo) * frac)))


class AdmissionController:
    """The control loop: sample signals, decide, move the actuators.

    ``signals`` is any zero-argument callable returning an object with a
    ``pressure`` attribute — normally a
    :class:`~repro.obs.SignalReader`.  ``step()`` runs one iteration
    (exposed for deterministic tests); ``start()`` runs it every
    ``interval_s`` on a daemon thread until ``stop()``.
    """

    def __init__(self, signals, actuators, *,
                 config: ControllerConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 clock=monotonic) -> None:
        if not actuators:
            raise ServiceConfigError(
                "the controller needs at least one actuator")
        names = [a.name for a in actuators]
        if len(set(names)) != len(names):
            raise ServiceConfigError(f"duplicate actuator name in {names}")
        self.config = config if config is not None else ControllerConfig()
        self.signals = signals
        self.actuators = list(actuators)
        self.governor = HysteresisGovernor(self.config)
        self._clock = clock
        reg = registry if registry is not None else null_registry()
        self._m_pressure = reg.gauge(
            "repro_ctl_pressure", "Folded control pressure in [0, 1]")
        self._m_setpoint = reg.gauge(
            "repro_ctl_setpoint",
            "Current admission setpoint per actuator", ("actuator",))
        self._m_moves = reg.counter(
            "repro_ctl_moves_total",
            "Setpoint adjustments by direction", ("direction",))
        for act in self.actuators:
            self._m_setpoint.labels(act.name).set(act.value)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.n_moves = 0

    def setpoints(self) -> dict[str, int]:
        """Current setpoint per actuator name."""
        return {a.name: a.value for a in self.actuators}

    def step(self, now: float | None = None) -> str | None:
        """One control iteration; returns the decision that moved a knob."""
        now = self._clock() if now is None else now
        reading = self.signals()
        pressure = float(getattr(reading, "pressure", reading))
        self._m_pressure.set(pressure)
        decision = self.governor.decide(now, pressure)
        if decision is None:
            return None
        moved = False
        for act in self.actuators:
            if decision == "tighten":
                changed = act.tighten(self.config.decrease)
            else:
                changed = act.relax(self.config.increase_frac)
            if changed:
                self._m_setpoint.labels(act.name).set(act.value)
                moved = True
        if not moved:
            return None
        self.n_moves += 1
        self._m_moves.labels(decision).inc()
        return decision

    # -- loop lifecycle ----------------------------------------------------
    def start(self) -> "AdmissionController":
        """Poll-and-act every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            raise ServiceConfigError("controller already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-ctl", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Stop the loop (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            self.step()

    def __enter__(self) -> "AdmissionController":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        points = ", ".join(f"{a.name}={a.value}" for a in self.actuators)
        state = "running" if self._thread is not None else "idle"
        return f"AdmissionController({state}, {points})"
