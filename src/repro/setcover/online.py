"""Online set cover: the fractional multiplicative-weights algorithm and
its randomized rounding (Alon, Awerbuch, Azar, Buchbinder, Naor).

This is the problem that writeback-aware caching *encodes* (Section 3 of
the paper); it is implemented here both as a standalone substrate and to
drive the lower-bound experiments.

* :class:`OnlineFractionalSetCover` — O(log m)-competitive fractional:
  when an uncovered element ``e`` arrives, the weights of the ``d`` sets
  containing it are inflated ``x_S <- x_S (1 + 1/d) + 1/(d m)`` until
  ``sum_{S ni e} x_S >= 1``.
* :class:`OnlineRandomizedSetCover` — rounds the fractional solution with
  per-set minimum-of-``Theta(log n)``-uniforms thresholds (a set enters
  the cover when its fraction passes its threshold), plus a deterministic
  patch that keeps the cover feasible on the low-probability miss —
  O(log m log n) expected sets in total.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InfeasibleError
from repro.setcover.instance import SetSystem
from repro.workloads.base import as_generator

__all__ = ["OnlineFractionalSetCover", "OnlineRandomizedSetCover"]


class OnlineFractionalSetCover:
    """Multiplicative-weights online fractional set cover."""

    def __init__(self, system: SetSystem) -> None:
        self.system = system
        self.x = np.zeros(system.n_sets, dtype=np.float64)

    @property
    def fractional_cost(self) -> float:
        """Current ``|x|_1``."""
        return float(self.x.sum())

    def cover_mass(self, element: int) -> float:
        """``sum_{S ni e} x_S`` for the element."""
        return float(self.x[self.system.sets_containing(element)].sum())

    def arrive(self, element: int) -> float:
        """Process an element arrival; returns the increase of ``|x|_1``."""
        containing = self.system.sets_containing(element)
        if containing.size == 0:
            raise InfeasibleError(f"element {element} is contained in no set")
        before = self.x.sum()
        d = containing.size
        m = self.system.n_sets
        while self.x[containing].sum() < 1.0:
            self.x[containing] = self.x[containing] * (1.0 + 1.0 / d) + 1.0 / (d * m)
        return float(self.x.sum() - before)


class OnlineRandomizedSetCover:
    """Fractional algorithm + threshold rounding; integral online cover."""

    def __init__(self, system: SetSystem, *, rounds: int | None = None,
                 rng=None) -> None:
        self.system = system
        self.fractional = OnlineFractionalSetCover(system)
        gen = as_generator(rng)
        n = system.n_elements
        r = rounds if rounds is not None else max(1, math.ceil(2.0 * math.log(n + 1)))
        # theta_S = min of r uniforms: P(x >= theta) = 1 - (1-x)^r ~ r*x.
        self.thresholds = gen.random((system.n_sets, r)).min(axis=1)
        self.cover: set[int] = set()
        self.n_patches = 0

    @property
    def cover_size(self) -> int:
        """Number of sets chosen so far."""
        return len(self.cover)

    def _covered(self, element: int) -> bool:
        return any(
            element in self.system.sets[i] for i in self.cover
        )

    def arrive(self, element: int) -> None:
        """Process an element arrival, keeping the integral cover feasible."""
        self.fractional.arrive(element)
        # Threshold rule: pick up every set whose fraction passed theta.
        passed = np.flatnonzero(self.fractional.x >= self.thresholds)
        self.cover.update(int(i) for i in passed)
        if not self._covered(element):
            # Low-probability patch: deterministically add the set with the
            # largest fraction among those containing the element.
            containing = self.system.sets_containing(element)
            best = int(containing[np.argmax(self.fractional.x[containing])])
            self.cover.add(best)
            self.n_patches += 1

    def run(self, elements) -> set[int]:
        """Process a whole element sequence; returns the final cover."""
        for e in elements:
            self.arrive(int(e))
        return set(self.cover)
