"""Hard online set cover instances (the Feige-Korman substitution).

Theorem 3.4 of the paper invokes Feige and Korman's reduction, which maps
an NP-hard offline set cover instance to a *family* of online request
sequences over one set system such that any (polynomial-time) online
algorithm must, in expectation over a random sequence from the family,
use ``Omega(c log N)`` sets while each sequence has an offline cover of
size ``c``.

Reproducing the NP-hardness machinery is out of scope (and pointless to
*run* — its strength is the reduction, which we implement verbatim in
:mod:`repro.setcover.reduction`).  What the experiments need is the same
*shape*: a set system plus a distribution over request sequences where

* every sequence has a small known offline cover (planted),
* an online algorithm cannot tell early which planted block a sequence
  will exercise, so it commits to extra sets.

:func:`hard_instance_family` delivers exactly that: a planted-cover
system (see :func:`repro.setcover.instance.planted_cover_system`) and
``q`` random interleavings of elements, each touching all planted blocks
in a random order with decoy-favoring prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.setcover.instance import SetSystem, planted_cover_system
from repro.workloads.base import as_generator

__all__ = ["HardFamily", "hard_instance_family"]


@dataclass(frozen=True)
class HardFamily:
    """A set system with a planted cover and request sequences over it."""

    system: SetSystem
    planted_cover: tuple[int, ...]
    sequences: tuple[tuple[int, ...], ...]

    @property
    def optimal_cover_size(self) -> int:
        """Size of the planted cover (an upper bound on every sequence's OPT)."""
        return len(self.planted_cover)


def hard_instance_family(
    n_elements: int,
    n_sets: int,
    cover_size: int,
    *,
    n_sequences: int = 8,
    requests_per_sequence: int | None = None,
    rng=None,
) -> HardFamily:
    """A planted-cover system with ``n_sequences`` random element orders.

    Each sequence samples elements so that every planted block is touched
    (keeping the planted cover necessary) but in an order that reveals the
    blocks only gradually — the property that makes the online problem
    strictly harder than the offline one.
    """
    gen = as_generator(rng)
    system, planted = planted_cover_system(
        n_elements, n_sets, cover_size, rng=gen
    )
    t = requests_per_sequence or max(n_elements // 2, cover_size)
    member = system.membership

    sequences: list[tuple[int, ...]] = []
    for _ in range(n_sequences):
        # Touch each planted block at least once, in random order, then
        # fill with uniform random elements; shuffle block reveal points.
        forced = [
            int(gen.choice(np.flatnonzero(member[b])))
            for b in gen.permutation(planted)
        ]
        fill = gen.integers(0, n_elements, size=max(0, t - len(forced))).tolist()
        seq = forced + fill
        order = gen.permutation(len(seq))
        sequences.append(tuple(int(seq[i]) for i in order))
    return HardFamily(
        system=system,
        planted_cover=tuple(planted),
        sequences=tuple(sequences),
    )
