"""Offline set cover: the greedy ln-n approximation and the LP optimum."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy.optimize import linprog

from repro.errors import InfeasibleError, SolverError
from repro.setcover.instance import SetSystem

__all__ = ["greedy_cover", "lp_cover_value"]


def greedy_cover(system: SetSystem, elements: Iterable[int]) -> list[int]:
    """Greedy set cover of the requested elements (ln n approximation).

    Repeatedly picks the set covering the most still-uncovered requested
    elements.  Raises :class:`InfeasibleError` if some element is in no set.
    """
    need = set(elements)
    for e in need:
        system.check_element(e)
    if not system.coverable(need):
        raise InfeasibleError("some requested element is contained in no set")
    member = system.membership
    uncovered = np.zeros(system.n_elements, dtype=bool)
    uncovered[list(need)] = True
    chosen: list[int] = []
    while uncovered.any():
        gains = (member & uncovered[None, :]).sum(axis=1)
        best = int(gains.argmax())
        if gains[best] == 0:  # unreachable given the coverable() check
            raise InfeasibleError("greedy stalled with uncovered elements")
        chosen.append(best)
        uncovered &= ~member[best]
    return chosen


def lp_cover_value(system: SetSystem, elements: Iterable[int]) -> float:
    """Optimal fractional set cover value ``|x|_1`` for the elements.

    Lower-bounds the integral optimum; the integrality gap can reach
    ``Theta(log n)``, which is exactly what Theorem 1.4's construction
    exploits.
    """
    need = sorted(set(elements))
    for e in need:
        system.check_element(e)
    if not need:
        return 0.0
    m = system.n_sets
    # Constraints: for each requested e, -sum_{S ni e} x_S <= -1.
    A = -system.membership[:, need].T.astype(np.float64)
    b = -np.ones(len(need))
    res = linprog(
        np.ones(m), A_ub=A, b_ub=b, bounds=(0, None), method="highs"
    )
    if not res.success:
        raise SolverError(f"set cover LP failed: {res.message}")
    return float(res.fun)
