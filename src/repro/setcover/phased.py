"""The Theorem 3.6 phased lower-bound construction.

Theorem 3.6 amplifies the one-shot reduction of Section 3: the RW-paging
request stream consists of ``h = k`` *phases*; in each phase the adversary
draws one of the online set cover request sequences ``rho_1 .. rho_q``
uniformly at random and plays Steps 1-3 of the reduction for it.  Because
Lemma 3.2's solution starts and ends at the all-write-pages cache state,
the offline cost telescopes to ``O(h * c * w)`` while the online algorithm
pays the (expected) online cover size *every phase*.

:func:`phased_reduction` builds that stream from a
:class:`~repro.setcover.hardness.HardFamily`; :func:`phase_covers` splits
an eviction trace back into per-phase committed covers (the per-phase
Lemma 3.3 objects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import RWPagingInstance
from repro.core.ledger import EvictionRecord
from repro.core.requests import RequestSequence
from repro.setcover.hardness import HardFamily
from repro.setcover.reduction import SetCoverReduction, reduce_to_rw_paging
from repro.workloads.base import as_generator

__all__ = ["PhasedReduction", "phased_reduction", "phase_covers"]


@dataclass(frozen=True)
class PhasedReduction:
    """An h-phase RW-paging stream drawn from a hard family."""

    family: HardFamily
    instance: RWPagingInstance
    sequence: RequestSequence
    phase_elements: tuple[tuple[int, ...], ...]
    phase_boundaries: tuple[int, ...]  # request index where each phase starts
    w: float
    repetitions: int

    @property
    def n_phases(self) -> int:
        """Number of phases ``h``."""
        return len(self.phase_elements)


def phased_reduction(
    family: HardFamily,
    n_phases: int,
    *,
    w: float | None = None,
    repetitions: int = 4,
    rng=None,
) -> PhasedReduction:
    """Concatenate ``n_phases`` randomly-drawn one-shot reductions.

    Every phase replays Steps 1-3 of the Section 3 reduction for a
    uniformly drawn sequence of the family; the instance (pages, weights,
    cache size ``k = m``) is shared across phases, so the paging stream is
    one long run against a single cache.
    """
    if n_phases < 1:
        raise ValueError(f"n_phases must be >= 1, got {n_phases}")
    gen = as_generator(rng)
    system = family.system
    chosen = [
        family.sequences[int(gen.integers(0, len(family.sequences)))]
        for _ in range(n_phases)
    ]
    parts: list[SetCoverReduction] = [
        reduce_to_rw_paging(system, elems, w=w, repetitions=repetitions)
        for elems in chosen
    ]
    boundaries: list[int] = [0]
    seq = parts[0].sequence
    for part in parts[1:]:
        boundaries.append(len(seq))
        seq = seq + part.sequence
    return PhasedReduction(
        family=family,
        instance=parts[0].instance,
        sequence=seq,
        phase_elements=tuple(chosen),
        phase_boundaries=tuple(boundaries),
        w=parts[0].w,
        repetitions=repetitions,
    )


def phase_covers(
    phased: PhasedReduction, events: list[EvictionRecord]
) -> list[set[int]]:
    """Per-phase committed covers from an eviction trace.

    For each phase, the sets whose *write copy* was evicted during that
    phase's request window — Lemma 3.3 says each must cover the phase's
    elements in any run that avoided the repetition penalty.
    """
    m = phased.family.system.n_sets
    bounds = list(phased.phase_boundaries) + [len(phased.sequence)]
    covers: list[set[int]] = [set() for _ in range(phased.n_phases)]
    for ev in events:
        if ev.page >= m or ev.level != 1:
            continue
        for i in range(phased.n_phases):
            if bounds[i] <= ev.time < bounds[i + 1]:
                covers[i].add(ev.page)
                break
    return covers
