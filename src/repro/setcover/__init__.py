"""Set cover substrate and the Section 3 lower-bound reduction."""

from repro.setcover.hardness import HardFamily, hard_instance_family
from repro.setcover.instance import (
    SetSystem,
    planted_cover_system,
    random_system,
)
from repro.setcover.offline import greedy_cover, lp_cover_value
from repro.setcover.online import (
    OnlineFractionalSetCover,
    OnlineRandomizedSetCover,
)
from repro.setcover.phased import (
    PhasedReduction,
    phase_covers,
    phased_reduction,
)
from repro.setcover.reduction import (
    SetCoverReduction,
    completeness_bound,
    default_repetitions,
    extract_cover,
    reduce_to_rw_paging,
)

__all__ = [
    "SetSystem",
    "planted_cover_system",
    "random_system",
    "greedy_cover",
    "lp_cover_value",
    "OnlineFractionalSetCover",
    "OnlineRandomizedSetCover",
    "HardFamily",
    "hard_instance_family",
    "PhasedReduction",
    "phase_covers",
    "phased_reduction",
    "SetCoverReduction",
    "completeness_bound",
    "default_repetitions",
    "extract_cover",
    "reduce_to_rw_paging",
]
