"""The Section 3 reduction: online set cover -> online RW-paging.

Given a set system ``(U, F)`` with ``|U| = n`` and ``|F| = m`` and an
online element sequence, build the RW-paging instance of the paper's
lower bound:

* cache size ``k = m``;
* a page per set (write copy cost ``w``, read copy cost 1) and a page per
  element (same costs);
* request stream:

  1. **Init** — a write request for every set page;
  2. per requested element ``e``:
     (a) the block ``rho(e)`` = read ``e`` then read every set *not*
     containing ``e``, repeated ``repetitions`` times,
     (b) a read request for every set page (the probe);
  3. **Terminate** — a write request for every set page.

Lemma 3.2 (completeness): a cover of size ``c`` yields RW cost at most
``c (w + 1) + 2 t``.  Lemma 3.3 (soundness): if the write pages evicted
between the two write phases do not form a valid cover of the requested
elements, some ``rho(e)`` round forces >= 1 eviction per repetition, i.e.
cost >= ``repetitions``.  The paper takes ``repetitions = m n w``; any
value exceeding every achievable "cheap" cost separates just as well, and
:func:`default_repetitions` picks the smallest comfortable one so the
experiment fits in a simulation budget (see DESIGN.md, substitution 4).

:func:`extract_cover` inverts the encoding: the sets whose write copy was
evicted during a run are exactly the cover the online algorithm committed
to — the object Lemma 3.3 reasons about.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.instance import RWPagingInstance
from repro.core.ledger import EvictionRecord
from repro.core.requests import RequestSequence
from repro.errors import InvalidInstanceError
from repro.setcover.instance import SetSystem

__all__ = [
    "SetCoverReduction",
    "default_repetitions",
    "reduce_to_rw_paging",
    "extract_cover",
    "completeness_bound",
]


def default_repetitions(system: SetSystem, w: float) -> int:
    """A simulation-friendly separation parameter.

    Soundness needs ``repetitions`` to exceed any non-covering solution's
    alternative cost; ``ceil(2 m w)`` comfortably dominates the
    completeness bound ``c (w + 1) + 2t <= m (w + 1) + 2n`` for the
    instance sizes the benchmarks use, while the paper's ``m n w`` keeps
    the proof airtight for arbitrary adversaries.
    """
    return int(math.ceil(2 * system.n_sets * w)) + 2 * system.n_elements


@dataclass(frozen=True)
class SetCoverReduction:
    """The RW-paging image of an online set cover instance.

    Set ``i`` is page ``i``; element ``e`` is page ``m + e``.
    """

    system: SetSystem
    elements: tuple[int, ...]
    instance: RWPagingInstance
    sequence: RequestSequence
    w: float
    repetitions: int

    def set_page(self, set_index: int) -> int:
        """Page id of a set's pages."""
        return set_index

    def element_page(self, element: int) -> int:
        """Page id of an element's pages."""
        return self.system.n_sets + element


def reduce_to_rw_paging(
    system: SetSystem,
    elements: Iterable[int],
    *,
    w: float | None = None,
    repetitions: int | None = None,
) -> SetCoverReduction:
    """Build the Section 3 RW-paging instance for an element sequence."""
    elems = tuple(int(e) for e in elements)
    for e in elems:
        system.check_element(e)
    m, n = system.n_sets, system.n_elements
    if w is None:
        w = float(n)  # the paper's choice in Theorem 3.6
    if w < 1:
        raise InvalidInstanceError(f"write cost w must be >= 1, got {w}")
    reps = repetitions if repetitions is not None else default_repetitions(system, w)
    if reps < 1:
        raise InvalidInstanceError(f"repetitions must be >= 1, got {reps}")

    n_pages = m + n
    write_w = np.full(n_pages, float(w))
    read_w = np.ones(n_pages)
    instance = RWPagingInstance(
        m, write_w, read_w, name=f"setcover-rw(m={m}, n={n}, w={w:g})"
    )

    pages: list[int] = []
    levels: list[int] = []

    def req(page: int, level: int) -> None:
        pages.append(page)
        levels.append(level)

    # Step 1: init writes.
    for s in range(m):
        req(s, 1)
    # Step 2: per element.
    for e in elems:
        avoiding = system.sets_avoiding(e).tolist()
        for _ in range(reps):
            req(m + e, 2)
            for s in avoiding:
                req(s, 2)
        for s in range(m):
            req(s, 2)
    # Step 3: terminate writes.
    for s in range(m):
        req(s, 1)

    seq = RequestSequence(np.array(pages, dtype=np.int64),
                          np.array(levels, dtype=np.int64))
    return SetCoverReduction(
        system=system,
        elements=elems,
        instance=instance,
        sequence=seq,
        w=float(w),
        repetitions=reps,
    )


def extract_cover(
    reduction: SetCoverReduction, events: Iterable[EvictionRecord]
) -> set[int]:
    """Sets whose write copy was evicted during the run (Lemma 3.3's D)."""
    m = reduction.system.n_sets
    return {
        ev.page
        for ev in events
        if ev.page < m and ev.level == 1
    }


def completeness_bound(reduction: SetCoverReduction, cover_size: int) -> float:
    """Lemma 3.2's offline cost bound: ``c (w + 1) + 2 t``."""
    return cover_size * (reduction.w + 1.0) + 2.0 * len(reduction.elements)
