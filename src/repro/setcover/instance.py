"""Set systems for the online set cover problem (Definition 3.1).

A :class:`SetSystem` holds a universe ``U = {0..n-1}`` and a family of
``m`` subsets, stored both as frozensets (algorithm-friendly) and as a
boolean membership matrix (vectorization-friendly).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import InvalidInstanceError
from repro.workloads.base import as_generator

__all__ = ["SetSystem", "random_system", "planted_cover_system"]


class SetSystem:
    """A set system ``(U, F)`` with ``|U| = n_elements`` and ``|F| = n_sets``."""

    __slots__ = ("_sets", "_membership", "n_elements")

    def __init__(self, n_elements: int, sets: Sequence[Iterable[int]]) -> None:
        if n_elements < 1:
            raise InvalidInstanceError("universe must be non-empty")
        if len(sets) < 1:
            raise InvalidInstanceError("family must contain at least one set")
        self.n_elements = int(n_elements)
        self._sets = tuple(frozenset(int(e) for e in s) for s in sets)
        for i, s in enumerate(self._sets):
            if not s:
                raise InvalidInstanceError(f"set {i} is empty")
            if min(s) < 0 or max(s) >= n_elements:
                raise InvalidInstanceError(f"set {i} references elements outside U")
        self._membership = np.zeros((len(self._sets), n_elements), dtype=bool)
        for i, s in enumerate(self._sets):
            self._membership[i, list(s)] = True
        self._membership.setflags(write=False)

    @property
    def n_sets(self) -> int:
        """Number of sets ``m`` in the family."""
        return len(self._sets)

    @property
    def sets(self) -> tuple[frozenset[int], ...]:
        """The family as frozensets."""
        return self._sets

    @property
    def membership(self) -> np.ndarray:
        """Read-only ``(m, n)`` boolean matrix; ``[i, e]`` iff ``e in S_i``."""
        return self._membership

    def sets_containing(self, element: int) -> np.ndarray:
        """Indices of sets containing ``element``."""
        self.check_element(element)
        return np.flatnonzero(self._membership[:, element])

    def sets_avoiding(self, element: int) -> np.ndarray:
        """Indices of sets *not* containing ``element`` (the paper's F-bar)."""
        self.check_element(element)
        return np.flatnonzero(~self._membership[:, element])

    def check_element(self, element: int) -> None:
        """Raise unless ``element`` is in the universe."""
        if not 0 <= element < self.n_elements:
            raise InvalidInstanceError(
                f"element {element} outside universe [0, {self.n_elements})"
            )

    def is_cover(self, cover: Iterable[int], elements: Iterable[int]) -> bool:
        """True if the chosen sets cover every requested element."""
        chosen = set(cover)
        covered: set[int] = set()
        for i in chosen:
            covered |= self._sets[i]
        return all(e in covered for e in elements)

    def coverable(self, elements: Iterable[int]) -> bool:
        """True if every requested element lies in at least one set."""
        any_cover = self._membership.any(axis=0)
        return all(any_cover[e] for e in elements)

    def __repr__(self) -> str:
        return f"SetSystem(n={self.n_elements}, m={self.n_sets})"


def random_system(
    n_elements: int, n_sets: int, *, density: float = 0.3, rng=None
) -> SetSystem:
    """A random set system where each set contains each element i.i.d.

    Elements left uncovered by chance are patched into a random set, so
    every element is coverable.
    """
    if not 0.0 < density <= 1.0:
        raise InvalidInstanceError(f"density must be in (0, 1], got {density}")
    gen = as_generator(rng)
    member = gen.random((n_sets, n_elements)) < density
    # Patch empty sets and uncovered elements.
    for i in range(n_sets):
        if not member[i].any():
            member[i, gen.integers(0, n_elements)] = True
    for e in np.flatnonzero(~member.any(axis=0)):
        member[gen.integers(0, n_sets), e] = True
    return SetSystem(n_elements, [np.flatnonzero(row) for row in member])


def planted_cover_system(
    n_elements: int,
    n_sets: int,
    cover_size: int,
    *,
    decoy_density: float = 0.25,
    rng=None,
) -> tuple[SetSystem, list[int]]:
    """A system with a planted optimal cover of known size.

    ``cover_size`` sets partition the universe (the planted cover); the
    remaining sets are random "decoys" that each cover a ``decoy_density``
    fraction of elements but are arranged to never complete a cover more
    cheaply (each decoy misses at least one planted block entirely).

    Returns ``(system, planted_cover_indices)``.  The planted cover's size
    is an upper bound on the offline optimum; for small instances the
    exact optimum can be confirmed with the LP / greedy.
    """
    if not 1 <= cover_size <= n_sets:
        raise InvalidInstanceError(
            f"cover_size must be in [1, {n_sets}], got {cover_size}"
        )
    gen = as_generator(rng)
    # Partition the universe into cover_size blocks.
    perm = gen.permutation(n_elements)
    blocks = np.array_split(perm, cover_size)
    sets: list[np.ndarray] = [np.sort(b) for b in blocks]
    for _ in range(n_sets - cover_size):
        # A decoy avoids one whole block so no small decoy-only cover exists.
        avoid = int(gen.integers(0, cover_size))
        allowed = np.concatenate(
            [blocks[j] for j in range(cover_size) if j != avoid]
        ) if cover_size > 1 else np.array([], dtype=np.int64)
        if allowed.size == 0:
            take = np.array([int(blocks[0][0])])
        else:
            size = max(1, int(round(decoy_density * allowed.size)))
            take = gen.choice(allowed, size=min(size, allowed.size), replace=False)
        sets.append(np.sort(take))
    planted = list(range(cover_size))
    return SetSystem(n_elements, sets), planted
