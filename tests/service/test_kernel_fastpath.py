"""ShardEngine's kernel fast path: when it engages, and that it's invisible.

``process_batch`` hands whole micro-batches to a columnar policy's
``serve_batch`` only when neither validation nor active tracing needs the
per-request loop.  The contract pinned here:

* fast path and the ``validate=True`` scalar fallback produce identical
  ledgers and cache contents,
* an attached (sampled) tracer forces the scalar loop and yields traces
  byte-identical to a scalar heap policy's run — the kernel must be
  indistinguishable in the observability plane too,
* inline / thread / process backends agree on the exact cost with kernel
  policies, like every other policy,
* checkpoint capture/restore round-trips the columnar state and refreshes
  the engine's cached ``serve_batch`` binding.
"""

import numpy as np
import pytest

from repro.algorithms import (
    HeapWaterFillingPolicy,
    KernelLandlordPolicy,
    KernelWaterFillingPolicy,
    LandlordRefPolicy,
    WaterFillingPolicy,
)
from repro.core.instance import WeightedPagingInstance
from repro.service import PagingService, ServiceConfig, run_load
from repro.service.engine import ShardEngine
from repro.sim import simulate
from repro.workloads import sample_weights, zipf_stream

KERNELS = [KernelLandlordPolicy, KernelWaterFillingPolicy]


def make_service(policy, n_shards=1, **kwargs):
    inst = WeightedPagingInstance(8, sample_weights(32, rng=0, high=16.0))
    return PagingService(ServiceConfig(
        instance=inst, policy_factory=policy, n_shards=n_shards, **kwargs))


def _workload(length=1500):
    return zipf_stream(32, length, alpha=0.9, rng=2)


class TestFastPathDispatch:
    @pytest.mark.parametrize("policy", KERNELS)
    def test_fast_path_engages_without_validation(self, policy):
        svc = make_service(policy)
        assert svc.engines[0]._serve_batch is not None
        svc.stop()

    def test_scalar_policies_have_no_fast_path(self):
        svc = make_service(HeapWaterFillingPolicy)
        assert svc.engines[0]._serve_batch is None
        svc.stop()

    @pytest.mark.parametrize("policy", KERNELS)
    @pytest.mark.parametrize("batch", [1, 7, 256])
    def test_fast_path_matches_validated_fallback(self, policy, batch):
        seq = _workload()
        ledgers = []
        for validate in (False, True):
            svc = make_service(policy, validate=validate)
            for lo in range(0, len(seq), batch):
                svc.submit_batch(seq.pages[lo:lo + batch],
                                 seq.levels[lo:lo + batch])
            engine = svc.engines[0]
            ledgers.append((engine.ledger, dict(engine.cache.items())))
            svc.stop()
        (fast, fast_cache), (slow, slow_cache) = ledgers
        assert fast.eviction_cost == slow.eviction_cost
        assert fast.n_hits == slow.n_hits
        assert fast.n_misses == slow.n_misses
        assert fast.n_evictions == slow.n_evictions
        assert fast_cache == slow_cache

    @pytest.mark.parametrize("kernel,oracle", [
        (KernelLandlordPolicy, LandlordRefPolicy),
        (KernelWaterFillingPolicy, WaterFillingPolicy),
    ])
    def test_fast_path_matches_simulate_oracle(self, kernel, oracle):
        inst = WeightedPagingInstance(8, sample_weights(32, rng=0, high=16.0))
        seq = _workload()
        ref = simulate(inst, seq, oracle(), seed=0)
        svc = make_service(kernel)
        for lo in range(0, len(seq), 128):
            svc.submit_batch(seq.pages[lo:lo + 128],
                             seq.levels[lo:lo + 128])
        assert svc.total_cost() == ref.cost
        ledger = svc.engines[0].ledger
        assert ledger.n_hits == ref.n_hits
        assert ledger.n_evictions == ref.n_evictions
        svc.stop()


class TestTracedFallback:
    def test_traces_byte_identical_to_scalar_policy(self, tmp_path):
        # An active tracer forces the scalar loop; the kernel's decisions
        # — and therefore the sampled trace bytes — must match the lazy
        # heap scalar exactly, shard by shard.
        seq = _workload(3000)
        paths = {}
        for tag, policy in (("kernel", KernelWaterFillingPolicy),
                            ("scalar", HeapWaterFillingPolicy)):
            svc = make_service(policy, n_shards=2, batch_size=128)
            paths[tag] = svc.enable_tracing(tmp_path / tag, sample=0.25,
                                            seed=7)
            with svc:
                report = run_load(svc, seq, rate=1e9, max_retries=200,
                                  retry_backoff=0.001)
                assert svc.drain(30.0)
            assert report.n_served == len(seq)
        for kernel_path, scalar_path in zip(paths["kernel"],
                                            paths["scalar"]):
            assert kernel_path.read_bytes() == scalar_path.read_bytes()
            assert kernel_path.stat().st_size > 0


class TestBackendAgreement:
    @pytest.mark.parametrize("policy", KERNELS)
    def test_backends_agree_on_exact_cost(self, policy):
        seq = _workload(4000)
        costs = {}
        for backend in ("inline", "thread", "process"):
            svc = make_service(policy, n_shards=2, batch_size=128,
                               backend=backend)
            if backend == "inline":
                for lo in range(0, len(seq), 128):
                    svc.submit_batch(seq.pages[lo:lo + 128],
                                     seq.levels[lo:lo + 128])
                costs[backend] = svc.total_cost()
                svc.stop()
            else:
                with svc:
                    run_load(svc, seq, rate=1e9, max_retries=200,
                             retry_backoff=0.001)
                    assert svc.drain(30.0)
                    costs[backend] = svc.total_cost()
        assert len(set(costs.values())) == 1, costs


class TestKernelCheckpoint:
    @pytest.mark.parametrize("policy_cls", KERNELS)
    def test_capture_restore_roundtrip_continues_identically(self, policy_cls):
        inst = WeightedPagingInstance(8, sample_weights(32, rng=0, high=16.0))
        seq = _workload(2000)
        cut = 1024

        def engine(policy):
            return ShardEngine(0, inst, policy, np.random.default_rng(0))

        source = engine(policy_cls())
        for lo in range(0, cut, 128):
            source.process_batch(seq.pages[lo:lo + 128],
                                 seq.levels[lo:lo + 128])
        payload, mark, t = source.capture_state()
        assert t == cut

        target = engine(policy_cls())
        target.restore_from(payload, mark)
        assert target.n_requests == cut
        # The cached fast-path binding must survive the restore.
        assert target._serve_batch is not None
        assert target._serve_batch.__self__ is target.policy
        # The restored policy shares the engine's live instance arrays.
        assert target.policy.instance is inst

        for eng in (source, target):
            for lo in range(cut, len(seq), 128):
                eng.process_batch(seq.pages[lo:lo + 128],
                                  seq.levels[lo:lo + 128])
        assert target.ledger.eviction_cost == source.ledger.eviction_cost
        assert target.ledger.n_hits == source.ledger.n_hits
        assert dict(target.cache.items()) == dict(source.cache.items())

    @pytest.mark.parametrize("policy_cls", KERNELS)
    def test_checkpointed_service_run_matches_clean(self, policy_cls):
        seq = _workload(3000)
        clean = make_service(policy_cls, n_shards=2, batch_size=128)
        clean.submit_batch(seq.pages, seq.levels)

        svc = make_service(policy_cls, n_shards=2, batch_size=128,
                           checkpoint_interval=400)
        with svc:
            report = run_load(svc, seq, rate=1e9, max_retries=200,
                              retry_backoff=0.001)
            assert svc.drain(30.0)
        assert report.n_served == len(seq)
        assert svc.total_cost() == clean.total_cost()
