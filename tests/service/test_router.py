"""Tests for deterministic shard routing and sharded-run reproducibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import LRUPolicy
from repro.core.instance import WeightedPagingInstance
from repro.errors import ServiceConfigError
from repro.service import PagingService, ServiceConfig, ShardRouter
from repro.workloads import sample_weights, zipf_stream


def make_config(n_shards=4, seed=0, **kwargs):
    inst = WeightedPagingInstance(16, sample_weights(64, rng=0, high=16.0))
    return ServiceConfig(instance=inst, policy_factory=LRUPolicy,
                         n_shards=n_shards, seed=seed, **kwargs)


class TestShardRouter:
    def test_every_page_owned_by_exactly_one_shard(self):
        router = ShardRouter(4)
        parts = router.page_partition(1000)
        all_pages = np.concatenate(parts)
        assert sorted(all_pages.tolist()) == list(range(1000))

    def test_scalar_and_vector_routing_agree(self):
        router = ShardRouter(5)
        pages = np.arange(200, dtype=np.int64)
        vec = router.shards_of(pages)
        assert [router.shard_of(int(p)) for p in pages] == vec.tolist()

    def test_split_preserves_arrival_order(self):
        router = ShardRouter(3)
        pages = np.array([7, 7, 2, 7, 2, 9, 9, 2], dtype=np.int64)
        levels = np.arange(8, dtype=np.int64) + 1
        for shard_pages, shard_levels in router.split(pages, levels):
            # Levels encode arrival order here, so each slice must ascend.
            assert shard_levels.tolist() == sorted(shard_levels.tolist())
            owners = {router.shard_of(int(p)) for p in shard_pages}
            assert len(owners) <= 1

    def test_single_shard_split_is_identity(self):
        router = ShardRouter(1)
        pages = np.array([3, 1, 2], dtype=np.int64)
        levels = np.ones(3, dtype=np.int64)
        [(p, lv)] = router.split(pages, levels)
        assert p.tolist() == [3, 1, 2]

    def test_hot_pages_spread_across_shards(self):
        # Generators emit ids in frequency order; the router must not alias
        # the hottest pages onto one shard the way `page % n` would.
        router = ShardRouter(4)
        hot = router.shards_of(np.arange(8, dtype=np.int64))
        assert len(set(hot.tolist())) >= 3

    def test_balance_of_page_partition(self):
        router = ShardRouter(4)
        sizes = [len(p) for p in router.page_partition(4096)]
        assert max(sizes) - min(sizes) < 4096 * 0.1

    def test_zero_shards_rejected(self):
        with pytest.raises(ServiceConfigError):
            ShardRouter(0)

    @given(st.integers(0, 2**31), st.integers(1, 16))
    @settings(max_examples=200, deadline=None)
    def test_routing_is_stable_and_in_range(self, page, n_shards):
        a = ShardRouter(n_shards).shard_of(page)
        b = ShardRouter(n_shards).shard_of(page)
        assert a == b
        assert 0 <= a < n_shards


class TestShardCapacities:
    def test_capacities_sum_to_k(self):
        config = make_config(n_shards=3)
        caps = config.shard_capacities()
        assert sum(caps) == 16
        assert max(caps) - min(caps) <= 1

    def test_more_shards_than_slots_rejected(self):
        with pytest.raises(ServiceConfigError):
            make_config(n_shards=17)

    def test_unknown_policy_rejected(self):
        inst = WeightedPagingInstance.uniform(8, 2)
        with pytest.raises(ServiceConfigError):
            ServiceConfig.from_policy_name("nonsense", inst)


class TestShardedDeterminism:
    """Same seed + trace => identical per-shard cost ledgers."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_inline_runs_reproduce(self, n_shards):
        seq = zipf_stream(64, 3000, alpha=0.9, rng=7)
        ledgers = []
        for _ in range(2):
            svc = PagingService(make_config(n_shards=n_shards, validate=True))
            for lo in range(0, len(seq), 256):
                svc.submit_batch(seq.pages[lo:lo + 256], seq.levels[lo:lo + 256])
            ledgers.append([
                (e.ledger.eviction_cost, e.ledger.n_hits, e.ledger.n_misses,
                 e.ledger.n_evictions, dict(e.ledger.cost_by_level))
                for e in svc.engines
            ])
        assert ledgers[0] == ledgers[1]

    def test_threaded_matches_inline(self):
        # Worker threads must not perturb per-shard order or cost.
        seq = zipf_stream(64, 3000, alpha=0.9, rng=3)

        def ledger_state(svc):
            return [(e.ledger.eviction_cost, e.ledger.n_hits,
                     e.ledger.n_misses) for e in svc.engines]

        inline = PagingService(make_config(n_shards=4))
        for lo in range(0, len(seq), 128):
            inline.submit_batch(seq.pages[lo:lo + 128], seq.levels[lo:lo + 128])

        with PagingService(make_config(n_shards=4)) as threaded:
            for lo in range(0, len(seq), 128):
                result = threaded.submit_batch(
                    seq.pages[lo:lo + 128], seq.levels[lo:lo + 128]
                )
                while not result.accepted:  # pragma: no cover - tiny queues
                    threaded.drain(0.01)
                    result = threaded.submit_batch(
                        seq.pages[lo:lo + 128], seq.levels[lo:lo + 128]
                    )
            threaded.drain()
            assert ledger_state(threaded) == ledger_state(inline)

    def test_different_seeds_may_differ_but_same_seed_never(self):
        # The seed feeds every shard policy RNG via SeedSequence spawning.
        seq = zipf_stream(64, 500, rng=1)

        def run(seed):
            svc = PagingService(make_config(n_shards=2, seed=seed))
            svc.submit_batch(seq.pages, seq.levels)
            return [e.ledger.eviction_cost for e in svc.engines]

        assert run(5) == run(5)
