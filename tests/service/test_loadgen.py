"""Load-generator round-trip tests (small, CI-friendly rates)."""

import pytest

from repro.algorithms import WaterFillingPolicy
from repro.core.instance import WeightedPagingInstance
from repro.service import PagingService, ServiceConfig, run_load
from repro.workloads import sample_weights, zipf_stream


def make_service(n_shards=4, **kwargs):
    inst = WeightedPagingInstance(16, sample_weights(128, rng=0, high=16.0))
    config = ServiceConfig(instance=inst, policy_factory=WaterFillingPolicy,
                           n_shards=n_shards, batch_size=128, **kwargs)
    return PagingService(config)


class TestRunLoad:
    def test_round_trip_serves_everything(self):
        seq = zipf_stream(128, 4000, alpha=0.9, rng=5)
        with make_service() as svc:
            report = run_load(svc, seq, rate=50_000.0)
            snap = svc.snapshot()
        assert report.n_served == 4000
        assert report.n_dropped_batches == 0
        assert report.drop_fraction == 0.0
        assert report.achieved_rate > 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        # Every shard participated and the counters are live.
        assert snap.n_requests == 4000
        assert all(s.n_requests > 0 for s in snap.shards)
        assert all(s.n_misses > 0 for s in snap.shards)
        assert snap.eviction_cost > 0

    def test_report_renders(self):
        seq = zipf_stream(128, 500, rng=6)
        with make_service(n_shards=2) as svc:
            report = run_load(svc, seq, rate=100_000.0)
        text = report.render()
        assert "target req/s" in text
        assert "p99 ms" in text

    def test_rate_pacing_slows_the_generator(self):
        # 1000 requests at 10k req/s must take at least ~0.1s.
        seq = zipf_stream(128, 1000, rng=7)
        with make_service(n_shards=2) as svc:
            report = run_load(svc, seq, rate=10_000.0, batch_size=100)
        assert report.duration_s >= 0.08
        assert report.achieved_rate <= 15_000.0

    def test_bad_rate_rejected(self):
        seq = zipf_stream(128, 10, rng=8)
        svc = make_service(n_shards=1)
        with pytest.raises(ValueError):
            run_load(svc, seq, rate=0.0)
        with pytest.raises(ValueError):
            run_load(svc, seq, rate=1000.0, max_retries=-1)

    def test_inline_service_also_works(self):
        # run_load does not require threaded mode.
        seq = zipf_stream(128, 600, rng=9)
        svc = make_service(n_shards=2)
        report = run_load(svc, seq, rate=1e9)
        assert report.n_served == 600
        assert svc.total_cost() > 0
