"""Observability wiring in the service: merge fidelity, latency windows,
trace determinism across execution modes, exposition metrics, spans."""

import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import WaterFillingPolicy
from repro.core.instance import WeightedPagingInstance
from repro.obs import MetricsRegistry, MetricsServer, validate_trace
from repro.service import LatencyHistogram, PagingService, ServiceConfig, ServiceLedger
from repro.workloads import sample_weights, zipf_stream


def make_config(n_shards=2, k=8, n=32, **kwargs):
    inst = WeightedPagingInstance(k, sample_weights(n, rng=0, high=16.0))
    return ServiceConfig(instance=inst, policy_factory=WaterFillingPolicy,
                         n_shards=n_shards, **kwargs)


def make_workload(n=32, length=3000):
    return zipf_stream(n, length, alpha=0.9, rng=2)


class TestServiceLedgerMerge:
    """Regression: CostLedger.merge alone drops the per-level dicts."""

    def test_merge_keeps_per_level_breakdowns(self):
        a, b = ServiceLedger(), ServiceLedger()
        a.charge_eviction(1, 1, 2.0, "capacity")
        a.charge_eviction(2, 2, 3.0, "capacity")
        b.charge_eviction(3, 1, 5.0, "capacity")
        b.charge_eviction(4, 3, 7.0, "capacity")
        a.merge(b)
        assert a.eviction_cost == pytest.approx(17.0)
        assert a.n_evictions == 4
        assert a.cost_by_level == pytest.approx({1: 7.0, 2: 3.0, 3: 7.0})
        assert a.evictions_by_level == {1: 2, 2: 1, 3: 1}
        # The source ledger is untouched.
        assert b.cost_by_level == pytest.approx({1: 5.0, 3: 7.0})

    def test_merge_plain_cost_ledger_keeps_base_counters(self):
        from repro.core.ledger import CostLedger

        a, plain = ServiceLedger(), CostLedger()
        a.charge_eviction(1, 1, 2.0)
        plain.charge_eviction(2, 2, 3.0)
        a.merge(plain)
        assert a.eviction_cost == pytest.approx(5.0)
        # A plain ledger has no per-level dicts to fold; a's stay as-is.
        assert a.cost_by_level == pytest.approx({1: 2.0})

    def test_shard_ledgers_merge_to_service_totals(self):
        seq = make_workload()
        svc = PagingService(make_config(n_shards=4))
        for lo in range(0, len(seq), 256):
            svc.submit_batch(seq.pages[lo:lo + 256], seq.levels[lo:lo + 256])
        merged = ServiceLedger()
        for engine in svc.engines:
            merged.merge(engine.ledger)
        snap = svc.snapshot()
        assert merged.eviction_cost == pytest.approx(snap.eviction_cost)
        assert merged.cost_by_level == pytest.approx(snap.cost_by_level())
        assert sum(merged.evictions_by_level.values()) == merged.n_evictions


class TestLatencyHistogramWindow:
    @given(
        xs=st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False), max_size=60),
        window=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_ring_keeps_exactly_the_last_window_samples(self, xs, window):
        hist = LatencyHistogram(window)
        for x in xs:
            hist.observe(x)
        expected = xs[-window:] if xs else []
        assert sorted(hist._samples) == sorted(expected)
        assert hist.count == len(xs)
        assert hist.total_seconds == pytest.approx(sum(xs))

    def test_percentile_single_and_batch_agree(self):
        hist = LatencyHistogram(64)
        for x in (0.1, 0.2, 0.3, 0.4, 0.5):
            hist.observe(x)
        p50, p95, p99 = hist.percentiles((50.0, 95.0, 99.0))
        assert hist.percentile(50.0) == pytest.approx(p50)
        assert hist.percentile(95.0) == pytest.approx(p95)
        assert hist.percentiles_ms() == pytest.approx(
            (1e3 * p50, 1e3 * p95, 1e3 * hist.percentile(99.0))
        )
        assert p99 >= p95 >= p50

    def test_empty_histogram(self):
        hist = LatencyHistogram(4)
        assert hist.percentile(50.0) == 0.0
        assert hist.percentiles_ms() == (0.0, 0.0, 0.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(0)

    def test_metric_child_receives_observations(self):
        reg = MetricsRegistry()
        child = reg.histogram("repro_lat_seconds", "", ("shard",),
                              buckets=(1.0,)).labels("0")
        hist = LatencyHistogram(4, metric=child)
        hist.observe(0.5)
        hist.observe(2.0)
        assert child.count == 2
        assert child.sum == pytest.approx(2.5)


class TestTraceDeterminismAcrossModes:
    """Satellite: same seed + workload => byte-identical per-shard JSONL
    whether the service runs inline or threaded."""

    @pytest.mark.parametrize("sample", [1.0, 0.35])
    def test_inline_and_threaded_traces_identical(self, tmp_path, sample):
        seq = make_workload(length=4000)
        blobs = {}
        for mode in ("inline", "threaded"):
            svc = PagingService(make_config(n_shards=3, seed=7))
            paths = svc.enable_tracing(tmp_path / mode, sample=sample, seed=7)
            if mode == "threaded":
                svc.start()
            for lo in range(0, len(seq), 128):
                result = svc.submit_batch(seq.pages[lo:lo + 128],
                                          seq.levels[lo:lo + 128])
                while not result.accepted:
                    svc.drain(0.01)
                    result = svc.submit_batch(seq.pages[lo:lo + 128],
                                              seq.levels[lo:lo + 128])
            svc.stop()
            blobs[mode] = [p.read_bytes() for p in paths]
            for p in paths:
                assert validate_trace(p).ok
        assert blobs["inline"] == blobs["threaded"]

    def test_enable_tracing_guards(self, tmp_path):
        from repro.errors import ServiceStateError

        seq = make_workload(length=64)
        svc = PagingService(make_config())
        svc.submit_batch(seq.pages[:64], seq.levels[:64])
        with pytest.raises(ServiceStateError):
            svc.enable_tracing(tmp_path)  # traffic already seen
        svc.stop()

        svc2 = PagingService(make_config())
        svc2.enable_tracing(tmp_path / "a")
        with pytest.raises(ServiceStateError):
            svc2.enable_tracing(tmp_path / "b")  # already enabled
        svc2.stop()

    def test_stop_closes_traces_with_end_record(self, tmp_path):
        seq = make_workload(length=256)
        svc = PagingService(make_config(n_shards=2))
        paths = svc.enable_tracing(tmp_path)
        svc.submit_batch(seq.pages, seq.levels)
        svc.stop()
        for p in paths:
            report = validate_trace(p)
            assert report.ok, report.render()
            assert report.n_by_type.get("end") == 1


class TestExpositionMetrics:
    def test_registry_counters_match_ledgers(self):
        reg = MetricsRegistry()
        seq = make_workload()
        svc = PagingService(make_config(n_shards=2, metrics_registry=reg))
        for lo in range(0, len(seq), 256):
            svc.submit_batch(seq.pages[lo:lo + 256], seq.levels[lo:lo + 256])
        snap = svc.snapshot()
        requests = reg.counter("repro_requests_total", "", ("shard",))
        evictions = reg.counter("repro_evictions_total", "",
                                ("shard", "level"))
        cost = reg.counter("repro_eviction_cost_total", "",
                           ("shard", "level"))
        for shard_snap in snap.shards:
            label = str(shard_snap.shard)
            assert requests.labels(label).value == shard_snap.n_requests
            for level, n in shard_snap.evictions_by_level.items():
                assert evictions.labels(label, str(level)).value == n
                assert cost.labels(label, str(level)).value == pytest.approx(
                    shard_snap.cost_by_level[level]
                )

    def test_http_scrape(self):
        reg = MetricsRegistry()
        seq = make_workload(length=1000)
        svc = PagingService(make_config(n_shards=2, metrics_registry=reg))
        svc.submit_batch(seq.pages, seq.levels)
        with MetricsServer(reg, port=0) as server:
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
            health = server.url.replace("/metrics", "/healthz")
            with urllib.request.urlopen(health, timeout=5) as resp:
                assert resp.read() == b"ok\n"
            missing = server.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(missing, timeout=5)
        assert "# TYPE repro_requests_total counter" in body
        assert 'repro_requests_total{shard="0"}' in body
        assert "repro_batch_latency_seconds_bucket" in body

    def test_null_registry_service_has_no_exposition(self):
        seq = make_workload(length=500)
        svc = PagingService(make_config())
        svc.submit_batch(seq.pages, seq.levels)
        assert svc.registry.render() == ""


class TestSnapshotSpans:
    def test_snapshot_carries_phase_spans(self):
        seq = make_workload()
        svc = PagingService(make_config(n_shards=2))
        for lo in range(0, len(seq), 256):
            svc.submit_batch(seq.pages[lo:lo + 256], seq.levels[lo:lo + 256])
        snap = svc.snapshot()
        merged = snap.merged_spans()
        assert {"ingest", "route", "evict", "snapshot"} <= set(merged)
        n_batches = (len(seq) + 255) // 256
        assert merged["ingest"].n == n_batches
        assert merged["route"].n == n_batches
        # Each shard times its own evict span, once per processed batch.
        assert merged["evict"].n == sum(s.n_batches for s in snap.shards)
        for s in snap.shards:
            assert s.spans["evict"].total_s >= 0.0

    def test_render_includes_and_excludes_spans(self):
        seq = make_workload(length=500)
        svc = PagingService(make_config())
        svc.submit_batch(seq.pages, seq.levels)
        snap = svc.snapshot()
        full = snap.render()
        assert "phase spans" in full
        assert "evict s" in full
        deterministic = snap.render(include_latency=False)
        assert "phase spans" not in deterministic
        assert "p95" not in deterministic
        assert "evict s" not in deterministic
        # Explicit override: latency without spans.
        assert "phase spans" not in snap.render(include_spans=False)

    def test_phase_table_columns(self):
        seq = make_workload(length=500)
        svc = PagingService(make_config())
        svc.submit_batch(seq.pages, seq.levels)
        table = svc.snapshot().phase_table()
        assert table.columns == ["phase", "count", "total s", "mean ms",
                                 "min ms", "max ms", "stddev ms"]
        assert table.rows
