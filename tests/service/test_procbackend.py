"""Process-backend semantics: parity with inline/thread, SIGKILL chaos,
and the stricter lifecycle rules the pipe protocol imposes."""

import pytest

from repro.algorithms import LandlordPolicy
from repro.core.instance import WeightedPagingInstance
from repro.errors import ServiceConfigError, ServiceStateError
from repro.faults import FaultPlan
from repro.service import PagingService, ServiceConfig, run_load
from repro.workloads import sample_weights, zipf_stream

N_SHARDS = 2
N_REQUESTS = 4000


def make_service(**kwargs):
    inst = WeightedPagingInstance(16, sample_weights(64, rng=0, high=16.0))
    config = ServiceConfig(instance=inst, policy_factory=LandlordPolicy,
                           n_shards=N_SHARDS, batch_size=128, **kwargs)
    return PagingService(config)


def make_workload():
    return zipf_stream(64, N_REQUESTS, alpha=0.9, rng=1)


def run_to_completion(backend, **kwargs):
    seq = make_workload()
    svc = make_service(backend=backend, **kwargs)
    if backend == "inline":
        svc.submit_batch(seq.pages, seq.levels)
        key = (svc.total_cost(), *_counts(svc))
        svc.stop()
        return key
    with svc:
        report = run_load(svc, seq, rate=1e9, max_retries=200,
                          retry_backoff=0.001)
        assert svc.drain(30.0)
        assert report.n_served == N_REQUESTS
        return (svc.total_cost(), *_counts(svc))


def _counts(svc):
    snap = svc.snapshot()
    return (snap.n_requests, snap.n_hits, snap.n_misses,
            sum(s.n_evictions for s in snap.shards))


class TestBackendParity:
    def test_all_backends_bit_identical(self):
        """Same workload, same seeds: the execution backend must be
        unobservable in the ledgers — costs compared with ==, not approx."""
        inline = run_to_completion("inline")
        thread = run_to_completion("thread")
        process = run_to_completion("process")
        assert inline == thread == process
        assert inline[1] == N_REQUESTS

    def test_snapshot_shape_matches_thread_backend(self):
        seq = make_workload()
        svc = make_service(backend="process")
        with svc:
            run_load(svc, seq, rate=1e9, max_retries=200)
            assert svc.drain(30.0)
            snap = svc.snapshot()
        assert len(snap.shards) == N_SHARDS
        assert sum(s.n_requests for s in snap.shards) == N_REQUESTS
        for shard in snap.shards:
            assert shard.n_hits + shard.n_misses == shard.n_requests
            assert shard.p50_ms >= 0.0


class TestProcessChaos:
    def test_sigkill_mid_loadgen_recovers_byte_identically(self, tmp_path):
        """SIGKILL the worker *processes* mid-run: recovery must reproduce
        the fault-free ledgers and decision traces byte for byte."""

        def traced(tag, **kwargs):
            seq = make_workload()
            svc = make_service(backend="process", checkpoint_interval=500,
                               max_restarts=5, **kwargs)
            paths = svc.enable_tracing(tmp_path / tag, sample=0.2, seed=7)
            with svc:
                report = run_load(svc, seq, rate=1e9, max_retries=400,
                                  retry_backoff=0.001)
                assert svc.drain(30.0)
            assert report.n_served == N_REQUESTS
            return svc, paths

        clean_svc, clean_paths = traced("clean")
        chaos_svc, chaos_paths = traced(
            "chaos", fault_plan=FaultPlan.parse("kill:0@600,kill:1@1500"))

        snap = chaos_svc.snapshot()
        assert snap.n_worker_restarts >= 2
        assert snap.n_failed_shards == 0
        assert chaos_svc.total_cost() == clean_svc.total_cost()
        for clean, chaos in zip(clean_paths, chaos_paths):
            assert chaos.read_bytes() == clean.read_bytes()
            assert clean.stat().st_size > 0

    def test_unrecoverable_kill_marks_shard_failed(self):
        seq = make_workload()
        svc = make_service(backend="process", checkpoint_interval=400,
                           max_restarts=0,
                           fault_plan=FaultPlan.parse("kill:1@500"))
        with svc:
            report = run_load(svc, seq, rate=1e9, max_retries=20,
                              drain_timeout=30.0)
        assert report.n_served < N_REQUESTS
        assert svc.snapshot().n_failed_shards == 1


class TestLifecycleRules:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceConfigError, match="backend"):
            make_service(backend="fibers")

    def test_submit_before_start_rejected(self):
        seq = make_workload()
        svc = make_service(backend="process")
        with pytest.raises(ServiceStateError, match="start"):
            svc.submit_batch(seq.pages[:128], seq.levels[:128])
        svc.stop()

    def test_tracing_after_start_rejected(self, tmp_path):
        svc = make_service(backend="process")
        with svc:
            with pytest.raises(ServiceStateError, match="before start"):
                svc.enable_tracing(tmp_path / "late", sample=1.0, seed=0)

    def test_inline_start_is_noop_and_serves(self):
        seq = make_workload()
        svc = make_service(backend="inline")
        with svc:  # start() is a no-op; submissions still serve inline
            svc.submit_batch(seq.pages, seq.levels)
            assert svc.snapshot().n_requests == N_REQUESTS
