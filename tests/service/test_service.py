"""Service engine parity with the simulator, metrics snapshots, batching."""

import numpy as np
import pytest

from repro.algorithms import LRUPolicy, WaterFillingPolicy
from repro.core.instance import WeightedPagingInstance
from repro.errors import CacheInvariantError, ServiceStateError
from repro.service import MicroBatcher, PagingService, ServiceConfig
from repro.service.metrics import LatencyHistogram, ServiceLedger
from repro.sim import simulate
from repro.workloads import geometric_instance, multilevel_stream, sample_weights, zipf_stream


def make_service(n_shards=1, policy=WaterFillingPolicy, k=8, n=32, **kwargs):
    inst = WeightedPagingInstance(k, sample_weights(n, rng=0, high=16.0))
    config = ServiceConfig(instance=inst, policy_factory=policy,
                           n_shards=n_shards, **kwargs)
    return PagingService(config)


class TestEngineSimulatorParity:
    """A 1-shard service is exactly the verifying simulator, streamed."""

    @pytest.mark.parametrize("policy", [LRUPolicy, WaterFillingPolicy])
    @pytest.mark.parametrize("batch", [1, 7, 256])
    def test_cost_matches_simulate(self, policy, batch):
        inst = WeightedPagingInstance(8, sample_weights(32, rng=0, high=16.0))
        seq = zipf_stream(32, 1500, alpha=0.9, rng=2)
        ref = simulate(inst, seq, policy(), seed=0)

        svc = make_service(policy=policy, validate=True)
        for lo in range(0, len(seq), batch):
            svc.submit_batch(seq.pages[lo:lo + batch], seq.levels[lo:lo + batch])
        ledger = svc.engines[0].ledger
        assert ledger.eviction_cost == pytest.approx(ref.cost)
        assert ledger.n_hits == ref.n_hits
        assert ledger.n_misses == ref.n_misses
        assert ledger.n_evictions == ref.n_evictions

    def test_multilevel_service(self):
        inst = geometric_instance(24, 6, 3)
        seq = multilevel_stream(24, 3, 800, rng=4)
        config = ServiceConfig(instance=inst, policy_factory=WaterFillingPolicy,
                               n_shards=2, validate=True)
        svc = PagingService(config)
        svc.submit_batch(seq.pages, seq.levels)
        snap = svc.snapshot()
        assert snap.n_requests == 800
        assert set(snap.cost_by_level()) <= {1, 2, 3}
        assert snap.eviction_cost > 0

    def test_validation_catches_cheating_policy(self):
        class NoOpPolicy(LRUPolicy):
            def serve(self, t, page, level):
                pass  # never fetches anything

        svc = make_service(policy=NoOpPolicy, validate=True)
        with pytest.raises(CacheInvariantError, match="unserved"):
            svc.submit_batch(np.array([0, 1]), np.array([1, 1]))

    def test_out_of_range_pages_rejected_at_ingest(self):
        svc = make_service()
        with pytest.raises(Exception):
            svc.submit_batch(np.array([10_000]), np.array([1]))


class TestServiceLifecycle:
    def test_submit_after_stop_raises(self):
        svc = make_service()
        svc.stop()
        with pytest.raises(ServiceStateError):
            svc.submit_batch(np.array([0]), np.array([1]))

    def test_double_start_raises(self):
        svc = make_service()
        svc.start()
        try:
            with pytest.raises(ServiceStateError):
                svc.start()
        finally:
            svc.stop()

    def test_stop_is_idempotent(self):
        svc = make_service()
        svc.stop()
        svc.stop()

    def test_worker_error_surfaces_on_drain(self):
        class ExplodingPolicy(LRUPolicy):
            def serve(self, t, page, level):
                raise RuntimeError("boom")

        with pytest.raises(ServiceStateError, match="boom"):
            with make_service(policy=ExplodingPolicy) as svc:
                ticket = svc.submit_batch(np.array([0]), np.array([1]))
                ticket.wait(5.0)
                svc.drain(5.0)

    def test_empty_batch_is_accepted_and_complete(self):
        svc = make_service()
        ticket = svc.submit_batch(np.array([], dtype=np.int64),
                                  np.array([], dtype=np.int64))
        assert ticket.accepted and ticket.done and ticket.n_requests == 0


class TestMetricsSnapshot:
    def test_golden_snapshot(self):
        """Fixed trace + LRU => bit-deterministic counters and rendering."""
        inst = WeightedPagingInstance(2, np.array([1.0, 2.0, 4.0, 8.0]))
        config = ServiceConfig(instance=inst, policy_factory=LRUPolicy,
                               n_shards=1, validate=True)
        svc = PagingService(config)
        # k=2: [0,1] fill, 2 evicts 0, 0 evicts 1, 1 evicts 2, 1 hits.
        svc.submit_batch(np.array([0, 1, 2, 0, 1, 1]), np.ones(6, dtype=np.int64))
        snap = svc.snapshot()
        shard = snap.shards[0]
        assert (shard.n_requests, shard.n_hits, shard.n_misses) == (6, 1, 5)
        assert shard.n_evictions == 3
        assert shard.eviction_cost == pytest.approx(1.0 + 2.0 + 4.0)
        assert shard.evictions_by_level == {1: 3}
        expected = (
            "== service snapshot ==\n"
            "shard  k  requests  hits  misses  evictions  evict cost  hit rate\n"
            "-----------------------------------------------------------------\n"
            "0      2  6         1     5       3          7.000       0.167   \n"
            "total  2  6         1     5       3          7.000       0.167   \n"
            "overloaded batches: 0\n"
        )
        assert snap.render(include_latency=False) == expected

    def test_snapshot_aggregates_across_shards(self):
        svc = make_service(n_shards=4, k=8, n=64)
        seq = zipf_stream(64, 2000, rng=9)
        svc.submit_batch(seq.pages, seq.levels)
        snap = svc.snapshot()
        assert snap.n_requests == 2000
        assert snap.n_hits == sum(s.n_hits for s in snap.shards)
        assert snap.eviction_cost == pytest.approx(
            sum(s.eviction_cost for s in snap.shards)
        )
        assert all(s.n_requests > 0 for s in snap.shards)
        assert 0.0 < snap.hit_rate < 1.0

    def test_latency_histogram_percentiles(self):
        hist = LatencyHistogram(window=100)
        for v in range(1, 101):
            hist.observe(v / 1000.0)
        assert hist.count == 100
        p50, p95, p99 = hist.percentiles_ms()
        assert 45.0 <= p50 <= 55.0
        assert 90.0 <= p95 <= 100.0
        assert p95 <= p99 <= 100.0

    def test_latency_histogram_window_rotates(self):
        hist = LatencyHistogram(window=4)
        for v in [1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0]:
            hist.observe(v)
        assert hist.count == 8
        assert hist.percentile(50) == pytest.approx(5.0)

    def test_service_ledger_levels(self):
        ledger = ServiceLedger()
        ledger.charge_eviction(0, 1, 4.0)
        ledger.charge_eviction(1, 2, 1.5)
        ledger.charge_eviction(2, 1, 2.0)
        assert ledger.cost_by_level == {1: 6.0, 2: 1.5}
        assert ledger.evictions_by_level == {1: 2, 2: 1}
        assert ledger.eviction_cost == pytest.approx(7.5)


class TestMicroBatcher:
    def test_flushes_at_batch_size(self):
        batches = []
        mb = MicroBatcher(3, 60.0, lambda p, lv: batches.append((p, lv)) or "ok")
        assert mb.offer(1) is None
        assert mb.offer(2) is None
        assert mb.offer(3) == "ok"
        assert len(batches) == 1
        assert batches[0][0].tolist() == [1, 2, 3]
        assert len(mb) == 0

    def test_flushes_on_interval(self):
        clock = iter([0.0, 0.0, 10.0, 10.0]).__next__
        batches = []
        mb = MicroBatcher(100, 5.0, lambda p, lv: batches.append(p) or "ok",
                          clock=clock)
        assert mb.offer(1) is None
        assert mb.offer(2) == "ok"  # oldest waited 10s > 5s
        assert batches[0].tolist() == [1, 2]

    def test_overloaded_flush_keeps_buffer(self):
        class Rejected:
            accepted = False

        mb = MicroBatcher(10, 60.0, lambda p, lv: Rejected())
        mb.offer(1)
        result = mb.flush()
        assert not result.accepted
        assert len(mb) == 1  # retryable

    def test_empty_flush_returns_none(self):
        mb = MicroBatcher(10, 60.0, lambda p, lv: "ok")
        assert mb.flush() is None
