"""Backpressure: bounded queues reject with Overloaded, never grow past the limit."""

import threading

import numpy as np
import pytest

from repro.algorithms import LRUPolicy
from repro.core.instance import WeightedPagingInstance
from repro.service import Overloaded, PagingService, ServiceConfig
from repro.workloads import zipf_stream


class GatedLRUPolicy(LRUPolicy):
    """LRU whose first serve blocks until the test opens the gate.

    Lets a test freeze the single worker of a one-shard service so the
    bounded queue fills deterministically.
    """

    gate = threading.Event()

    def serve(self, t, page, level):
        GatedLRUPolicy.gate.wait(10.0)
        super().serve(t, page, level)


def make_service(policy, queue_depth=4, n_shards=1):
    inst = WeightedPagingInstance.uniform(32, 8)
    config = ServiceConfig(instance=inst, policy_factory=policy,
                           n_shards=n_shards, queue_depth=queue_depth)
    return PagingService(config)


class TestBackpressure:
    def test_full_queue_returns_overloaded_and_stays_bounded(self):
        GatedLRUPolicy.gate.clear()
        depth = 4
        svc = make_service(GatedLRUPolicy, queue_depth=depth)
        batch = np.arange(8, dtype=np.int64)
        ones = np.ones(8, dtype=np.int64)
        try:
            svc.start()
            accepted, rejected = 0, 0
            # Worker is gated: after `depth` queued batches (plus the one
            # the worker holds), every further submit must be rejected.
            for _ in range(depth + 20):
                result = svc.submit_batch(batch, ones)
                if result.accepted:
                    accepted += 1
                else:
                    rejected += 1
                    assert isinstance(result, Overloaded)
                    assert result.queue_depth == depth
                assert svc._queues[0].qsize() <= depth
            assert accepted <= depth + 1
            assert rejected >= 19
            assert svc.n_overloaded == rejected
            assert svc.snapshot().n_overloaded == rejected
        finally:
            GatedLRUPolicy.gate.set()
            svc.stop(10.0)
        # After the gate opens, every *accepted* batch was served — nothing lost.
        assert svc.engines[0].n_requests == accepted * 8

    def test_rejected_batch_leaves_no_partial_state(self):
        GatedLRUPolicy.gate.clear()
        svc = make_service(GatedLRUPolicy, queue_depth=1, n_shards=2)
        seq = zipf_stream(32, 64, rng=0)
        try:
            svc.start()
            results = [
                svc.submit_batch(seq.pages[lo:lo + 8], seq.levels[lo:lo + 8])
                for lo in range(0, 64, 8)
            ]
            n_accepted = sum(1 for r in results if r.accepted)
            assert any(not r.accepted for r in results)
        finally:
            GatedLRUPolicy.gate.set()
            svc.stop(10.0)
        # All-or-nothing: total served is an exact multiple of the batch size.
        served = sum(e.n_requests for e in svc.engines)
        assert served == n_accepted * 8

    def test_overload_clears_after_drain(self):
        GatedLRUPolicy.gate.clear()
        svc = make_service(GatedLRUPolicy, queue_depth=1)
        batch = np.arange(4, dtype=np.int64)
        ones = np.ones(4, dtype=np.int64)
        try:
            svc.start()
            while svc.submit_batch(batch, ones).accepted:
                pass
            GatedLRUPolicy.gate.set()
            assert svc.drain(10.0)
            result = svc.submit_batch(batch, ones)
            assert result.accepted
            assert result.wait(10.0)
        finally:
            GatedLRUPolicy.gate.set()
            svc.stop(10.0)

    def test_inline_mode_never_overloads(self):
        svc = make_service(LRUPolicy, queue_depth=1)
        batch = np.arange(8, dtype=np.int64)
        ones = np.ones(8, dtype=np.int64)
        for _ in range(50):
            assert svc.submit_batch(batch, ones).accepted
        assert svc.n_overloaded == 0

    def test_ticket_latency_populated(self):
        svc = make_service(LRUPolicy)
        with svc:
            ticket = svc.submit_batch(np.arange(8, dtype=np.int64),
                                      np.ones(8, dtype=np.int64))
            assert ticket.wait(10.0)
        assert ticket.latency is not None
        assert ticket.latency >= 0.0

    def test_queue_depth_visible_in_snapshot(self):
        GatedLRUPolicy.gate.clear()
        svc = make_service(GatedLRUPolicy, queue_depth=4)
        batch = np.arange(4, dtype=np.int64)
        ones = np.ones(4, dtype=np.int64)
        try:
            svc.start()
            for _ in range(6):
                svc.submit_batch(batch, ones)
            snap = svc.snapshot()
            assert snap.shards[0].queue_depth >= 1
        finally:
            GatedLRUPolicy.gate.set()
            svc.stop(10.0)
