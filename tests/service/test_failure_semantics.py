"""Regression tests for the failure-semantics bugfix sweep:

* ``stop(timeout)`` is one shared deadline, not ``timeout`` per worker join,
* the micro-batcher buffer is bounded (shed at the cap, never grow),
* the load generator reports NaN percentiles + ``rejected_all`` instead of
  crashing in ``np.percentile`` when nothing was accepted,
* empty latency histograms answer percentile queries with zeros.
"""

import math
import threading
from time import monotonic
from types import SimpleNamespace

import numpy as np
import pytest

from repro.algorithms import LRUPolicy
from repro.core.instance import WeightedPagingInstance
from repro.service import (
    Failed,
    LatencyHistogram,
    MicroBatcher,
    Overloaded,
    PagingService,
    ServiceConfig,
    Shed,
    run_load,
)
from repro.workloads import zipf_stream


class StallingLRUPolicy(LRUPolicy):
    """LRU whose serves block until the test opens the gate."""

    gate = threading.Event()

    def serve(self, t, page, level):
        StallingLRUPolicy.gate.wait(10.0)
        super().serve(t, page, level)


class TestStopDeadline:
    def test_stop_timeout_is_shared_across_all_workers(self):
        """Regression: each join used to get the full timeout, so stopping a
        stuck n-shard service took timeout * (n + 1) instead of timeout."""
        StallingLRUPolicy.gate.clear()
        inst = WeightedPagingInstance.uniform(64, 8)
        config = ServiceConfig(instance=inst, policy_factory=StallingLRUPolicy,
                               n_shards=4, queue_depth=2)
        svc = PagingService(config)
        try:
            svc.start()
            # One batch per shard, all workers now blocked on the gate.
            svc.submit_batch(np.arange(32, dtype=np.int64),
                             np.ones(32, dtype=np.int64))
            started = monotonic()
            svc.stop(0.5)
            elapsed = monotonic() - started
        finally:
            StallingLRUPolicy.gate.set()
        # Old behavior: drain 0.5s + 4 worker joins x 0.5s each >= 2.5s.
        assert elapsed < 1.5, f"stop(0.5) took {elapsed:.2f}s"


class TestMicroBatcherBound:
    def test_sheds_at_cap_under_sustained_overload(self):
        """Regression: the buffer grew without bound while the service
        rejected; now offers past ``max_buffer`` come back as Shed."""
        reject = Overloaded(0, 4)
        mb = MicroBatcher(4, 60.0, lambda p, lv: reject, max_buffer=8)
        results = [mb.offer(i) for i in range(20)]
        assert len(mb) == 8  # never exceeds the cap
        assert mb.n_shed == 12
        shed = [r for r in results if isinstance(r, Shed)]
        assert len(shed) == 12
        assert all(s.cause is reject for s in shed)
        assert all(not s.accepted and not s.retryable for s in shed)
        assert shed[0].page == 8  # first offer past the cap

    def test_buffer_drains_once_service_recovers(self):
        # Every offer at or past batch_size attempts a flush: filling the
        # 8-slot buffer consumes five rejections (offers 3 through 7).
        answers = iter([Overloaded(0, 4)] * 5 + ["ok"] * 10)
        mb = MicroBatcher(4, 60.0, lambda p, lv: next(answers), max_buffer=8)
        for i in range(8):
            mb.offer(i)
        assert len(mb) == 8
        assert mb.flush() == "ok"
        assert len(mb) == 0
        assert mb.offer(99) is None  # buffering again, not shedding

    def test_terminal_rejection_sheds_whole_buffer(self):
        failed = Failed(shard=1)
        mb = MicroBatcher(4, 60.0, lambda p, lv: failed)
        mb.offer(1)
        mb.offer(2)
        result = mb.flush()
        assert result is failed
        assert len(mb) == 0  # nothing held back for a shard that is gone
        assert mb.n_shed == 2

    def test_max_buffer_below_batch_size_rejected(self):
        with pytest.raises(ValueError, match="max_buffer"):
            MicroBatcher(8, 60.0, lambda p, lv: "ok", max_buffer=4)

    def test_default_cap_is_four_batches(self):
        mb = MicroBatcher(16, 60.0, lambda p, lv: "ok")
        assert mb.max_buffer == 64


class RejectingService:
    """Duck-typed stand-in whose submit always answers Overloaded."""

    def __init__(self, batch_size=32):
        self.config = SimpleNamespace(batch_size=batch_size)
        self.n_submits = 0

    def submit_batch(self, pages, levels=None):
        self.n_submits += 1
        return Overloaded(0, 1)

    def drain(self, timeout=None):
        return True


class TestLoadgenRejectedAll:
    def test_nan_percentiles_when_nothing_accepted(self):
        """Regression: np.percentile([]) raised; now the report flags the
        all-rejected run and carries NaN (not zero!) percentiles."""
        seq = zipf_stream(64, 320, rng=3)
        svc = RejectingService()
        report = run_load(svc, seq, rate=1e9, max_retries=1,
                          retry_backoff=1e-4)
        assert report.rejected_all
        assert report.n_served == 0
        assert report.n_batches == 0
        assert report.n_dropped_batches == 10
        assert report.drop_fraction == 1.0
        assert math.isnan(report.p50_ms)
        assert math.isnan(report.p95_ms)
        assert math.isnan(report.p99_ms)
        # NaN percentiles must still render, not crash the table.
        assert "load generator report" in report.render()

    def test_shed_policy_never_retries(self):
        seq = zipf_stream(64, 320, rng=3)
        svc = RejectingService()
        report = run_load(svc, seq, rate=1e9, max_retries=5,
                          on_overload="shed")
        assert svc.n_submits == 10  # one per batch, zero retries
        assert report.rejected_all

    def test_successful_run_is_not_flagged(self):
        inst = WeightedPagingInstance.uniform(64, 8)
        config = ServiceConfig(instance=inst, policy_factory=LRUPolicy,
                               n_shards=2)
        svc = PagingService(config)
        report = run_load(svc, zipf_stream(64, 500, rng=4), rate=1e9)
        assert not report.rejected_all
        assert report.n_failed_batches == 0
        assert not math.isnan(report.p50_ms)

    def test_bad_overload_policy_rejected(self):
        svc = RejectingService()
        with pytest.raises(ValueError, match="on_overload"):
            run_load(svc, zipf_stream(64, 10, rng=5), rate=1e9,
                     on_overload="panic")


class TestLatencyHistogramEmpty:
    def test_empty_window_answers_zero_not_crash(self):
        """Regression: percentile queries crashed in np.percentile before
        the first observation."""
        hist = LatencyHistogram(window=16)
        assert hist.empty
        assert hist.percentiles((50.0, 95.0, 99.0)) == (0.0, 0.0, 0.0)
        assert hist.percentile(50.0) == 0.0
        assert hist.percentiles_ms() == (0.0, 0.0, 0.0)

    def test_flag_clears_after_first_observation(self):
        hist = LatencyHistogram(window=16)
        hist.observe(0.25)
        assert not hist.empty
        assert hist.percentile(50.0) == pytest.approx(0.25)
