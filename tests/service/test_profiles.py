"""Rate profiles: deterministic time-varying pacing for the load gens."""

import numpy as np
import pytest

from repro.core.instance import WeightedPagingInstance
from repro.errors import ServiceConfigError
from repro.service import (
    PagingService,
    RateProfile,
    ServiceConfig,
    run_load,
)
from repro.workloads import sample_weights, zipf_stream


def make_service(**overrides):
    inst = WeightedPagingInstance(8, sample_weights(64, rng=0))
    kwargs = dict(n_shards=2, batch_size=64, seed=0, backend="inline")
    kwargs.update(overrides)
    return PagingService(ServiceConfig.from_policy_name(
        "waterfilling", inst, **kwargs))


class TestRateProfileShapes:
    def test_constant_profile_is_flat(self):
        p = RateProfile(kind="constant", rate=1000.0)
        assert all(p.rate_at(t) == 1000.0 for t in (0.0, 0.3, 7.9))

    def test_diurnal_sweeps_between_trough_and_peak(self):
        p = RateProfile(kind="diurnal", rate=1000.0, period_s=2.0,
                        low_frac=0.1)
        assert p.rate_at(0.0) == pytest.approx(100.0)
        assert p.rate_at(1.0) == pytest.approx(1000.0)
        for t in np.linspace(0.0, 4.0, 33):
            assert 100.0 - 1e-9 <= p.rate_at(t) <= 1000.0 + 1e-9

    def test_step_duty_cycle(self):
        p = RateProfile(kind="step", rate=1000.0, period_s=1.0,
                        low_frac=0.2, duty=0.25)
        assert p.rate_at(0.1) == 1000.0
        assert p.rate_at(0.26) == pytest.approx(200.0)
        assert p.rate_at(1.1) == 1000.0  # periodic

    def test_burst_window_stays_inside_period(self):
        p = RateProfile(kind="burst", rate=1000.0, period_s=1.0,
                        duty=0.25, seed=3)
        for k in range(20):
            high = [t for t in np.linspace(k, k + 1, 101, endpoint=False)
                    if p.rate_at(float(t)) > 500.0]
            # Exactly one contiguous high window of ~duty * period.
            assert 20 <= len(high) <= 27

    def test_validation(self):
        with pytest.raises(ServiceConfigError):
            RateProfile(kind="tidal")
        with pytest.raises(ServiceConfigError):
            RateProfile(rate=0.0)
        with pytest.raises(ServiceConfigError):
            RateProfile(period_s=-1.0)
        with pytest.raises(ServiceConfigError):
            RateProfile(low_frac=1.5)
        with pytest.raises(ServiceConfigError):
            RateProfile(duty=0.0)


class TestDueOffsets:
    def test_same_seed_same_offsets(self):
        p = RateProfile(kind="burst", rate=5000.0, period_s=0.5, seed=9)
        assert np.array_equal(p.due_offsets(200, 64), p.due_offsets(200, 64))

    def test_different_seed_different_offsets(self):
        a = RateProfile(kind="burst", rate=5000.0, period_s=0.5, seed=1)
        b = RateProfile(kind="burst", rate=5000.0, period_s=0.5, seed=2)
        assert not np.array_equal(a.due_offsets(200, 64),
                                  b.due_offsets(200, 64))

    def test_offsets_strictly_increase(self):
        for kind in ("constant", "diurnal", "burst", "step"):
            p = RateProfile(kind=kind, rate=2000.0, period_s=0.25, seed=0)
            offsets = p.due_offsets(100, 32)
            assert offsets.shape == (100,)
            assert np.all(np.diff(offsets) > 0)

    def test_constant_matches_fixed_rate_pacing(self):
        p = RateProfile(kind="constant", rate=1000.0)
        offsets = p.due_offsets(10, 50)
        assert offsets == pytest.approx(
            [i * 50 / 1000.0 for i in range(10)])
        assert p.mean_rate(500, 50) == pytest.approx(1000.0)


class TestRunLoadWithProfile:
    def test_profiled_load_serves_everything(self):
        svc = make_service()
        seq = zipf_stream(64, 2000, rng=0)
        profile = RateProfile(kind="diurnal", rate=200_000.0, period_s=0.05)
        with svc:
            report = run_load(svc, seq, rate=1.0, batch_size=64,
                              profile=profile)
        assert report.n_served == 2000
        assert report.n_dropped_batches == 0
        # The report's target reflects the profile, not the ignored rate.
        assert report.target_rate == pytest.approx(
            profile.mean_rate(2000, 64))

    def test_profiled_report_is_nan_safe_when_everything_sheds(self):
        svc = make_service(queue_depth=1, backend="thread")
        svc.set_queue_limit(1)
        seq = zipf_stream(64, 3000, rng=1)
        profile = RateProfile(kind="burst", rate=5e6, period_s=0.01,
                              duty=0.9, low_frac=0.5, seed=2)
        with svc:
            report = run_load(svc, seq, rate=1.0, batch_size=8,
                              max_retries=0, on_overload="shed",
                              profile=profile)
        render = report.render()
        assert "nan" not in render.lower() or report.n_served == 0
        assert report.n_served + 8 * report.n_dropped_batches \
            + report.n_failed_batches * 8 >= 0  # never raises
