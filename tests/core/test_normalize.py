"""Tests for geometric level normalization (the paper's WLOG merge)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import MultiLevelInstance
from repro.core.normalize import normalize_instance
from repro.core.requests import RequestSequence


class TestNormalizeInstance:
    def test_already_geometric_is_identity_map(self):
        inst = MultiLevelInstance(2, np.tile([8.0, 4.0, 2.0], (5, 1)))
        norm = normalize_instance(inst)
        assert norm.instance.n_levels == 3
        assert np.array_equal(norm.instance.weights, inst.weights)
        assert np.array_equal(norm.level_map, np.tile([1, 2, 3], (5, 1)))

    def test_close_levels_merged(self):
        # 8, 5 are within a factor 2 -> merged; 2 starts a new group.
        inst = MultiLevelInstance(1, np.array([[8.0, 5.0, 2.0], [8.0, 5.0, 2.0]]))
        norm = normalize_instance(inst)
        assert norm.instance.n_levels == 2
        assert norm.instance.weights[0].tolist() == [8.0, 2.0]
        assert norm.level_map[0].tolist() == [1, 1, 2]

    def test_result_is_geometric(self):
        inst = MultiLevelInstance(1, np.array([[9.0, 7.0, 5.0, 3.0, 2.0, 1.5, 1.0]] * 3))
        norm = normalize_instance(inst)
        assert norm.instance.has_geometric_levels()

    def test_padding_for_ragged_group_counts(self):
        # Page 0 collapses to one group, page 1 keeps two.
        inst = MultiLevelInstance(1, np.array([[3.0, 2.0], [8.0, 2.0]]))
        norm = normalize_instance(inst)
        assert norm.instance.n_levels == 2
        # Page 0 padded at the front with a heavier synthetic level.
        assert norm.instance.weights[0, 0] == pytest.approx(6.0)
        assert norm.instance.weights[0, 1] == pytest.approx(3.0)
        # Requests for page 0 never reach the padded level.
        assert norm.level_map[0].min() == 2

    def test_map_request_targets_representative(self):
        inst = MultiLevelInstance(1, np.array([[8.0, 5.0, 2.0]] * 2))
        norm = normalize_instance(inst)
        assert norm.map_request(0, 2) == (0, 1)
        assert norm.map_request(0, 3) == (0, 2)

    def test_map_sequence_matches_scalar_map(self):
        inst = MultiLevelInstance(1, np.array([[8.0, 5.0, 2.0], [4.0, 3.0, 1.0]]))
        norm = normalize_instance(inst)
        seq = RequestSequence.from_pairs([(0, 1), (0, 3), (1, 2), (1, 3)])
        mapped = norm.map_sequence(seq)
        for orig, new in zip(seq, mapped):
            assert (new.page, new.level) == norm.map_request(orig.page, orig.level)

    def test_representative_within_factor_two(self):
        inst = MultiLevelInstance(1, np.array([[9.0, 7.0, 5.0, 3.0, 2.0, 1.5, 1.0]] * 2))
        norm = normalize_instance(inst)
        for i in range(1, inst.n_levels + 1):
            _, new_level = norm.map_request(0, i)
            rep = norm.instance.weight(0, new_level)
            orig = inst.weight(0, i)
            assert orig <= rep < 2 * orig + 1e-9

    def test_bad_ratio_rejected(self):
        inst = MultiLevelInstance(1, np.ones((2, 1)) * 2)
        with pytest.raises(ValueError):
            normalize_instance(inst, ratio=1.0)


@st.composite
def _weight_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    levels = draw(st.integers(min_value=1, max_value=5))
    rows = []
    for _ in range(n):
        vals = sorted(
            draw(
                st.lists(
                    st.floats(min_value=1.0, max_value=64.0, allow_nan=False),
                    min_size=levels, max_size=levels,
                )
            ),
            reverse=True,
        )
        rows.append(vals)
    return np.array(rows)


class TestNormalizeProperties:
    @given(_weight_matrices())
    @settings(max_examples=60, deadline=None)
    def test_normalized_is_geometric_and_maps_valid(self, weights):
        inst = MultiLevelInstance(1, weights)
        norm = normalize_instance(inst)
        assert norm.instance.has_geometric_levels()
        for p in range(inst.n_pages):
            for i in range(1, inst.n_levels + 1):
                _, new_level = norm.map_request(p, i)
                assert 1 <= new_level <= norm.instance.n_levels
                rep = norm.instance.weight(p, new_level)
                orig = inst.weight(p, i)
                # Representative is at least as heavy and within factor 2.
                assert rep >= orig - 1e-9
                assert rep < 2 * orig + 1e-6

    @given(_weight_matrices())
    @settings(max_examples=60, deadline=None)
    def test_level_map_is_monotone(self, weights):
        # Requests for lower levels map to lower (or equal) new levels.
        inst = MultiLevelInstance(1, weights)
        norm = normalize_instance(inst)
        for p in range(inst.n_pages):
            mapped = norm.level_map[p]
            assert np.all(np.diff(mapped) >= 0)
