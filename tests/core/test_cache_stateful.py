"""Stateful (rule-based) fuzzing of the cache classes.

Hypothesis drives random legal operation sequences against a pure-Python
model; after every step the cache must agree with the model on contents,
dirtiness, cost, and invariants.  Illegal operations must raise the typed
errors and leave state unchanged.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.cache import MultiLevelCache, WritebackCache
from repro.core.instance import MultiLevelInstance, WritebackInstance
from repro.errors import CacheInvariantError, CacheOverflowError

N_PAGES, N_LEVELS, K = 8, 3, 3
WEIGHTS = np.tile([8.0, 4.0, 2.0], (N_PAGES, 1))


class MultiLevelCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.instance = MultiLevelInstance(K, WEIGHTS)
        self.cache = MultiLevelCache(self.instance)
        self.model: dict[int, int] = {}
        self.model_cost = 0.0

    pages = st.integers(min_value=0, max_value=N_PAGES - 1)
    levels = st.integers(min_value=1, max_value=N_LEVELS)

    @rule(page=pages, level=levels)
    def fetch(self, page, level):
        if page in self.model:
            try:
                self.cache.fetch(page, level)
                raise AssertionError("second copy accepted")
            except CacheInvariantError:
                return
        if len(self.model) >= K:
            try:
                self.cache.fetch(page, level)
                raise AssertionError("overflow accepted")
            except CacheOverflowError:
                return
        self.cache.fetch(page, level)
        self.model[page] = level

    @rule(page=pages)
    def evict(self, page):
        if page not in self.model:
            try:
                self.cache.evict(page)
                raise AssertionError("evicted absent page")
            except CacheInvariantError:
                return
        level = self.cache.evict(page)
        assert level == self.model[page]
        self.model_cost += WEIGHTS[page, level - 1]
        del self.model[page]

    @rule(page=pages, level=levels)
    def replace(self, page, level):
        old = self.model.get(page)
        if old is None or old == level:
            try:
                self.cache.replace(page, level)
                raise AssertionError("bad replace accepted")
            except CacheInvariantError:
                return
        self.cache.replace(page, level)
        self.model_cost += WEIGHTS[page, old - 1]
        self.model[page] = level

    @invariant()
    def contents_agree(self):
        assert self.cache.contents() == self.model

    @invariant()
    def cost_agrees(self):
        assert abs(self.cache.ledger.eviction_cost - self.model_cost) < 1e-9

    @invariant()
    def serves_agrees(self):
        for page, level in self.model.items():
            assert self.cache.serves(page, level)
            assert self.cache.serves(page, N_LEVELS)
            if level > 1:
                assert not self.cache.serves(page, level - 1)

    @invariant()
    def internal_invariants_hold(self):
        self.cache.check_invariants(deep=True)


class WritebackCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.instance = WritebackInstance(
            K, np.full(N_PAGES, 10.0), np.full(N_PAGES, 1.0)
        )
        self.cache = WritebackCache(self.instance)
        self.model: dict[int, bool] = {}
        self.model_cost = 0.0

    pages = st.integers(min_value=0, max_value=N_PAGES - 1)

    @rule(page=pages)
    def fetch(self, page):
        if page in self.model:
            try:
                self.cache.fetch(page)
                raise AssertionError("double fetch accepted")
            except CacheInvariantError:
                return
        if len(self.model) >= K:
            try:
                self.cache.fetch(page)
                raise AssertionError("overflow accepted")
            except CacheOverflowError:
                return
        self.cache.fetch(page)
        self.model[page] = False

    @rule(page=pages)
    def write(self, page):
        if page not in self.model:
            try:
                self.cache.mark_dirty(page)
                raise AssertionError("dirtied absent page")
            except CacheInvariantError:
                return
        self.cache.mark_dirty(page)
        self.model[page] = True

    @rule(page=pages)
    def evict(self, page):
        if page not in self.model:
            try:
                self.cache.evict(page)
                raise AssertionError("evicted absent page")
            except CacheInvariantError:
                return
        dirty = self.cache.evict(page)
        assert dirty == self.model[page]
        self.model_cost += 10.0 if dirty else 1.0
        del self.model[page]

    @invariant()
    def contents_agree(self):
        assert self.cache.contents() == self.model

    @invariant()
    def cost_agrees(self):
        assert abs(self.cache.ledger.eviction_cost - self.model_cost) < 1e-9

    @invariant()
    def internal_invariants_hold(self):
        self.cache.check_invariants(deep=True)


TestMultiLevelCacheStateful = MultiLevelCacheMachine.TestCase
TestMultiLevelCacheStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestWritebackCacheStateful = WritebackCacheMachine.TestCase
TestWritebackCacheStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
