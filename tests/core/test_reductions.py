"""Tests for the Lemma 2.1 writeback <-> RW-paging reduction."""

import numpy as np
import pytest

from repro.core.instance import RWPagingInstance, WritebackInstance
from repro.core.reductions import (
    rw_to_writeback_instance,
    rw_to_writeback_sequence,
    writeback_cost_of_rw_run,
    writeback_to_rw_instance,
    writeback_to_rw_sequence,
)
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import InvalidRequestError


def wb_instance():
    return WritebackInstance(2, [10.0, 8.0, 6.0, 4.0], [2.0, 2.0, 1.0, 1.0])


class TestInstanceMaps:
    def test_writeback_to_rw_weights(self):
        rw = writeback_to_rw_instance(wb_instance())
        assert isinstance(rw, RWPagingInstance)
        assert rw.write_weights.tolist() == [10.0, 8.0, 6.0, 4.0]
        assert rw.read_weights.tolist() == [2.0, 2.0, 1.0, 1.0]
        assert rw.cache_size == 2

    def test_round_trip_is_identity(self):
        wb = wb_instance()
        back = rw_to_writeback_instance(writeback_to_rw_instance(wb))
        assert back == wb

    def test_rw_round_trip(self):
        rw = RWPagingInstance(1, [5.0, 3.0], [1.0, 2.0])
        back = writeback_to_rw_instance(rw_to_writeback_instance(rw))
        assert back == rw


class TestSequenceMaps:
    def test_writes_become_level_one(self):
        seq = WBRequestSequence.from_pairs([(0, True), (1, False), (0, False)])
        rw = writeback_to_rw_sequence(seq)
        assert rw.pages.tolist() == [0, 1, 0]
        assert rw.levels.tolist() == [1, 2, 2]

    def test_sequence_round_trip(self):
        seq = WBRequestSequence.from_pairs([(2, True), (0, False), (1, True)])
        assert rw_to_writeback_sequence(writeback_to_rw_sequence(seq)) == seq

    def test_rw_round_trip(self):
        seq = RequestSequence.from_pairs([(0, 1), (1, 2), (2, 2)])
        assert writeback_to_rw_sequence(rw_to_writeback_sequence(seq)) == seq

    def test_levels_above_two_rejected(self):
        seq = RequestSequence.from_pairs([(0, 3)])
        with pytest.raises(InvalidRequestError):
            rw_to_writeback_sequence(seq)


class TestWritebackCostOfRWRun:
    def test_trace_length_mismatch_rejected(self):
        with pytest.raises(InvalidRequestError):
            writeback_cost_of_rw_run(
                wb_instance(), WBRequestSequence.from_pairs([(0, True)]), []
            )

    def test_unserved_write_rejected(self):
        seq = WBRequestSequence.from_pairs([(0, True)])
        with pytest.raises(InvalidRequestError):
            writeback_cost_of_rw_run(wb_instance(), seq, [{1: 1}])

    def test_rw_swap_is_free_dirtying(self):
        # RW trace: fetch (0,2); upgrade to (0,1) on the write; keep it.
        seq = WBRequestSequence.from_pairs([(0, False), (0, True)])
        trace = [{0: 2}, {0: 1}]
        cost = writeback_cost_of_rw_run(wb_instance(), seq, trace)
        assert cost == 0.0  # the swap (p,2)->(p,1) costs nothing writeback-side

    def test_dirty_eviction_charged(self):
        # Write page 0, then it leaves the cache while serving page 1.
        seq = WBRequestSequence.from_pairs([(0, True), (1, False)])
        trace = [{0: 1}, {1: 2}]
        cost = writeback_cost_of_rw_run(wb_instance(), seq, trace)
        assert cost == pytest.approx(10.0)  # dirty eviction of page 0

    def test_clean_eviction_charged(self):
        seq = WBRequestSequence.from_pairs([(0, False), (1, False)])
        trace = [{0: 2}, {1: 2}]
        cost = writeback_cost_of_rw_run(wb_instance(), seq, trace)
        assert cost == pytest.approx(2.0)  # clean eviction of page 0

    def test_induced_cost_never_exceeds_rw_cost(self):
        # RW solution: hold (0,1) from the start, swap to (1,2), back to (0,1).
        # RW cost: evict (0,1)=10 then evict (1,2)=2. Writeback side: page 0
        # became dirty, evicted dirty (10), page 1 clean (2): equal here.
        seq = WBRequestSequence.from_pairs([(0, True), (1, False), (0, True)])
        trace = [{0: 1}, {1: 2}, {0: 1}]
        cost = writeback_cost_of_rw_run(wb_instance(), seq, trace)
        rw_cost = 10.0 + 2.0
        assert cost <= rw_cost + 1e-9
        assert cost == pytest.approx(12.0)
