"""Tests for request types and columnar sequences."""

import numpy as np
import pytest

from repro.core.requests import (
    Request,
    RequestSequence,
    WBRequest,
    WBRequestSequence,
)
from repro.errors import InvalidRequestError


class TestRequest:
    def test_defaults_to_level_one(self):
        assert Request(3).level == 1

    def test_negative_page_rejected(self):
        with pytest.raises(InvalidRequestError):
            Request(-1)

    def test_zero_level_rejected(self):
        with pytest.raises(InvalidRequestError):
            Request(0, 0)

    def test_is_hashable_and_frozen(self):
        r = Request(1, 2)
        assert hash(r) == hash(Request(1, 2))
        with pytest.raises(AttributeError):
            r.page = 5  # type: ignore[misc]


class TestWBRequest:
    def test_defaults_to_read(self):
        assert WBRequest(0).is_write is False

    def test_negative_page_rejected(self):
        with pytest.raises(InvalidRequestError):
            WBRequest(-2, True)


class TestRequestSequence:
    def test_from_pairs_roundtrip(self):
        seq = RequestSequence.from_pairs([(0, 1), (3, 2), (1, 1)])
        assert list(seq) == [Request(0, 1), Request(3, 2), Request(1, 1)]

    def test_from_requests(self):
        reqs = [Request(5, 2), Request(0, 1)]
        seq = RequestSequence.from_requests(reqs)
        assert list(seq) == reqs

    def test_from_pages_single_level(self):
        seq = RequestSequence.from_pages([4, 2, 4])
        assert seq.levels.tolist() == [1, 1, 1]
        assert seq.pages.tolist() == [4, 2, 4]

    def test_columnar_arrays_read_only(self):
        seq = RequestSequence.from_pages([1, 2])
        with pytest.raises(ValueError):
            seq.pages[0] = 9

    def test_len_and_getitem(self):
        seq = RequestSequence.from_pairs([(0, 1), (1, 2)])
        assert len(seq) == 2
        assert seq[1] == Request(1, 2)
        assert seq[-1] == Request(1, 2)

    def test_slicing_returns_sequence(self):
        seq = RequestSequence.from_pages([0, 1, 2, 3])
        sub = seq[1:3]
        assert isinstance(sub, RequestSequence)
        assert sub.pages.tolist() == [1, 2]

    def test_concatenation(self):
        a = RequestSequence.from_pages([0, 1])
        b = RequestSequence.from_pages([2])
        assert (a + b).pages.tolist() == [0, 1, 2]

    def test_equality_and_hash(self):
        a = RequestSequence.from_pages([0, 1])
        b = RequestSequence.from_pages([0, 1])
        assert a == b and hash(a) == hash(b)
        assert a != RequestSequence.from_pages([1, 0])

    def test_stats(self):
        seq = RequestSequence.from_pairs([(0, 1), (7, 3), (0, 2)])
        assert seq.max_page() == 7
        assert seq.max_level() == 3
        assert seq.distinct_pages() == 2

    def test_empty_stats(self):
        seq = RequestSequence.from_pages([])
        assert seq.max_page() == -1
        assert seq.max_level() == 0
        assert len(seq) == 0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(InvalidRequestError):
            RequestSequence(np.array([1, 2]), np.array([1]))

    def test_bad_levels_rejected(self):
        with pytest.raises(InvalidRequestError):
            RequestSequence(np.array([1]), np.array([0]))

    def test_negative_pages_rejected(self):
        with pytest.raises(InvalidRequestError):
            RequestSequence(np.array([-1]), np.array([1]))


class TestWBRequestSequence:
    def test_from_pairs_roundtrip(self):
        seq = WBRequestSequence.from_pairs([(0, True), (1, False)])
        assert list(seq) == [WBRequest(0, True), WBRequest(1, False)]

    def test_write_fraction(self):
        seq = WBRequestSequence.from_pairs([(0, True), (1, False), (2, True), (3, True)])
        assert seq.write_fraction() == pytest.approx(0.75)

    def test_write_fraction_empty(self):
        assert WBRequestSequence.from_pairs([]).write_fraction() == 0.0

    def test_concatenation_and_slice(self):
        a = WBRequestSequence.from_pairs([(0, True)])
        b = WBRequestSequence.from_pairs([(1, False)])
        combined = a + b
        assert len(combined) == 2
        assert combined[1:].pages.tolist() == [1]

    def test_equality(self):
        a = WBRequestSequence.from_pairs([(0, True)])
        b = WBRequestSequence.from_pairs([(0, True)])
        c = WBRequestSequence.from_pairs([(0, False)])
        assert a == b
        assert a != c

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(InvalidRequestError):
            WBRequestSequence(np.array([1]), np.array([True, False]))
