"""Tests for the instance classes and their validation."""

import numpy as np
import pytest

from repro.core.instance import (
    MultiLevelInstance,
    RWPagingInstance,
    WeightedPagingInstance,
    WritebackInstance,
)
from repro.errors import InvalidInstanceError, InvalidRequestError


def simple_ml(n=6, l=3, k=3):
    w = np.tile(np.array([8.0, 4.0, 1.0][:l]), (n, 1))
    return MultiLevelInstance(k, w)


class TestMultiLevelInstance:
    def test_shape_accessors(self):
        inst = simple_ml()
        assert inst.n_pages == 6
        assert inst.n_levels == 3
        assert inst.cache_size == 3

    def test_weight_lookup_one_based(self):
        inst = simple_ml()
        assert inst.weight(0, 1) == 8.0
        assert inst.weight(0, 3) == 1.0

    def test_1d_weights_promoted(self):
        inst = MultiLevelInstance(2, np.array([3.0, 2.0, 5.0]))
        assert inst.n_levels == 1
        assert inst.weight(2, 1) == 5.0

    def test_weights_read_only(self):
        inst = simple_ml()
        with pytest.raises(ValueError):
            inst.weights[0, 0] = 100.0

    def test_increasing_levels_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiLevelInstance(1, np.array([[1.0, 2.0], [3.0, 2.0]]))

    def test_weights_below_one_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiLevelInstance(1, np.array([[2.0, 0.5], [2.0, 1.0]]))

    def test_nonfinite_weights_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiLevelInstance(1, np.array([[np.inf, 1.0], [2.0, 1.0]]))

    def test_cache_as_large_as_universe_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiLevelInstance(3, np.ones((3, 1)))

    def test_nonpositive_cache_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiLevelInstance(0, np.ones((3, 1)))

    def test_check_copy_bounds(self):
        inst = simple_ml()
        with pytest.raises(InvalidRequestError):
            inst.check_copy(6, 1)
        with pytest.raises(InvalidRequestError):
            inst.check_copy(0, 4)
        inst.check_copy(5, 3)  # in range: no raise

    def test_validate_sequence_bounds(self):
        inst = simple_ml()
        inst.validate_sequence(np.array([0, 5]), np.array([1, 3]))
        with pytest.raises(InvalidRequestError):
            inst.validate_sequence(np.array([0, 6]), np.array([1, 1]))
        with pytest.raises(InvalidRequestError):
            inst.validate_sequence(np.array([0]), np.array([4]))

    def test_weight_class_boundaries(self):
        inst = MultiLevelInstance(1, np.array([[1.0], [2.0], [2.5], [4.0], [9.0]]))
        assert inst.weight_class(0, 1) == 1  # w=1 widened into class 1
        assert inst.weight_class(1, 1) == 1  # w=2 in (1, 2]
        assert inst.weight_class(2, 1) == 2  # w=2.5 in (2, 4]
        assert inst.weight_class(3, 1) == 2  # w=4 in (2, 4]
        assert inst.weight_class(4, 1) == 4  # w=9 in (8, 16]

    def test_weight_classes_matrix_matches_scalar(self):
        inst = simple_ml()
        classes = inst.weight_classes()
        for p in range(inst.n_pages):
            for i in range(1, inst.n_levels + 1):
                assert classes[p, i - 1] == inst.weight_class(p, i)

    def test_has_geometric_levels(self):
        assert simple_ml().has_geometric_levels()
        inst = MultiLevelInstance(1, np.array([[3.0, 2.0], [3.0, 2.0]]))
        assert not inst.has_geometric_levels()

    def test_equality_and_hash(self):
        assert simple_ml() == simple_ml()
        assert hash(simple_ml()) == hash(simple_ml())
        assert simple_ml(k=2) != simple_ml(k=3)


class TestWeightedPagingInstance:
    def test_is_single_level(self):
        inst = WeightedPagingInstance(2, [5.0, 3.0, 1.0, 1.0])
        assert inst.n_levels == 1
        assert inst.page_weight(0) == 5.0
        assert inst.page_weights.tolist() == [5.0, 3.0, 1.0, 1.0]

    def test_uniform_constructor(self):
        inst = WeightedPagingInstance.uniform(8, 3)
        assert inst.n_pages == 8
        assert np.all(inst.page_weights == 1.0)

    def test_2d_weights_rejected(self):
        with pytest.raises(InvalidInstanceError):
            WeightedPagingInstance(1, np.ones((3, 2)))


class TestRWPagingInstance:
    def test_copy_weights(self):
        inst = RWPagingInstance(2, [10.0, 6.0, 4.0], [2.0, 3.0, 4.0])
        assert inst.n_levels == 2
        assert inst.write_weights.tolist() == [10.0, 6.0, 4.0]
        assert inst.read_weights.tolist() == [2.0, 3.0, 4.0]

    def test_read_above_write_rejected(self):
        with pytest.raises(InvalidInstanceError):
            RWPagingInstance(1, [2.0, 2.0], [3.0, 1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidInstanceError):
            RWPagingInstance(1, [2.0, 2.0], [1.0])


class TestWritebackInstance:
    def test_eviction_costs(self):
        inst = WritebackInstance(2, [10.0, 5.0, 2.0], [1.0, 2.0, 2.0])
        assert inst.eviction_cost(0, dirty=True) == 10.0
        assert inst.eviction_cost(0, dirty=False) == 1.0

    def test_uniform_constructor(self):
        inst = WritebackInstance.uniform(5, 2, dirty_cost=8.0)
        assert np.all(inst.dirty_weights == 8.0)
        assert np.all(inst.clean_weights == 1.0)

    def test_clean_above_dirty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            WritebackInstance(1, [2.0, 2.0], [3.0, 1.0])

    def test_clean_below_one_rejected(self):
        with pytest.raises(InvalidInstanceError):
            WritebackInstance(1, [2.0, 2.0], [0.5, 1.0])

    def test_out_of_range_page(self):
        inst = WritebackInstance.uniform(3, 1, 4.0)
        with pytest.raises(InvalidRequestError):
            inst.eviction_cost(3, True)

    def test_equality(self):
        a = WritebackInstance.uniform(4, 2, 6.0)
        b = WritebackInstance.uniform(4, 2, 6.0)
        c = WritebackInstance.uniform(4, 2, 7.0)
        assert a == b
        assert a != c
