"""Tests for the cache state classes and the cost ledger."""

import numpy as np
import pytest

from repro.core.cache import MultiLevelCache, WritebackCache
from repro.core.instance import MultiLevelInstance, WritebackInstance
from repro.core.ledger import CostLedger
from repro.errors import CacheInvariantError, CacheOverflowError


def ml_instance(n=6, k=3):
    return MultiLevelInstance(k, np.tile([8.0, 4.0, 2.0], (n, 1)))


def wb_instance(n=6, k=3):
    return WritebackInstance(k, np.full(n, 10.0), np.full(n, 1.0))


class TestMultiLevelCache:
    def test_fetch_and_serve(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 2)
        assert 0 in c
        assert c.level_of(0) == 2
        assert c.serves(0, 2)
        assert c.serves(0, 3)
        assert not c.serves(0, 1)  # cached copy too low for a level-1 request
        assert not c.serves(1, 3)

    def test_fetch_is_free_but_counted(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 1)
        assert c.ledger.eviction_cost == 0.0
        assert c.ledger.n_fetches == 1

    def test_evict_charges_level_weight(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 2)
        level = c.evict(0)
        assert level == 2
        assert c.ledger.eviction_cost == 4.0
        assert 0 not in c

    def test_second_copy_rejected(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 1)
        with pytest.raises(CacheInvariantError):
            c.fetch(0, 2)

    def test_overflow_rejected(self):
        c = MultiLevelCache(ml_instance(k=2))
        c.fetch(0, 1)
        c.fetch(1, 1)
        assert c.is_full
        with pytest.raises(CacheOverflowError):
            c.fetch(2, 1)

    def test_evict_absent_rejected(self):
        c = MultiLevelCache(ml_instance())
        with pytest.raises(CacheInvariantError):
            c.evict(0)

    def test_replace_charges_old_level(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 3)
        old = c.replace(0, 1)
        assert old == 3
        assert c.level_of(0) == 1
        assert c.ledger.eviction_cost == 2.0  # weight of the level-3 copy

    def test_replace_same_level_rejected(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 2)
        with pytest.raises(CacheInvariantError):
            c.replace(0, 2)

    def test_replace_absent_rejected(self):
        c = MultiLevelCache(ml_instance())
        with pytest.raises(CacheInvariantError):
            c.replace(0, 1)

    def test_flush_returns_total(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 1)
        c.fetch(1, 3)
        assert c.flush() == pytest.approx(8.0 + 2.0)
        assert len(c) == 0

    def test_free_slots(self):
        c = MultiLevelCache(ml_instance(k=3))
        assert c.free_slots == 3
        c.fetch(0, 1)
        assert c.free_slots == 2

    def test_contents_is_a_copy(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 1)
        snap = c.contents()
        snap[0] = 99
        assert c.level_of(0) == 1

    def test_check_invariants_passes_on_valid_state(self):
        c = MultiLevelCache(ml_instance())
        c.fetch(0, 1)
        c.check_invariants()

    def test_shared_ledger(self):
        ledger = CostLedger()
        c = MultiLevelCache(ml_instance(), ledger)
        c.fetch(0, 1)
        c.evict(0)
        assert ledger.eviction_cost == 8.0


class TestWritebackCache:
    def test_fetch_enters_clean(self):
        c = WritebackCache(wb_instance())
        c.fetch(0)
        assert 0 in c
        assert not c.is_dirty(0)

    def test_dirty_eviction_costs_more(self):
        c = WritebackCache(wb_instance())
        c.fetch(0)
        c.fetch(1)
        c.mark_dirty(0)
        assert c.evict(0) is True
        assert c.evict(1) is False
        assert c.ledger.eviction_cost == pytest.approx(10.0 + 1.0)

    def test_refetch_after_writeback_is_clean(self):
        c = WritebackCache(wb_instance())
        c.fetch(0)
        c.mark_dirty(0)
        c.evict(0)
        c.fetch(0)
        assert not c.is_dirty(0)

    def test_mark_dirty_absent_rejected(self):
        c = WritebackCache(wb_instance())
        with pytest.raises(CacheInvariantError):
            c.mark_dirty(0)

    def test_overflow_rejected(self):
        c = WritebackCache(wb_instance(k=1))
        c.fetch(0)
        with pytest.raises(CacheOverflowError):
            c.fetch(1)

    def test_double_fetch_rejected(self):
        c = WritebackCache(wb_instance())
        c.fetch(0)
        with pytest.raises(CacheInvariantError):
            c.fetch(0)

    def test_flush_mixed_dirtiness(self):
        c = WritebackCache(wb_instance())
        c.fetch(0)
        c.fetch(1)
        c.mark_dirty(1)
        assert c.flush() == pytest.approx(1.0 + 10.0)


class TestCostLedger:
    def test_charges_accumulate(self):
        ledger = CostLedger()
        ledger.charge_eviction(0, 1, 3.0, "a")
        ledger.charge_eviction(1, 1, 2.0, "b")
        assert ledger.eviction_cost == 5.0
        assert ledger.n_evictions == 2
        assert ledger.cost_by_reason == {"a": 3.0, "b": 2.0}

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge_eviction(0, 1, -1.0)

    def test_event_recording_off_by_default(self):
        ledger = CostLedger()
        ledger.charge_eviction(0, 1, 1.0)
        assert ledger.events == []

    def test_event_recording(self):
        ledger = CostLedger(record_events=True)
        ledger.set_time(7)
        ledger.charge_eviction(3, 2, 1.5, "reset")
        (ev,) = ledger.events
        assert (ev.time, ev.page, ev.level, ev.cost, ev.reason) == (7, 3, 2, 1.5, "reset")

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge_eviction(0, 1, 1.0, "x")
        b.charge_eviction(1, 1, 2.0, "x")
        b.count_hit()
        a.merge(b)
        assert a.eviction_cost == 3.0
        assert a.cost_by_reason["x"] == 3.0
        assert a.n_hits == 1

    def test_snapshot_keys(self):
        snap = CostLedger().snapshot()
        assert set(snap) == {
            "eviction_cost", "n_evictions", "n_fetches", "n_hits", "n_misses",
        }
