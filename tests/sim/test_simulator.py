"""Tests for the verifying simulator and run metrics."""

import numpy as np
import pytest

from repro.algorithms import LRUPolicy, WBLRUPolicy
from repro.algorithms.base import Policy, WritebackPolicy
from repro.core.instance import WeightedPagingInstance, WritebackInstance
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import CacheInvariantError, InvalidRequestError
from repro.sim import aggregate_runs, simulate, simulate_writeback


class _CheatingPolicy(Policy):
    """Never serves anything — the simulator must catch it."""

    name = "cheater"

    def serve(self, t, page, level):
        pass


class _CheatingWBPolicy(WritebackPolicy):
    name = "wb-cheater"

    def serve(self, t, page, is_write):
        pass


class TestSimulate:
    def test_counts_hits_and_misses(self):
        inst = WeightedPagingInstance.uniform(4, 2)
        seq = RequestSequence.from_pages([0, 0, 1, 0])
        r = simulate(inst, seq, LRUPolicy())
        assert (r.n_hits, r.n_misses) == (2, 2)
        assert r.hit_rate == pytest.approx(0.5)
        assert r.miss_rate == pytest.approx(0.5)

    def test_unserved_request_detected(self):
        inst = WeightedPagingInstance.uniform(4, 2)
        seq = RequestSequence.from_pages([0])
        with pytest.raises(CacheInvariantError, match="unserved"):
            simulate(inst, seq, _CheatingPolicy())

    def test_validation_can_be_disabled(self):
        inst = WeightedPagingInstance.uniform(4, 2)
        seq = RequestSequence.from_pages([0])
        r = simulate(inst, seq, _CheatingPolicy(), validate=False)
        assert r.cost == 0.0

    def test_out_of_range_sequence_rejected(self):
        inst = WeightedPagingInstance.uniform(4, 2)
        seq = RequestSequence.from_pages([7])
        with pytest.raises(InvalidRequestError):
            simulate(inst, seq, LRUPolicy())

    def test_event_times_recorded(self):
        inst = WeightedPagingInstance.uniform(3, 1)
        seq = RequestSequence.from_pages([0, 1, 2])
        r = simulate(inst, seq, LRUPolicy(), record_events=True)
        assert [e.time for e in r.events] == [1, 2]

    def test_final_cache_returned(self):
        inst = WeightedPagingInstance.uniform(4, 2)
        seq = RequestSequence.from_pages([0, 1])
        r = simulate(inst, seq, LRUPolicy())
        assert r.final_cache == {0: 1, 1: 1}

    def test_empty_sequence(self):
        inst = WeightedPagingInstance.uniform(4, 2)
        r = simulate(inst, RequestSequence.from_pages([]), LRUPolicy())
        assert r.cost == 0.0
        assert r.hit_rate == 0.0


class TestSimulateWriteback:
    def test_write_marks_dirty(self):
        inst = WritebackInstance.uniform(4, 2, dirty_cost=5.0)
        seq = WBRequestSequence.from_pairs([(0, True), (1, False), (2, False), (3, False)])
        r = simulate_writeback(inst, seq, WBLRUPolicy(), record_events=True)
        # Page 0, evicted dirty, is charged 5.
        ev0 = [e for e in r.events if e.page == 0]
        assert ev0 and ev0[0].cost == 5.0

    def test_unserved_detected(self):
        inst = WritebackInstance.uniform(4, 2, 3.0)
        seq = WBRequestSequence.from_pairs([(0, False)])
        with pytest.raises(CacheInvariantError, match="unserved"):
            simulate_writeback(inst, seq, _CheatingWBPolicy())

    def test_final_cache_encodes_dirty_as_level_one(self):
        inst = WritebackInstance.uniform(4, 2, 3.0)
        seq = WBRequestSequence.from_pairs([(0, True), (1, False)])
        r = simulate_writeback(inst, seq, WBLRUPolicy())
        assert r.final_cache == {0: 1, 1: 2}

    def test_out_of_range_page_rejected_upfront(self):
        """Mirrors simulate(): the whole stream is range-checked before
        any request is served, so nothing mutates on a bad sequence."""
        inst = WritebackInstance.uniform(4, 2, 3.0)
        seq = WBRequestSequence.from_pairs([(0, False), (7, True)])
        with pytest.raises(InvalidRequestError, match="out of range"):
            simulate_writeback(inst, seq, WBLRUPolicy())

    def test_length_mismatch_rejected(self):
        inst = WritebackInstance.uniform(4, 2, 3.0)
        with pytest.raises(InvalidRequestError, match="mismatch"):
            inst.validate_sequence(np.array([0, 1]), np.array([True]))

    def test_negative_page_rejected(self):
        inst = WritebackInstance.uniform(4, 2, 3.0)
        with pytest.raises(InvalidRequestError, match="out of range"):
            inst.validate_sequence(np.array([0, -1]), np.array([True, False]))

    def test_empty_sequence_valid(self):
        inst = WritebackInstance.uniform(4, 2, 3.0)
        inst.validate_sequence(np.array([], dtype=np.int64),
                               np.array([], dtype=bool))
        r = simulate_writeback(inst, WBRequestSequence.from_pairs([]),
                               WBLRUPolicy())
        assert r.cost == 0.0


class TestAggregateRuns:
    def _mk(self, cost, policy="p"):
        from repro.sim.metrics import RunResult

        return RunResult(
            policy=policy, cost=cost, n_requests=10, n_hits=5, n_misses=5,
            n_evictions=3, n_fetches=5,
        )

    def test_statistics(self):
        agg = aggregate_runs([self._mk(10.0), self._mk(20.0), self._mk(30.0)])
        assert agg.mean_cost == pytest.approx(20.0)
        assert agg.min_cost == 10.0
        assert agg.max_cost == 30.0
        assert agg.n_runs == 3
        assert agg.std_cost == pytest.approx(10.0)
        assert agg.stderr_cost == pytest.approx(10.0 / np.sqrt(3))

    def test_single_run_no_std(self):
        agg = aggregate_runs([self._mk(5.0)])
        assert agg.std_cost == 0.0
        assert agg.stderr_cost == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_mixed_policies_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([self._mk(1.0, "a"), self._mk(2.0, "b")])
