"""Tests for the sweep runner and seed spawning."""

import numpy as np
import pytest

from repro.algorithms import LRUPolicy, RandomizedMultiLevelPolicy, WBLRUPolicy
from repro.core.instance import WeightedPagingInstance, WritebackInstance
from repro.sim import RunSpec, run_spec, run_sweep, spawn_generators, spawn_seeds
from repro.workloads import readwrite_stream, zipf_stream


def make_spec(policy=LRUPolicy, n_seeds=2, master_seed=0, **params):
    inst = WeightedPagingInstance.uniform(10, 3)
    seq = zipf_stream(10, 200, rng=0)
    return RunSpec(inst, seq, policy, n_seeds=n_seeds,
                   master_seed=master_seed, params=params)


class TestSeeding:
    def test_spawn_reproducible(self):
        a = [np.random.default_rng(s).random() for s in spawn_seeds(1, 3)]
        b = [np.random.default_rng(s).random() for s in spawn_seeds(1, 3)]
        assert a == b

    def test_children_differ(self):
        vals = [g.random() for g in spawn_generators(1, 5)]
        assert len(set(vals)) == 5

    def test_prefix_stability(self):
        # Growing a sweep must not change earlier runs' seeds.
        short = spawn_seeds(42, 2)
        long = spawn_seeds(42, 5)
        assert [s.entropy for s in short] == [s.entropy for s in long[:2]]
        assert [s.spawn_key for s in short] == [s.spawn_key for s in long[:2]]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestRunSpec:
    def test_bad_seed_count_rejected(self):
        with pytest.raises(ValueError):
            make_spec(n_seeds=0)

    def test_run_spec_produces_all_seeds(self):
        res = run_spec(make_spec(n_seeds=3))
        assert len(res.runs) == 3
        assert res.spec_label == "lru"

    def test_label_defaults_to_policy_name(self):
        res = run_spec(make_spec())
        assert res.spec_label == "lru"

    def test_params_carried_through(self):
        res = run_spec(make_spec(k=3, alpha=0.8))
        assert res.params == {"k": 3, "alpha": 0.8}

    def test_deterministic_policy_same_across_seeds(self):
        res = run_spec(make_spec(n_seeds=3))
        costs = {r.cost for r in res.runs}
        assert len(costs) == 1

    def test_randomized_policy_varies_across_seeds(self):
        inst = WeightedPagingInstance.uniform(10, 3)
        seq = zipf_stream(10, 300, rng=0)
        spec = RunSpec(inst, seq, RandomizedMultiLevelPolicy, n_seeds=4)
        res = run_spec(spec)
        assert len({r.cost for r in res.runs}) > 1

    def test_writeback_spec_dispatch(self):
        inst = WritebackInstance.uniform(8, 3, 4.0)
        seq = readwrite_stream(8, 100, rng=0)
        res = run_spec(RunSpec(inst, seq, WBLRUPolicy))
        assert res.runs[0].policy == "wb-lru"


class TestRunSweep:
    def test_sequential_order_preserved(self):
        specs = [make_spec(master_seed=i, idx=i) for i in range(3)]
        results = run_sweep(specs)
        assert [r.params["idx"] for r in results] == [0, 1, 2]

    def test_parallel_matches_sequential(self):
        specs = [
            RunSpec(
                WeightedPagingInstance.uniform(10, 3),
                zipf_stream(10, 200, rng=0),
                RandomizedMultiLevelPolicy,
                n_seeds=2,
                master_seed=s,
            )
            for s in range(3)
        ]
        seq_results = run_sweep(specs, parallel=False)
        par_results = run_sweep(specs, parallel=True, max_workers=2)
        for a, b in zip(seq_results, par_results):
            assert [r.cost for r in a.runs] == [r.cost for r in b.runs]

    def test_aggregate_accessor(self):
        res = run_spec(make_spec(n_seeds=2))
        agg = res.aggregate
        assert agg.n_runs == 2
        assert agg.policy == "lru"


class TestSweepFailureAttribution:
    def test_failure_names_the_spec_label(self):
        from repro.errors import SweepWorkerError

        bad = RunSpec(
            WeightedPagingInstance.uniform(10, 3),
            zipf_stream(20, 50, rng=0),  # pages out of range for n=10
            LRUPolicy,
            label="bad-cell",
            params={"idx": 7},
        )
        with pytest.raises(SweepWorkerError, match="bad-cell"):
            run_sweep([make_spec(), bad])

    def test_parallel_failure_names_the_spec_label(self):
        from repro.errors import SweepWorkerError

        specs = [make_spec(master_seed=i) for i in range(3)]
        specs.append(RunSpec(
            WeightedPagingInstance.uniform(10, 3),
            zipf_stream(20, 50, rng=0),
            LRUPolicy,
            label="bad-parallel-cell",
        ))
        with pytest.raises(SweepWorkerError, match="bad-parallel-cell"):
            run_sweep(specs, parallel=True, max_workers=2)

    def test_parallel_chunked_matches_sequential(self):
        # Many small specs exercise the chunksize>1 path.
        specs = [make_spec(master_seed=s, idx=s) for s in range(10)]
        seq_results = run_sweep(specs, parallel=False)
        par_results = run_sweep(specs, parallel=True, max_workers=2)
        for a, b in zip(seq_results, par_results):
            assert [r.cost for r in a.runs] == [r.cost for r in b.runs]
        assert [r.params["idx"] for r in par_results] == list(range(10))
