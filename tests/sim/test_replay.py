"""Tests for the solution replayer."""

import numpy as np
import pytest

from repro.core.instance import (
    MultiLevelInstance,
    WeightedPagingInstance,
    WritebackInstance,
)
from repro.core.requests import RequestSequence, WBRequestSequence
from repro.errors import CacheInvariantError
from repro.offline import (
    offline_opt_multilevel_trace,
    offline_opt_writeback,
)
from repro.sim.replay import replay_solution, replay_writeback_solution
from repro.workloads import multilevel_stream, random_multilevel_instance


class TestReplaySolution:
    def test_dp_trace_replays_to_opt(self):
        inst = random_multilevel_instance(5, 2, 2, rng=0)
        seq = multilevel_stream(5, 2, 40, rng=1)
        value, trace = offline_opt_multilevel_trace(inst, seq)
        assert replay_solution(inst, seq, trace) == pytest.approx(value)

    def test_hand_built_solution(self):
        inst = WeightedPagingInstance(2, [4.0, 2.0, 1.0])
        seq = RequestSequence.from_pages([0, 1, 2])
        trace = [{0: 1}, {0: 1, 1: 1}, {0: 1, 2: 1}]  # evict 1 (w=2)
        assert replay_solution(inst, seq, trace) == pytest.approx(2.0)

    def test_unserved_rejected(self):
        inst = WeightedPagingInstance(2, [4.0, 2.0, 1.0])
        seq = RequestSequence.from_pages([0])
        with pytest.raises(CacheInvariantError, match="unserved"):
            replay_solution(inst, seq, [{1: 1}])

    def test_low_copy_does_not_serve(self):
        inst = MultiLevelInstance(2, np.tile([4.0, 1.0], (3, 1)))
        seq = RequestSequence.from_pairs([(0, 1)])
        with pytest.raises(CacheInvariantError, match="unserved"):
            replay_solution(inst, seq, [{0: 2}])

    def test_overflow_rejected(self):
        inst = WeightedPagingInstance(1, [1.0, 1.0, 1.0])
        seq = RequestSequence.from_pages([0])
        with pytest.raises(CacheInvariantError, match="capacity"):
            replay_solution(inst, seq, [{0: 1, 1: 1}])

    def test_length_mismatch_rejected(self):
        inst = WeightedPagingInstance(2, [1.0, 1.0, 1.0])
        seq = RequestSequence.from_pages([0, 1])
        with pytest.raises(CacheInvariantError, match="length"):
            replay_solution(inst, seq, [{0: 1}])

    def test_level_change_charges_old_copy(self):
        inst = MultiLevelInstance(2, np.tile([4.0, 1.0], (3, 1)))
        seq = RequestSequence.from_pairs([(0, 2), (0, 1)])
        trace = [{0: 2}, {0: 1}]
        assert replay_solution(inst, seq, trace) == pytest.approx(1.0)


class TestReplayWriteback:
    def _inst(self):
        return WritebackInstance(2, [10.0, 10.0, 10.0], [1.0, 1.0, 1.0])

    def test_set_trace_with_derived_dirty(self):
        seq = WBRequestSequence.from_pairs([(0, True), (1, False), (2, False)])
        trace = [{0}, {0, 1}, {1, 2}]  # page 0 (dirty) leaves at t=2
        cost = replay_writeback_solution(self._inst(), seq, trace)
        assert cost == pytest.approx(10.0)

    def test_dict_trace_checks_claimed_bits(self):
        seq = WBRequestSequence.from_pairs([(0, True), (1, False)])
        good = [{0: True}, {0: True, 1: False}]
        assert replay_writeback_solution(self._inst(), seq, good) == 0.0
        bad = [{0: False}, {0: True, 1: False}]
        with pytest.raises(CacheInvariantError, match="claimed"):
            replay_writeback_solution(self._inst(), seq, bad)

    def test_refetch_resets_dirtiness(self):
        seq = WBRequestSequence.from_pairs(
            [(0, True), (1, False), (2, False), (0, False), (1, False)]
        )
        # 0 written, evicted dirty (10); refetched clean; evicted clean (1).
        trace = [{0}, {0, 1}, {1, 2}, {0, 2}, {1, 0}]
        cost = replay_writeback_solution(self._inst(), seq, trace)
        assert cost == pytest.approx(10.0 + 1.0 + 1.0)

    def test_matches_writeback_dp_value(self):
        rng = np.random.default_rng(5)
        inst = self._inst()
        seq = WBRequestSequence(rng.integers(0, 3, size=25), rng.random(25) < 0.4)
        opt = offline_opt_writeback(inst, seq)
        # A greedy trace (always keep the two most recent pages) must not
        # beat OPT.
        trace = []
        cached: list[int] = []
        for req in seq:
            if req.page in cached:
                cached.remove(req.page)
            cached.append(req.page)
            cached = cached[-2:]
            trace.append(set(cached))
        cost = replay_writeback_solution(inst, seq, trace)
        assert cost >= opt - 1e-9

    def test_unserved_rejected(self):
        seq = WBRequestSequence.from_pairs([(0, False)])
        with pytest.raises(CacheInvariantError, match="unserved"):
            replay_writeback_solution(self._inst(), seq, [{1}])

    def test_overflow_rejected(self):
        seq = WBRequestSequence.from_pairs([(0, False)])
        with pytest.raises(CacheInvariantError, match="capacity"):
            replay_writeback_solution(self._inst(), seq, [{0, 1, 2}])
