"""Tests for stack distances and miss-ratio curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import LRUPolicy
from repro.core.instance import WeightedPagingInstance
from repro.core.requests import RequestSequence
from repro.offline.belady import belady_cost
from repro.sim import simulate
from repro.sim.mrc import (
    FenwickTree,
    lru_miss_curve,
    opt_miss_curve,
    stack_distances,
)
from repro.workloads import zipf_stream


class TestFenwickTree:
    def test_point_add_prefix_sum(self):
        t = FenwickTree(8)
        t.add(0, 3)
        t.add(4, 2)
        assert t.prefix_sum(0) == 3
        assert t.prefix_sum(3) == 3
        assert t.prefix_sum(4) == 5
        assert t.prefix_sum(7) == 5

    def test_range_sum(self):
        t = FenwickTree(6)
        for i in range(6):
            t.add(i, i)
        assert t.range_sum(2, 4) == 2 + 3 + 4
        assert t.range_sum(3, 2) == 0

    def test_negative_updates(self):
        t = FenwickTree(4)
        t.add(1, 5)
        t.add(1, -5)
        assert t.prefix_sum(3) == 0

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(0)
        vals = np.zeros(50, dtype=np.int64)
        t = FenwickTree(50)
        for _ in range(200):
            i = int(rng.integers(0, 50))
            v = int(rng.integers(-3, 4))
            t.add(i, v)
            vals[i] += v
            j = int(rng.integers(0, 50))
            assert t.prefix_sum(j) == vals[: j + 1].sum()

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(0)


class TestStackDistances:
    def test_textbook_example(self):
        # a b c a: distance of the second 'a' is 2 (b, c in between).
        dist = stack_distances(np.array([0, 1, 2, 0]))
        assert dist[3] == 2
        assert (dist[:3] > 10**17).all()  # cold misses

    def test_immediate_rereference(self):
        dist = stack_distances(np.array([5, 5, 5]))
        assert dist[1] == 0 and dist[2] == 0

    def test_duplicates_not_double_counted(self):
        # a b b a: only one distinct page between the two a's.
        dist = stack_distances(np.array([0, 1, 1, 0]))
        assert dist[3] == 1

    def test_empty(self):
        assert stack_distances(np.array([], dtype=np.int64)).size == 0

    def test_matches_naive_reference(self):
        rng = np.random.default_rng(1)
        pages = rng.integers(0, 12, size=300)
        dist = stack_distances(pages)
        last: dict[int, int] = {}
        for t, p in enumerate(pages):
            if p in last:
                expected = len(set(pages[last[p] + 1 : t].tolist()) - {p})
                assert dist[t] == expected
            last[int(p)] = t


class TestLRUMissCurve:
    def test_matches_simulated_lru(self):
        seq = zipf_stream(20, 1500, rng=2)
        curve = lru_miss_curve(seq, max_k=8)
        for k in [1, 3, 5, 8]:
            inst = WeightedPagingInstance.uniform(20, k)
            sim = simulate(inst, seq, LRUPolicy())
            assert curve[k - 1] == sim.n_misses

    def test_monotone_nonincreasing(self):
        seq = zipf_stream(30, 2000, rng=3)
        curve = lru_miss_curve(seq, max_k=16)
        assert np.all(np.diff(curve) <= 0)

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            lru_miss_curve(zipf_stream(5, 10, rng=0), max_k=0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_simulation(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 10))
        seq = RequestSequence.from_pages(rng.integers(0, n, size=150))
        max_k = n - 1
        curve = lru_miss_curve(seq, max_k=max_k)
        k = int(rng.integers(1, max_k + 1))
        inst = WeightedPagingInstance.uniform(n, k)
        assert curve[k - 1] == simulate(inst, seq, LRUPolicy()).n_misses


class TestOptMissCurve:
    def test_matches_belady(self):
        seq = zipf_stream(10, 400, rng=4)
        curve = opt_miss_curve(seq, max_k=4)
        for k in [1, 2, 4]:
            inst = WeightedPagingInstance.uniform(10, k)
            # belady_cost counts evictions = misses - final cache fill.
            misses = belady_cost(inst, seq) + min(k, seq.distinct_pages())
            assert curve[k - 1] == misses

    def test_dominated_by_lru(self):
        seq = zipf_stream(15, 800, rng=5)
        lru = lru_miss_curve(seq, max_k=6)
        opt = opt_miss_curve(seq, max_k=6)
        assert np.all(opt <= lru)

    def test_monotone(self):
        seq = zipf_stream(15, 500, rng=6)
        curve = opt_miss_curve(seq, max_k=8)
        assert np.all(np.diff(curve) <= 0)
