"""Regression checks for the example scripts.

Full runs are exercised manually / in benches; here we guard against
import breakage and API drift: every example must import cleanly and
expose a ``main`` callable.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "writeback_buffer_pool",
        "optane_tiered_cache",
        "lower_bound_demo",
        "certified_paging",
        "competitive_ratio_study",
        "miss_ratio_curves",
    } <= names
