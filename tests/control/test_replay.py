"""Experience record/replay: the ``==``-exact determinism pin.

Record a live run (threaded backend, so arrival interleaving is real),
replay it through fresh engines with the recorded configuration, and
require the eviction cost to be ``==``-equal — not approximately equal.
Alternative policies replay the *same* per-shard streams, making A/B
cost diffs exact rather than workload-resampled.
"""

import numpy as np
import pytest

from repro.control import Experience, ExperienceRecorder, ReplayEngine
from repro.core.instance import WeightedPagingInstance
from repro.errors import ServiceConfigError
from repro.service import PagingService, ServiceConfig
from repro.workloads import sample_weights, zipf_stream

N_PAGES = 64


def record_run(*, backend="thread", n_requests=4000, seed=7):
    inst = WeightedPagingInstance(12, sample_weights(N_PAGES, rng=0,
                                                     high=16.0))
    seq = zipf_stream(N_PAGES, n_requests, rng=11)
    config = ServiceConfig.from_policy_name(
        "waterfilling", inst, n_shards=4, batch_size=128, seed=seed,
        queue_depth=256, backend=backend)
    service = PagingService(config)
    recorder = ExperienceRecorder(4)
    service.attach_recorder(recorder)
    with service:
        for lo in range(0, len(seq), 128):
            result = service.submit_batch(seq.pages[lo:lo + 128],
                                          seq.levels[lo:lo + 128])
            while not result.accepted:
                service.drain(0.01)
                result = service.submit_batch(seq.pages[lo:lo + 128],
                                              seq.levels[lo:lo + 128])
        service.drain()
        experience = recorder.experience(service)
        live = service.snapshot().to_dict()
    return experience, live


@pytest.fixture(scope="module")
def recorded():
    return record_run()


class TestRecorder:
    def test_captures_every_admitted_request(self, recorded):
        experience, live = recorded
        assert experience.n_requests == live["n_requests"] == 4000

    def test_meta_carries_config_and_ledger(self, recorded):
        experience, live = recorded
        meta = experience.meta
        assert meta["policy"] == "waterfilling"
        assert meta["cache_size"] == 12
        assert meta["n_shards"] == 4
        assert meta["live"]["eviction_cost"] == live["eviction_cost"]

    def test_recorder_validates_shards(self):
        with pytest.raises(ServiceConfigError):
            ExperienceRecorder(0)

    def test_detach_stops_recording(self):
        experience, _ = record_run(n_requests=256)
        inst = WeightedPagingInstance(12, sample_weights(N_PAGES, rng=0,
                                                         high=16.0))
        config = ServiceConfig.from_policy_name(
            "waterfilling", inst, n_shards=4, batch_size=128, seed=7,
            backend="inline")
        service = PagingService(config)
        recorder = ExperienceRecorder(4)
        service.attach_recorder(recorder)
        service.attach_recorder(None)
        with service:
            service.submit_batch(np.arange(64), np.ones(64, np.int64))
            service.drain()
        assert recorder.n_requests == 0


class TestReplayExactness:
    def test_recorded_config_replays_cost_exactly(self, recorded):
        experience, live = recorded
        engine = ReplayEngine(experience)
        result = engine.run()
        assert result.eviction_cost == live["eviction_cost"]
        assert result.n_hits == live["n_hits"]
        assert result.n_misses == live["n_misses"]
        assert result.cost_by_level == {
            str(k): v for k, v in live["cost_by_level"].items()}
        assert engine.matches_live(result)

    def test_inline_backend_records_identically(self):
        experience, live = record_run(backend="inline", n_requests=1500)
        result = ReplayEngine(experience).run()
        assert result.eviction_cost == live["eviction_cost"]

    def test_paced_replay_matches_too(self, recorded):
        experience, live = recorded
        result = ReplayEngine(experience).run(rate=1e6)
        assert result.eviction_cost == live["eviction_cost"]
        assert result.report is not None
        assert result.report.n_served == experience.n_requests

    def test_alternative_policy_changes_the_ledger(self, recorded):
        experience, live = recorded
        engine = ReplayEngine(experience)
        alt = engine.run(policy="lru")
        assert alt.policy == "lru"
        assert alt.eviction_cost != live["eviction_cost"]
        assert not engine.matches_live(alt)

    def test_alternative_cache_size(self, recorded):
        experience, live = recorded
        bigger = ReplayEngine(experience).run(cache_size=24)
        assert bigger.cache_size == 24
        assert bigger.eviction_cost < live["eviction_cost"]

    def test_unknown_policy_raises(self, recorded):
        with pytest.raises(ServiceConfigError):
            ReplayEngine(recorded[0]).run(policy="nope")


class TestPersistenceRoundTrip:
    @pytest.mark.parametrize("suffix", [".npz", ".jsonl"])
    def test_save_load_replays_exactly(self, recorded, tmp_path, suffix):
        experience, live = recorded
        path = experience.save(tmp_path / f"run{suffix}")
        loaded = Experience.load(path)
        assert loaded.meta == experience.meta
        assert np.array_equal(loaded.weights, experience.weights)
        for (p1, l1), (p2, l2) in zip(loaded.shards, experience.shards):
            assert np.array_equal(p1, p2) and np.array_equal(l1, l2)
        result = ReplayEngine(loaded).run()
        assert result.eviction_cost == live["eviction_cost"]

    def test_stats_summarize_the_traffic(self, recorded):
        stats = recorded[0].stats()
        assert stats["n_requests"] == 4000
        assert sum(stats["per_shard"]) == 4000
        assert stats["level_counts"] == {"1": 4000}
        assert 0 < stats["unique_pages"] <= N_PAGES

    def test_merged_preserves_per_shard_order(self, recorded):
        experience, _ = recorded
        pages, levels = experience.merged()
        assert pages.size == experience.n_requests
        # Route the merged stream back: per-shard subsequences must be
        # exactly the recorded streams.
        from repro.service.router import ShardRouter

        router = ShardRouter(4)
        shards = router.shards_of(pages)
        for shard in range(4):
            assert np.array_equal(pages[shards == shard],
                                  experience.shards[shard][0])


class TestCompareTable:
    def test_compare_includes_live_and_exact_marker(self, recorded):
        experience, _ = recorded
        table = ReplayEngine(experience).compare(["waterfilling", "lru"])
        render = table.render()
        assert "live (waterfilling)" in render
        assert "0 (exact)" in render
        assert "lru" in render
