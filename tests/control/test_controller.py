"""Admission controller: hysteresis bands, AIMD moves, the no-flap pin.

The load-bearing property (hypothesis-checked): for ANY pressure
sequence — however adversarial — the governor reverses direction at
most once per dwell window.  Oscillation across the band cannot make
the knobs flap.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    Actuator,
    AdmissionController,
    ControllerConfig,
    HysteresisGovernor,
)
from repro.errors import ServiceConfigError
from repro.obs import MetricsRegistry

DIRECTION = {"tighten": 1, "relax": -1}


class TestControllerConfig:
    def test_defaults_validate(self):
        config = ControllerConfig()
        assert config.low_water < config.high_water

    @pytest.mark.parametrize("kwargs", [
        {"interval_s": 0.0},
        {"low_water": 0.8, "high_water": 0.5},
        {"low_water": -0.1},
        {"high_water": 1.5},
        {"dwell_s": -1.0},
        {"decrease": 1.0},
        {"decrease": 0.0},
        {"increase_frac": 0.0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ServiceConfigError):
            ControllerConfig(**kwargs)


class TestGovernorBands:
    def test_band_interior_holds(self):
        g = HysteresisGovernor(ControllerConfig(high_water=0.75,
                                                low_water=0.30))
        assert g.decide(0.0, 0.5) is None

    def test_above_high_tightens(self):
        g = HysteresisGovernor(ControllerConfig())
        assert g.decide(0.0, 0.9) == "tighten"

    def test_below_low_relaxes(self):
        g = HysteresisGovernor(ControllerConfig())
        assert g.decide(0.0, 0.1) == "relax"

    def test_sustained_overload_keeps_tightening(self):
        g = HysteresisGovernor(ControllerConfig(dwell_s=10.0))
        assert [g.decide(0.01 * i, 0.9) for i in range(5)] \
            == ["tighten"] * 5

    def test_reversal_suppressed_within_dwell(self):
        g = HysteresisGovernor(ControllerConfig(dwell_s=1.0))
        assert g.decide(0.0, 0.9) == "tighten"
        assert g.decide(0.5, 0.1) is None       # reversal too soon
        assert g.decide(0.9, 0.9) == "tighten"  # same direction still fine
        assert g.decide(1.1, 0.1) == "relax"    # dwell elapsed

    def test_first_move_is_free(self):
        g = HysteresisGovernor(ControllerConfig(dwell_s=100.0))
        assert g.decide(0.0, 0.1) == "relax"


class TestNoFlapProperty:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), min_size=1, max_size=200),
           st.floats(min_value=0.05, max_value=5.0, allow_nan=False))
    def test_at_most_one_reversal_per_dwell_window(self, pressures, dwell):
        """Any pressure sequence: direction changes >= dwell apart."""
        config = ControllerConfig(dwell_s=dwell)
        g = HysteresisGovernor(config)
        interval = dwell / 7.3  # polls much faster than the dwell
        reversal_times = []
        direction = 0
        for i, pressure in enumerate(pressures):
            now = i * interval
            decision = g.decide(now, pressure)
            if decision is None:
                continue
            want = DIRECTION[decision]
            if direction != 0 and want != direction:
                reversal_times.append(now)
            direction = want
        for earlier, later in zip(reversal_times, reversal_times[1:]):
            assert later - earlier >= dwell - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=2, max_value=50))
    def test_square_wave_across_band_cannot_flap(self, n_cycles):
        """The adversarial case: pressure alternates 0.9 / 0.1 each poll."""
        config = ControllerConfig(dwell_s=1.0)
        g = HysteresisGovernor(config)
        moves = []
        for i in range(2 * n_cycles):
            decision = g.decide(i * 0.05, 0.9 if i % 2 == 0 else 0.1)
            if decision is not None:
                moves.append(decision)
        # 20 polls per dwell window, alternating: after the free first
        # move, at most one reversal per full second.
        flips = sum(1 for a, b in zip(moves, moves[1:]) if a != b)
        assert flips <= (2 * n_cycles * 0.05) / config.dwell_s + 1


class TestActuator:
    def test_tighten_is_multiplicative_and_clamped(self):
        act = Actuator("win", lo=4, hi=64)
        assert act.value == 64
        assert act.tighten(0.5) and act.value == 32
        for _ in range(10):
            act.tighten(0.5)
        assert act.value == 4
        assert act.tighten(0.5) is False  # already at the floor

    def test_relax_is_additive_and_clamped(self):
        act = Actuator("win", lo=4, hi=64, initial=4)
        assert act.relax(0.125) and act.value == 4 + 7
        for _ in range(20):
            act.relax(0.125)
        assert act.value == 64

    def test_apply_called_only_on_change(self):
        applied = []
        act = Actuator("win", lo=1, hi=8, initial=8, apply=applied.append)
        act.relax(0.5)            # clamped at hi: no change
        assert applied == []
        act.tighten(0.5)
        assert applied == [4]

    def test_validation(self):
        with pytest.raises(ServiceConfigError):
            Actuator("w", lo=0, hi=8)
        with pytest.raises(ServiceConfigError):
            Actuator("w", lo=4, hi=2)
        with pytest.raises(ServiceConfigError):
            Actuator("w", lo=4, hi=8, initial=100)


class TestAdmissionController:
    def make(self, pressures, registry=None, **config_kwargs):
        readings = iter(pressures)
        clock_state = {"t": 0.0}

        def clock():
            clock_state["t"] += 1.0
            return clock_state["t"]

        acts = [Actuator("inflight", lo=4, hi=64),
                Actuator("queue", lo=8, hi=128)]
        ctl = AdmissionController(
            lambda: next(readings), acts,
            config=ControllerConfig(dwell_s=0.5, **config_kwargs),
            registry=registry, clock=clock)
        return ctl, acts

    def test_step_moves_all_actuators(self):
        ctl, acts = self.make([0.9])
        assert ctl.step() == "tighten"
        assert ctl.setpoints() == {"inflight": 32, "queue": 64}

    def test_step_in_band_holds(self):
        ctl, acts = self.make([0.5, 0.5])
        assert ctl.step() is None
        assert ctl.setpoints() == {"inflight": 64, "queue": 128}

    def test_saturated_actuators_report_no_move(self):
        ctl, acts = self.make([0.1, 0.1])
        assert ctl.step() is None  # relax from hi: clamped, nothing moved
        assert ctl.n_moves == 0

    def test_decisions_are_observable(self):
        reg = MetricsRegistry()
        ctl, acts = self.make([0.9, 0.9], registry=reg)
        ctl.step()
        page = reg.render()
        assert "repro_ctl_pressure 0.9" in page
        assert 'repro_ctl_setpoint{actuator="inflight"} 32' in page
        assert 'repro_ctl_moves_total{direction="tighten"} 1' in page

    def test_thread_loop_runs_and_stops(self):
        ctl = AdmissionController(
            lambda: 0.9, [Actuator("w", lo=1, hi=1 << 20)],
            config=ControllerConfig(interval_s=0.005, dwell_s=0.0))
        with ctl:
            import time
            deadline = time.monotonic() + 5.0
            while ctl.n_moves == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
        assert ctl.n_moves > 0
        with pytest.raises(ServiceConfigError):
            AdmissionController(lambda: 0.5, [])

    def test_duplicate_actuator_names_rejected(self):
        with pytest.raises(ServiceConfigError):
            AdmissionController(
                lambda: 0.5,
                [Actuator("w", lo=1, hi=2), Actuator("w", lo=1, hi=2)])

    def test_bare_float_reading_accepted(self):
        ctl, _ = self.make([])
        ctl.signals = lambda: 0.95
        assert ctl.step() == "tighten"
