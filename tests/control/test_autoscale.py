"""Autoscaling: spawn → drain → retire under live load, ledger exact.

The acceptance property: a full scale cycle (a new backend spawned and
loaded via live migration mid-stream, then drained and retired) must
finish with zero failed/dropped tickets and a merged cluster ledger
``==``-equal to the same-seed single-node run.
"""

import threading
import time

import pytest

from repro.algorithms import WaterFillingPolicy
from repro.cluster import ClusterMap, ClusterProxy
from repro.control import Autoscaler, ControllerConfig, drain_backend
from repro.core.instance import WeightedPagingInstance
from repro.errors import ServiceConfigError
from repro.net import (
    AdmissionPolicy,
    NetServer,
    PagingClient,
    run_network_load,
)
from repro.obs import MetricsRegistry
from repro.service import PagingService, ServiceConfig
from repro.workloads import sample_weights, zipf_stream

N_PAGES = 64
N_SHARDS = 4
SEED = 7
BATCH = 128


def make_backend():
    inst = WeightedPagingInstance(12, sample_weights(N_PAGES, rng=0,
                                                     high=16.0))
    config = ServiceConfig(instance=inst, policy_factory=WaterFillingPolicy,
                           n_shards=N_SHARDS, batch_size=BATCH, seed=SEED,
                           queue_depth=256)
    svc = PagingService(config)
    svc.start()
    srv = NetServer(svc, admission=AdmissionPolicy(max_inflight=64,
                                                   request_deadline_s=30.0))
    srv.start()
    return svc, srv


def single_node_reference(seq):
    svc, srv = make_backend()
    try:
        srv.stop()
        for lo in range(0, len(seq), BATCH):
            result = svc.submit_batch(seq.pages[lo:lo + BATCH],
                                      seq.levels[lo:lo + BATCH])
            while not result.accepted:
                svc.drain(0.01)
                result = svc.submit_batch(seq.pages[lo:lo + BATCH],
                                          seq.levels[lo:lo + BATCH])
        svc.drain()
        return svc.snapshot().to_dict()
    finally:
        svc.stop()


class InProcessSpawner:
    """Spawner protocol backed by in-process backends (fast, leak-free)."""

    def __init__(self):
        self.live = {}
        self.retired = []

    def spawn(self) -> str:
        svc, srv = make_backend()
        self.live[srv.address] = (svc, srv)
        return srv.address

    def retire(self, address: str) -> None:
        svc, srv = self.live.pop(address)
        srv.stop()
        svc.stop()
        self.retired.append(address)

    def stop_all(self):
        for address in list(self.live):
            self.retire(address)


@pytest.fixture
def cluster():
    svc, srv = make_backend()
    cmap = ClusterMap.balanced([srv.address], N_SHARDS)
    proxy = ClusterProxy(cmap, window=8, timeout=15.0).start()
    spawner = InProcessSpawner()
    try:
        yield proxy, (svc, srv), spawner
    finally:
        proxy.stop()
        spawner.stop_all()
        srv.stop()
        svc.stop()


class TestScaleCycleUnderLoad:
    def test_spawn_drain_retire_midstream_is_lossless_and_exact(
            self, cluster):
        """THE acceptance test: one full autoscale cycle mid-loadgen."""
        proxy, (svc, srv), spawner = cluster
        seq = zipf_stream(N_PAGES, 12_000, alpha=0.9, rng=2)
        registry = MetricsRegistry()
        pressure = [1.0]  # synthetic: overload now, idle later
        scaler = Autoscaler(
            proxy, spawner, lambda: pressure[0],
            config=ControllerConfig(interval_s=0.05, dwell_s=0.1),
            max_backends=2, registry=registry)
        events = []

        def cycle():
            time.sleep(0.08)
            events.append(scaler.step())        # pressure 1.0 -> scale up
            time.sleep(0.2)
            pressure[0] = 0.0
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:  # dwell gate, then down
                decision = scaler.step()
                if decision is not None:
                    events.append(decision)
                    return
                time.sleep(0.05)

        mover = threading.Thread(target=cycle)
        mover.start()
        report = run_network_load(
            proxy.address, seq,
            rate=40_000.0, batch_size=BATCH,
            connections=1, window=8, timeout=15.0,
            max_retries=8, retry_backoff=0.002,
        )
        mover.join(30.0)
        assert not mover.is_alive()
        assert events == ["up", "down"]
        assert spawner.retired and not spawner.live  # full cycle completed
        assert report.n_failed_batches == 0
        assert report.n_dropped_batches == 0
        assert report.n_served == len(seq)
        with PagingClient(proxy.address, timeout=15.0) as client:
            assert client.drain(15.0)
            merged = client.snapshot()
        ref = single_node_reference(seq)
        for key in ("n_requests", "n_hits", "n_misses", "eviction_cost",
                    "cost_by_level"):
            assert merged[key] == ref[key], key
        # Back to one backend owning everything.
        assert proxy.table.map.backends == (srv.address,)
        page = registry.render()
        assert 'repro_ctl_scale_events_total{direction="up"} 1' in page
        assert 'repro_ctl_scale_events_total{direction="down"} 1' in page
        assert "repro_ctl_backends 1" in page


class TestScaleMechanics:
    def test_scale_up_rebalances_onto_the_new_backend(self, cluster):
        proxy, (svc, srv), spawner = cluster
        scaler = Autoscaler(proxy, spawner, lambda: 1.0,
                            config=ControllerConfig(dwell_s=0.0),
                            max_backends=2)
        assert scaler.step() == "up"
        counts = proxy.table.map.counts()
        assert len(counts) == 2
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_scale_up_respects_max_backends(self, cluster):
        proxy, _, spawner = cluster
        scaler = Autoscaler(proxy, spawner, lambda: 1.0,
                            config=ControllerConfig(dwell_s=0.0),
                            max_backends=1)
        assert scaler.step() is None
        assert not spawner.live

    def test_scale_down_without_spawned_backends_is_a_noop(self, cluster):
        proxy, _, spawner = cluster
        scaler = Autoscaler(proxy, spawner, lambda: 0.0,
                            config=ControllerConfig(dwell_s=0.0))
        assert scaler.step() is None

    def test_governor_dwell_gates_the_cycle(self, cluster):
        proxy, _, spawner = cluster
        pressure = [1.0]
        scaler = Autoscaler(proxy, spawner, lambda: pressure[0],
                            config=ControllerConfig(dwell_s=60.0),
                            max_backends=2)
        assert scaler.step(now=0.0) == "up"
        pressure[0] = 0.0
        assert scaler.step(now=1.0) is None  # reversal inside the dwell
        assert len(spawner.live) == 1
        spawner.stop_all()

    def test_validation(self, cluster):
        proxy, _, spawner = cluster
        with pytest.raises(ServiceConfigError):
            Autoscaler(proxy, spawner, lambda: 0.0, min_backends=0)
        with pytest.raises(ServiceConfigError):
            Autoscaler(proxy, spawner, lambda: 0.0,
                       min_backends=4, max_backends=2)


class TestDrainBackend:
    def test_drain_moves_every_shard_off_the_backend(self, cluster):
        proxy, (svc, srv), spawner = cluster
        address = spawner.spawn()
        cmap = proxy.table.map
        for shard, _src, target in cmap.rebalance_moves(
                list(cmap.backends) + [address]):
            if target == address:
                proxy.migrate(shard, target)
        assert len(proxy.table.map.counts()) == 2
        owned = proxy.table.map.shards_of(address)
        assert owned  # the rebalance genuinely loaded the new backend
        moved = drain_backend(proxy, address)
        assert sorted(moved) == sorted(owned)
        assert proxy.table.map.backends == (srv.address,)
        spawner.stop_all()

    def test_drain_unknown_backend_rejected(self, cluster):
        proxy, _, _ = cluster
        with pytest.raises(ServiceConfigError):
            drain_backend(proxy, "127.0.0.1:1")

    def test_drain_last_backend_rejected(self, cluster):
        proxy, (svc, srv), _ = cluster
        with pytest.raises(ServiceConfigError):
            drain_backend(proxy, srv.address)
