"""Control signals: occupancy / shed-rate derivation + published gauges."""

import pytest

from repro.obs import MetricsRegistry, SignalReader
from repro.obs.signals import ControlSignals


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def populated_registry(*, depth=8.0, cap=16.0, inflight=4.0, window=8.0,
                       conns=1.0, shed=0.0, overload=0.0):
    reg = MetricsRegistry()
    d = reg.gauge("repro_queue_depth", "d", ("shard",))
    d.labels("0").set(depth)
    d.labels("1").set(depth / 2)
    reg.gauge("repro_queue_capacity", "c").set(cap)
    reg.gauge("repro_net_inflight", "i").set(inflight)
    reg.gauge("repro_net_max_inflight", "w").set(window)
    reg.gauge("repro_net_active_connections", "n").set(conns)
    reg.counter("repro_net_shed_total", "s").inc(shed)
    reg.counter("repro_overloaded_total", "o").inc(overload)
    return reg


class TestSignalReaderFromRegistry:
    def test_occupancies_from_live_registry(self):
        reg = populated_registry(depth=8.0, cap=16.0, inflight=4.0,
                                 window=8.0)
        reader = SignalReader(reg, clock=FakeClock())
        signals = reader.sample()
        assert signals.queue_occupancy == pytest.approx(0.5)
        assert signals.inflight_occupancy == pytest.approx(0.5)
        assert signals.shed_rate == 0.0  # first sample: no interval yet
        assert signals.pressure == pytest.approx(0.5)

    def test_counter_deltas_become_rates(self):
        reg = populated_registry(depth=0.0, inflight=0.0)
        clock = FakeClock()
        reader = SignalReader(reg, clock=clock, full_scale_rate=100.0)
        reader.sample()
        reg.counter("repro_net_shed_total", "s").inc(50)
        reg.counter("repro_overloaded_total", "o").inc(25)
        clock.t = 1.0
        signals = reader.sample()
        assert signals.shed_rate == pytest.approx(50.0)
        assert signals.overload_rate == pytest.approx(25.0)
        assert signals.pressure == pytest.approx(0.75)

    def test_pressure_clamped_to_one(self):
        reg = populated_registry(depth=64.0, cap=16.0, inflight=100.0,
                                 window=8.0)
        reader = SignalReader(reg, clock=FakeClock())
        assert reader.sample().pressure == 1.0

    def test_publishes_first_class_gauges(self):
        reg = populated_registry()
        SignalReader(reg, clock=FakeClock()).sample()
        page = reg.render()
        for name in ("repro_queue_occupancy", "repro_inflight_occupancy",
                     "repro_shed_rate", "repro_overload_rate"):
            assert name in page

    def test_reader_is_callable(self):
        reader = SignalReader(populated_registry(), clock=FakeClock())
        assert isinstance(reader(), ControlSignals)

    def test_empty_registry_reads_zero(self):
        signals = SignalReader(MetricsRegistry(), clock=FakeClock()).sample()
        assert signals.pressure == 0.0

    def test_rejects_non_source(self):
        with pytest.raises(TypeError):
            SignalReader(object())
        with pytest.raises(ValueError):
            SignalReader(MetricsRegistry(), full_scale_rate=0.0)


class TestSignalReaderFromExposition:
    def test_reads_federated_page_excluding_synthetic_backends(self):
        page = "\n".join([
            '# TYPE repro_queue_depth gauge',
            'repro_queue_depth{backend="b1",shard="0"} 8',
            'repro_queue_depth{backend="b2",shard="0"} 4',
            'repro_queue_depth{backend="all",shard="0"} 12',
            'repro_queue_depth{backend="max",shard="0"} 8',
            '# TYPE repro_queue_capacity gauge',
            'repro_queue_capacity{backend="b1"} 16',
            'repro_queue_capacity{backend="b2"} 16',
            'repro_queue_capacity{backend="all"} 32',
            "",
        ])
        publish = MetricsRegistry()
        reader = SignalReader(lambda: page, publish=publish,
                              clock=FakeClock())
        signals = reader.sample()
        # max over real backends only: 8 / 16, not the "all" row's 12.
        assert signals.queue_occupancy == pytest.approx(0.5)
        assert "repro_queue_occupancy 0.5" in publish.render()

    def test_page_counter_deltas(self):
        shed = [0.0]
        def page():
            return ("# TYPE repro_net_shed_total counter\n"
                    f'repro_net_shed_total{{backend="b1"}} {shed[0]}\n')
        clock = FakeClock()
        reader = SignalReader(page, clock=clock, full_scale_rate=10.0)
        reader.sample()
        shed[0] = 5.0
        clock.t = 1.0
        assert reader.sample().shed_rate == pytest.approx(5.0)
